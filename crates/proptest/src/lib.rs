//! Offline drop-in subset of the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of the proptest API its test suites use: the
//! [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! [`prop::collection::vec`], [`any`], `prop_oneof!`, the float-class
//! strategies of [`prop::num::f32`], and the `proptest!`/`prop_assert!`
//! macros.
//!
//! Unlike the real crate there is no shrinking: a failing case reports its
//! deterministic case index, and because generation is a pure function of
//! `(test name, case index)` every failure replays exactly. Case count
//! defaults to 64 and can be raised with the `PROPTEST_CASES` environment
//! variable.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// Number of cases each property runs (`PROPTEST_CASES` overrides; default
/// 64).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic per-case random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for one `(test, case)` pair. The seed is a pure function
    /// of both, so failures replay bit-for-bit.
    pub fn for_case(test_name: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice among several strategies of one value type (the
/// `prop_oneof!` backend).
#[derive(Debug, Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Full-domain strategy for a primitive (see [`any`]).
#[derive(Debug, Clone)]
pub struct AnyOf<T>(PhantomData<T>);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws from the type's whole domain.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for AnyOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The full-domain strategy for `T` (e.g. `any::<u64>()`).
pub fn any<T: Arbitrary>() -> AnyOf<T> {
    AnyOf(PhantomData)
}

/// Strategy namespaces mirroring the real crate's `prop::` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Lengths a [`vec()`] strategy may produce: a fixed size or a
        /// half-open range.
        pub trait IntoSizeRange {
            /// Draws a concrete length.
            fn pick_len(&self, rng: &mut TestRng) -> usize;
        }

        impl IntoSizeRange for usize {
            fn pick_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl IntoSizeRange for Range<usize> {
            fn pick_len(&self, rng: &mut TestRng) -> usize {
                assert!(self.start < self.end, "empty size range");
                self.start + rng.below((self.end - self.start) as u64) as usize
            }
        }

        /// See [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.pick_len(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A `Vec` whose elements come from `element` and whose length comes
        /// from `len` (a fixed `usize` or a `Range<usize>`).
        pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }
    }

    /// Numeric class strategies.
    pub mod num {
        /// `f32` class strategies, combinable with `|`.
        pub mod f32 {
            use super::super::super::{Strategy, TestRng};

            /// A set of `f32` value classes; `a | b` draws uniformly from
            /// the union's member classes.
            #[derive(Debug, Clone, Copy, PartialEq, Eq)]
            pub struct F32Class(u8);

            const C_NORMAL: u8 = 1;
            const C_ZERO: u8 = 2;
            const C_NEGATIVE: u8 = 4;

            /// Positive normal values.
            pub const NORMAL: F32Class = F32Class(C_NORMAL);
            /// Exactly zero.
            pub const ZERO: F32Class = F32Class(C_ZERO);
            /// Negative normal values.
            pub const NEGATIVE: F32Class = F32Class(C_NEGATIVE);

            impl std::ops::BitOr for F32Class {
                type Output = F32Class;

                fn bitor(self, rhs: F32Class) -> F32Class {
                    F32Class(self.0 | rhs.0)
                }
            }

            impl Strategy for F32Class {
                type Value = f32;

                fn generate(&self, rng: &mut TestRng) -> f32 {
                    let classes: Vec<u8> = [C_NORMAL, C_ZERO, C_NEGATIVE]
                        .into_iter()
                        .filter(|c| self.0 & c != 0)
                        .collect();
                    assert!(!classes.is_empty(), "empty f32 class set");
                    let class = classes[rng.below(classes.len() as u64) as usize];
                    match class {
                        C_ZERO => 0.0,
                        c => {
                            // A normal magnitude spanning many decades.
                            let exp = rng.unit_f64() * 60.0 - 30.0;
                            let mag = (10f64.powf(exp)) as f32;
                            let mag = if mag.is_normal() { mag } else { 1.0 };
                            if c == C_NEGATIVE {
                                -mag
                            } else {
                                mag
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{Arbitrary, BoxedStrategy, Just, Strategy};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each property runs [`cases`] deterministic cases; a failure reports the
/// case index, and the same index always regenerates the same inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for case in 0..$crate::cases() {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest: {} failed at case {case} (deterministic; rerun reproduces)",
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// `assert!` under a name the real proptest API uses.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a name the real proptest API uses.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let x = (3u32..7).generate(&mut rng);
            assert!((3..7).contains(&x));
            let f = (-1.0f32..1.0).generate(&mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn determinism_per_case() {
        let s = prop::collection::vec(0u64..1000, 1..20);
        let a = s.generate(&mut crate::TestRng::for_case("d", 7));
        let b = s.generate(&mut crate::TestRng::for_case("d", 7));
        assert_eq!(a, b);
        let c = s.generate(&mut crate::TestRng::for_case("d", 8));
        assert_ne!(a, c, "different cases should (overwhelmingly) differ");
    }

    proptest! {
        #[test]
        fn macro_generates_and_runs(xs in prop::collection::vec(0u32..5, 0..10), flag in any::<bool>()) {
            prop_assert!(xs.len() < 10);
            prop_assert!(xs.iter().all(|&x| x < 5));
            let _ = flag;
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u32..5).prop_map(|x| x as u64),
            any::<bool>().prop_map(|b| if b { 100 } else { 200 }),
        ]) {
            prop_assert!(v < 5 || v == 100 || v == 200);
        }
    }

    #[test]
    fn f32_classes_cover_requested_kinds() {
        use crate::prop::num::f32::{NEGATIVE, NORMAL, ZERO};
        let s = NORMAL | ZERO | NEGATIVE;
        let mut rng = crate::TestRng::for_case("f32", 1);
        let (mut pos, mut zero, mut neg) = (0, 0, 0);
        for _ in 0..3000 {
            let x = s.generate(&mut rng);
            assert!(x == 0.0 || x.is_normal());
            if x == 0.0 {
                zero += 1;
            } else if x > 0.0 {
                pos += 1;
            } else {
                neg += 1;
            }
        }
        assert!(pos > 0 && zero > 0 && neg > 0);
    }
}
