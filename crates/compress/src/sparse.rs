//! Sparse gradient representation shared by the compression schemes.

/// A sparse view of a gradient tensor: the entries a compressor chose to
/// transmit.
///
/// # Examples
///
/// ```
/// use p3_compress::SparseGrad;
///
/// let s = SparseGrad::new(5, vec![1, 3], vec![0.5, -0.25]);
/// assert_eq!(s.to_dense(), vec![0.0, 0.5, 0.0, -0.25, 0.0]);
/// assert_eq!(s.nnz(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseGrad {
    len: usize,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl SparseGrad {
    /// Creates a sparse gradient over a dense tensor of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `indices` and `values` lengths differ, or any index is out
    /// of range or duplicated.
    pub fn new(len: usize, indices: Vec<u32>, values: Vec<f32>) -> SparseGrad {
        assert_eq!(indices.len(), values.len(), "indices/values mismatch");
        let mut seen = vec![false; len];
        for &i in &indices {
            assert!((i as usize) < len, "index {i} out of range {len}");
            assert!(!seen[i as usize], "duplicate index {i}");
            seen[i as usize] = true;
        }
        SparseGrad {
            len,
            indices,
            values,
        }
    }

    /// Dense tensor length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are transmitted.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Number of transmitted entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Transmitted indices.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Transmitted values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Expands to a dense vector.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.len];
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            out[i as usize] = v;
        }
        out
    }

    /// Adds this sparse gradient into a dense accumulator.
    ///
    /// # Panics
    ///
    /// Panics if `acc.len() != self.len()`.
    pub fn add_into(&self, acc: &mut [f32]) {
        assert_eq!(acc.len(), self.len, "accumulator length mismatch");
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            acc[i as usize] += v;
        }
    }

    /// Wire size in bytes: 4-byte index + 4-byte value per entry.
    pub fn wire_bytes(&self) -> u64 {
        self.nnz() as u64 * 8
    }

    /// Achieved compression ratio vs dense f32 transmission (dense bytes /
    /// sparse bytes); infinite for an empty gradient.
    pub fn compression_ratio(&self) -> f64 {
        if self.nnz() == 0 {
            f64::INFINITY
        } else {
            (self.len as f64 * 4.0) / self.wire_bytes() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_roundtrip() {
        let s = SparseGrad::new(4, vec![0, 3], vec![1.0, 2.0]);
        assert_eq!(s.to_dense(), vec![1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn add_into_accumulates() {
        let s = SparseGrad::new(3, vec![1], vec![5.0]);
        let mut acc = vec![1.0, 1.0, 1.0];
        s.add_into(&mut acc);
        s.add_into(&mut acc);
        assert_eq!(acc, vec![1.0, 11.0, 1.0]);
    }

    #[test]
    fn ratio_and_bytes() {
        let s = SparseGrad::new(1000, vec![1], vec![2.0]);
        assert_eq!(s.wire_bytes(), 8);
        assert_eq!(s.compression_ratio(), 500.0);
        let empty = SparseGrad::new(10, vec![], vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.compression_ratio(), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "duplicate index")]
    fn duplicates_rejected() {
        SparseGrad::new(4, vec![1, 1], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        SparseGrad::new(2, vec![5], vec![1.0]);
    }
}
