//! Quantization-based compression baselines from the paper's related work:
//! QSGD (Alistarh et al. 2017), TernGrad (Wen et al. 2017) and 1-bit SGD
//! (Seide et al. 2014).

use p3_des::SplitMix64;

/// QSGD stochastic quantizer with `levels` quantization levels.
///
/// Each value becomes `‖g‖₂ · sign(g_i) · ξ_i / s` where `ξ_i` rounds
/// `|g_i|·s/‖g‖₂` up or down stochastically — an **unbiased** estimator of
/// the gradient.
///
/// # Examples
///
/// ```
/// use p3_compress::Qsgd;
///
/// let mut q = Qsgd::new(4, 7);
/// let g = vec![0.5, -0.25, 0.1];
/// let out = q.quantize(&g);
/// assert_eq!(out.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Qsgd {
    levels: u32,
    rng: SplitMix64,
}

impl Qsgd {
    /// Creates a quantizer with `levels` levels (e.g. 4 ≈ 2-bit QSGD).
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0`.
    pub fn new(levels: u32, seed: u64) -> Qsgd {
        assert!(levels > 0, "zero quantization levels");
        Qsgd {
            levels,
            rng: SplitMix64::new(seed),
        }
    }

    /// Quantizes a gradient (dense output, values on the quantization
    /// grid).
    pub fn quantize(&mut self, grad: &[f32]) -> Vec<f32> {
        let norm = grad.iter().map(|x| (x * x) as f64).sum::<f64>().sqrt() as f32;
        if norm == 0.0 {
            return vec![0.0; grad.len()];
        }
        let s = self.levels as f32;
        grad.iter()
            .map(|&g| {
                let level = g.abs() / norm * s;
                let floor = level.floor();
                let frac = level - floor;
                let xi = if (self.rng.next_f64() as f32) < frac {
                    floor + 1.0
                } else {
                    floor
                };
                norm * g.signum() * xi / s
            })
            .collect()
    }

    /// Bits per coordinate on the wire (log2(levels+1) for magnitude + 1
    /// sign bit), ignoring the norm scalar and entropy coding.
    pub fn bits_per_value(&self) -> f64 {
        ((self.levels + 1) as f64).log2() + 1.0
    }
}

/// TernGrad: values quantized to `{-s, 0, +s}` with `s = max|g|`,
/// keeping the estimator unbiased via Bernoulli sampling.
#[derive(Debug, Clone)]
pub struct TernGrad {
    rng: SplitMix64,
}

impl TernGrad {
    /// Creates a ternarizer.
    pub fn new(seed: u64) -> TernGrad {
        TernGrad {
            rng: SplitMix64::new(seed),
        }
    }

    /// Ternarizes a gradient.
    pub fn quantize(&mut self, grad: &[f32]) -> Vec<f32> {
        let st = grad.iter().fold(0.0f32, |a, &g| a.max(g.abs()));
        if st == 0.0 {
            return vec![0.0; grad.len()];
        }
        grad.iter()
            .map(|&g| {
                let p = (g.abs() / st) as f64;
                if self.rng.next_f64() < p {
                    st * g.signum()
                } else {
                    0.0
                }
            })
            .collect()
    }
}

/// 1-bit SGD with error feedback: transmit only the sign of
/// (gradient + residual), scaled by the mean magnitude of the positive and
/// negative parts; the quantization error feeds back into the next step.
#[derive(Debug, Clone)]
pub struct OneBitSgd {
    residual: Vec<f32>,
}

impl OneBitSgd {
    /// Creates 1-bit state for a tensor of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(len: usize) -> OneBitSgd {
        assert!(len > 0, "empty tensor");
        OneBitSgd {
            residual: vec![0.0; len],
        }
    }

    /// Quantizes one gradient, updating the residual.
    ///
    /// # Panics
    ///
    /// Panics if `grad.len()` differs from the construction length.
    pub fn quantize(&mut self, grad: &[f32]) -> Vec<f32> {
        assert_eq!(grad.len(), self.residual.len(), "gradient length mismatch");
        let corrected: Vec<f32> = grad
            .iter()
            .zip(&self.residual)
            .map(|(g, r)| g + r)
            .collect();
        // Per-tensor reconstruction scales: mean magnitude of each sign.
        let (mut pos_sum, mut pos_n, mut neg_sum, mut neg_n) = (0.0f64, 0u32, 0.0f64, 0u32);
        for &c in &corrected {
            if c >= 0.0 {
                pos_sum += c as f64;
                pos_n += 1;
            } else {
                neg_sum += c as f64;
                neg_n += 1;
            }
        }
        let pos_scale = if pos_n > 0 {
            (pos_sum / pos_n as f64) as f32
        } else {
            0.0
        };
        let neg_scale = if neg_n > 0 {
            (neg_sum / neg_n as f64) as f32
        } else {
            0.0
        };
        let mut out = Vec::with_capacity(corrected.len());
        for (c, r) in corrected.iter().zip(&mut self.residual) {
            let q = if *c >= 0.0 { pos_scale } else { neg_scale };
            out.push(q);
            *r = c - q; // error feedback
        }
        out
    }

    /// Current residual (diagnostics).
    pub fn residual(&self) -> &[f32] {
        &self.residual
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_abs_err(a: &[f32], b: &[f32]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs() as f64)
            .sum::<f64>()
            / a.len() as f64
    }

    #[test]
    fn qsgd_is_unbiased() {
        let mut q = Qsgd::new(4, 1);
        let g = vec![0.7f32, -0.3, 0.1, 0.05, -0.9];
        let trials = 20_000;
        let mut mean = vec![0.0f64; g.len()];
        for _ in 0..trials {
            for (m, v) in mean.iter_mut().zip(q.quantize(&g)) {
                *m += v as f64 / trials as f64;
            }
        }
        for (m, &x) in mean.iter().zip(&g) {
            assert!((m - x as f64).abs() < 0.01, "biased: {m} vs {x}");
        }
    }

    #[test]
    fn qsgd_zero_is_fixed_point() {
        let mut q = Qsgd::new(8, 0);
        assert_eq!(q.quantize(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn qsgd_values_live_on_grid() {
        let mut q = Qsgd::new(4, 9);
        let g = vec![0.3f32, -0.8, 0.05];
        let norm = g.iter().map(|x| x * x).sum::<f32>().sqrt();
        for v in q.quantize(&g) {
            let level = v.abs() / norm * 4.0;
            assert!((level - level.round()).abs() < 1e-5, "off grid: {v}");
        }
    }

    #[test]
    fn terngrad_is_unbiased_and_ternary() {
        let mut t = TernGrad::new(2);
        let g = vec![0.5f32, -1.0, 0.25, 0.0];
        let trials = 20_000;
        let mut mean = vec![0.0f64; g.len()];
        for _ in 0..trials {
            let out = t.quantize(&g);
            for (i, v) in out.iter().enumerate() {
                assert!(
                    *v == 0.0 || (v.abs() - 1.0).abs() < 1e-6,
                    "not ternary: {v}"
                );
                mean[i] += *v as f64 / trials as f64;
            }
        }
        for (m, &x) in mean.iter().zip(&g) {
            assert!((m - x as f64).abs() < 0.02, "biased: {m} vs {x}");
        }
    }

    #[test]
    fn one_bit_error_feedback_converges_on_constant_gradient() {
        // Repeatedly quantizing a constant gradient: the *cumulative*
        // transmitted signal approaches the cumulative true signal.
        let g = vec![0.3f32, -0.7, 0.1, 0.9];
        let mut ob = OneBitSgd::new(4);
        let mut sent = vec![0.0f32; 4];
        let steps = 200;
        for _ in 0..steps {
            for (s, v) in sent.iter_mut().zip(ob.quantize(&g)) {
                *s += v;
            }
        }
        let target: Vec<f32> = g.iter().map(|x| x * steps as f32).collect();
        let err = mean_abs_err(&sent, &target);
        // Residual is bounded, so per-step cumulative drift vanishes.
        let per_step = err / steps as f64;
        assert!(per_step < 0.02, "cumulative drift {err}");
    }

    #[test]
    fn one_bit_output_is_two_valued() {
        let mut ob = OneBitSgd::new(5);
        let out = ob.quantize(&[1.0, 2.0, -1.0, -3.0, 0.5]);
        let mut distinct: Vec<f32> = out.clone();
        distinct.sort_by(|a, b| a.partial_cmp(b).unwrap());
        distinct.dedup();
        assert!(distinct.len() <= 2, "more than two levels: {distinct:?}");
    }

    #[test]
    fn qsgd_bits_accounting() {
        assert!((Qsgd::new(1, 0).bits_per_value() - 2.0).abs() < 1e-12);
        assert!((Qsgd::new(3, 0).bits_per_value() - 3.0).abs() < 1e-12);
    }
}
