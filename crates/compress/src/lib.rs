//! # p3-compress — gradient compression baselines
//!
//! The lossy-compression techniques the paper positions P3 against (§5.6,
//! §6): [`Dgc`] (Deep Gradient Compression, the main comparison of
//! Figure 11), [`Qsgd`], [`TernGrad`], [`OneBitSgd`] and [`GradDrop`].
//! All are implemented from their original papers with residual / error
//! feedback where prescribed, and are exercised by `p3-train`'s real
//! data-parallel runs.
//!
//! P3 itself never appears here — its whole point is that it transmits
//! **full** gradients and therefore cannot affect convergence; these
//! baselines quantify the accuracy cost of the alternative.
//!
//! # Examples
//!
//! ```
//! use p3_compress::Dgc;
//!
//! let mut dgc = Dgc::new(10_000, 0.9, 0.999, 4);
//! dgc.set_epoch(99); // past warm-up
//! let grad = vec![0.001f32; 10_000];
//! let sparse = dgc.step(&grad);
//! // 99.9% sparsity: 10 of 10,000 coordinates transmitted.
//! assert_eq!(sparse.nnz(), 10);
//! assert!(sparse.compression_ratio() >= 500.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dgc;
mod dropping;
mod quant;
mod sparse;

pub use dgc::Dgc;
pub use dropping::GradDrop;
pub use quant::{OneBitSgd, Qsgd, TernGrad};
pub use sparse::SparseGrad;
