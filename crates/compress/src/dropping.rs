//! Gradient dropping (Aji & Heafield 2017): synchronize only coordinates
//! whose residual-corrected magnitude exceeds a threshold chosen for a
//! fixed compression ratio, accumulating the rest locally.

use crate::sparse::SparseGrad;

/// Per-tensor gradient-dropping state.
///
/// # Examples
///
/// ```
/// use p3_compress::GradDrop;
///
/// let mut gd = GradDrop::new(100, 50.0); // keep ~1 in 50
/// let grad: Vec<f32> = (0..100).map(|i| i as f32 / 100.0).collect();
/// let s = gd.step(&grad);
/// assert_eq!(s.nnz(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GradDrop {
    ratio: f64,
    residual: Vec<f32>,
}

impl GradDrop {
    /// Creates state for a tensor of length `len` keeping roughly one in
    /// `ratio` coordinates per step.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or `ratio < 1`.
    pub fn new(len: usize, ratio: f64) -> GradDrop {
        assert!(len > 0, "empty tensor");
        assert!(ratio >= 1.0, "compression ratio {ratio} below 1");
        GradDrop {
            ratio,
            residual: vec![0.0; len],
        }
    }

    /// Processes one gradient: adds it to the residual, transmits the
    /// top `len/ratio` coordinates and keeps the rest accumulated.
    ///
    /// # Panics
    ///
    /// Panics if `grad.len()` differs from the construction length.
    pub fn step(&mut self, grad: &[f32]) -> SparseGrad {
        assert_eq!(grad.len(), self.residual.len(), "gradient length mismatch");
        let n = grad.len();
        for (r, &g) in self.residual.iter_mut().zip(grad) {
            *r += g;
        }
        let keep = (((n as f64 / self.ratio) - 1e-9).ceil() as usize).clamp(1, n);
        let mut mags: Vec<f32> = self.residual.iter().map(|x| x.abs()).collect();
        let idx = n - keep;
        mags.select_nth_unstable_by(idx, |a, b| a.partial_cmp(b).expect("finite"));
        let kth = mags[idx];

        let mut indices = Vec::with_capacity(keep);
        let mut values = Vec::with_capacity(keep);
        for (i, r) in self.residual.iter_mut().enumerate() {
            if r.abs() >= kth && indices.len() < keep && *r != 0.0 {
                indices.push(i as u32);
                values.push(*r);
                *r = 0.0;
            }
        }
        SparseGrad::new(n, indices, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3_des::SplitMix64;

    #[test]
    fn keeps_the_largest() {
        let mut gd = GradDrop::new(5, 5.0);
        let s = gd.step(&[0.1, -9.0, 0.2, 0.3, 0.4]);
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.to_dense()[1], -9.0);
    }

    #[test]
    fn residual_plus_sent_conserves_mass() {
        let mut rng = SplitMix64::new(7);
        let mut gd = GradDrop::new(64, 16.0);
        let mut total = vec![0.0f32; 64];
        let mut sent = vec![0.0f32; 64];
        for _ in 0..50 {
            let g: Vec<f32> = (0..64).map(|_| rng.normal() as f32).collect();
            for (t, &x) in total.iter_mut().zip(&g) {
                *t += x;
            }
            let s = gd.step(&g);
            for (a, b) in sent.iter_mut().zip(s.to_dense()) {
                *a += b;
            }
        }
        for i in 0..64 {
            let recon = sent[i] + gd.residual[i];
            assert!((recon - total[i]).abs() < 1e-3, "coordinate {i} leaked");
        }
    }

    #[test]
    fn ratio_one_sends_everything() {
        let mut gd = GradDrop::new(8, 1.0);
        let g = vec![1.0f32; 8];
        let s = gd.step(&g);
        assert_eq!(s.nnz(), 8);
        assert!(gd.residual.iter().all(|&r| r == 0.0));
    }

    #[test]
    #[should_panic(expected = "below 1")]
    fn sub_unit_ratio_rejected() {
        GradDrop::new(4, 0.5);
    }
}
