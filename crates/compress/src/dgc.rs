//! Deep Gradient Compression (Lin et al., ICLR 2018) — the compression
//! baseline of the paper's §5.6 / Figure 11.
//!
//! DGC transmits only the top-k gradient coordinates by magnitude and
//! accumulates the rest locally, with two corrections that make extreme
//! sparsity (99.9%) trainable:
//!
//! * **momentum correction** — accumulate the *velocity* rather than the
//!   raw gradient, so delayed coordinates still carry momentum when they
//!   finally transmit;
//! * **momentum factor masking** — zero the velocity of transmitted
//!   coordinates, preventing stale momentum from double-counting.
//!
//! A warm-up schedule ramps sparsity (75% → 93.75% → 98.4375% → 99.6% →
//! 99.9%) over the first epochs, exactly as the original paper prescribes.

use crate::sparse::SparseGrad;

/// Per-tensor DGC state.
///
/// # Examples
///
/// ```
/// use p3_compress::Dgc;
///
/// let mut dgc = Dgc::new(1000, 0.9, 0.999, 4);
/// dgc.set_epoch(10); // past warm-up: full 99.9% sparsity
/// let grad = vec![0.01f32; 1000];
/// let sparse = dgc.step(&grad);
/// assert_eq!(sparse.nnz(), 1); // ceil(0.001 * 1000)
/// ```
#[derive(Debug, Clone)]
pub struct Dgc {
    momentum: f32,
    final_sparsity: f64,
    warmup_epochs: u32,
    epoch: u32,
    /// Velocity accumulator (momentum correction).
    u: Vec<f32>,
    /// Local gradient accumulator.
    v: Vec<f32>,
}

impl Dgc {
    /// Creates DGC state for a tensor of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`, momentum outside `[0, 1)`, or sparsity outside
    /// `(0, 1)`.
    pub fn new(len: usize, momentum: f32, final_sparsity: f64, warmup_epochs: u32) -> Dgc {
        assert!(len > 0, "empty tensor");
        assert!(
            (0.0..1.0).contains(&momentum),
            "momentum {momentum} outside [0, 1)"
        );
        assert!(
            final_sparsity > 0.0 && final_sparsity < 1.0,
            "sparsity {final_sparsity} outside (0, 1)"
        );
        Dgc {
            momentum,
            final_sparsity,
            warmup_epochs,
            epoch: 0,
            u: vec![0.0; len],
            v: vec![0.0; len],
        }
    }

    /// Advances the warm-up schedule.
    pub fn set_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }

    /// Sparsity in force for the current epoch: the original paper's
    /// exponential ramp 75%, 93.75%, 98.4375%, 99.6% … capped at the final
    /// sparsity after warm-up.
    pub fn current_sparsity(&self) -> f64 {
        if self.warmup_epochs == 0 || self.epoch >= self.warmup_epochs {
            return self.final_sparsity;
        }
        // Keep ratio shrinks 4x per warm-up epoch starting from 25%.
        let keep = 0.25 * 0.25f64.powi(self.epoch as i32);
        (1.0 - keep).min(self.final_sparsity)
    }

    /// Processes one local gradient: updates velocity and accumulation,
    /// selects the top-k by |accumulated velocity|, zeroes their state
    /// (factor masking) and returns them for transmission.
    ///
    /// # Panics
    ///
    /// Panics if `grad.len()` differs from the construction length.
    pub fn step(&mut self, grad: &[f32]) -> SparseGrad {
        assert_eq!(grad.len(), self.u.len(), "gradient length mismatch");
        let n = grad.len();
        // Momentum correction: u ← m·u + g; v ← v + u.
        for ((u, v), &g) in self.u.iter_mut().zip(&mut self.v).zip(grad) {
            *u = self.momentum * *u + g;
            *v += *u;
        }

        // The 1e-9 guard keeps e.g. (1 − 0.999)·1000 from ceiling to 2.
        let keep = (((1.0 - self.current_sparsity()) * n as f64) - 1e-9)
            .ceil()
            .max(1.0) as usize;
        let keep = keep.min(n);

        // Threshold = k-th largest |v|. Full sort is O(n log n) but n is a
        // single tensor here; select_nth keeps it O(n).
        let mut mags: Vec<f32> = self.v.iter().map(|x| x.abs()).collect();
        let kth = {
            let idx = n - keep;
            mags.select_nth_unstable_by(idx, |a, b| a.partial_cmp(b).expect("finite"));
            mags[idx]
        };

        let mut indices = Vec::with_capacity(keep);
        let mut values = Vec::with_capacity(keep);
        for (i, v) in self.v.iter_mut().enumerate() {
            if v.abs() >= kth && indices.len() < keep && *v != 0.0 {
                indices.push(i as u32);
                values.push(*v);
                // Momentum factor masking.
                *v = 0.0;
                self.u[i] = 0.0;
            }
        }
        SparseGrad::new(n, indices, values)
    }

    /// Sum of |residual| still held locally (diagnostics).
    pub fn residual_mass(&self) -> f64 {
        self.v.iter().map(|x| x.abs() as f64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3_des::SplitMix64;

    #[test]
    fn top_k_selection() {
        let mut dgc = Dgc::new(10, 0.0, 0.8, 0); // keep 20% = 2 entries
        let grad = vec![0.1, -5.0, 0.2, 3.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let s = dgc.step(&grad);
        assert_eq!(s.nnz(), 2);
        let dense = s.to_dense();
        assert_eq!(dense[1], -5.0);
        assert_eq!(dense[3], 3.0);
    }

    #[test]
    fn residuals_accumulate_and_eventually_send() {
        let mut dgc = Dgc::new(4, 0.0, 0.75, 0); // keep 1 per step
                                                 // A small persistent gradient on index 2 must eventually win.
        let grad = vec![1.0, 0.0, 0.3, 0.0];
        let mut sent2 = 0.0f32;
        for _ in 0..10 {
            let s = dgc.step(&grad);
            sent2 += s.to_dense()[2];
        }
        assert!(sent2 > 0.0, "small coordinate never transmitted");
    }

    #[test]
    fn no_information_lost_without_momentum() {
        // With momentum 0, total transmitted mass per coordinate equals the
        // total gradient mass (residual carries the rest).
        let mut rng = SplitMix64::new(4);
        let mut dgc = Dgc::new(50, 0.0, 0.9, 0);
        let mut total_grad = [0.0f32; 50];
        let mut total_sent = [0.0f32; 50];
        for _ in 0..100 {
            let g: Vec<f32> = (0..50).map(|_| rng.normal() as f32).collect();
            for (t, &x) in total_grad.iter_mut().zip(&g) {
                *t += x;
            }
            let s = dgc.step(&g);
            for (t, x) in total_sent.iter_mut().zip(s.to_dense()) {
                *t += x;
            }
        }
        // sent + residual == total.
        for i in 0..50 {
            let residual = total_grad[i] - total_sent[i];
            let _ = residual; // compared in aggregate below
        }
        let sent_mass: f64 = total_sent.iter().map(|x| *x as f64).sum();
        let grad_mass: f64 = total_grad.iter().map(|x| *x as f64).sum();
        let residual: f64 = dgc.v.iter().map(|x| *x as f64).sum();
        assert!(
            (grad_mass - sent_mass - residual).abs() < 1e-2,
            "mass not conserved: {grad_mass} vs {sent_mass} + {residual}"
        );
    }

    #[test]
    fn warmup_schedule_ramps() {
        let mut dgc = Dgc::new(100, 0.9, 0.999, 4);
        dgc.set_epoch(0);
        assert!((dgc.current_sparsity() - 0.75).abs() < 1e-12);
        dgc.set_epoch(1);
        assert!((dgc.current_sparsity() - 0.9375).abs() < 1e-12);
        dgc.set_epoch(2);
        assert!((dgc.current_sparsity() - 0.984375).abs() < 1e-12);
        dgc.set_epoch(4);
        assert_eq!(dgc.current_sparsity(), 0.999);
        dgc.set_epoch(40);
        assert_eq!(dgc.current_sparsity(), 0.999);
    }

    #[test]
    fn masking_zeroes_transmitted_state() {
        let mut dgc = Dgc::new(4, 0.9, 0.75, 0);
        let s = dgc.step(&[10.0, 0.0, 0.0, 0.0]);
        assert_eq!(s.to_dense()[0], 10.0);
        assert_eq!(dgc.u[0], 0.0);
        assert_eq!(dgc.v[0], 0.0);
    }

    #[test]
    fn always_sends_at_least_one() {
        let mut dgc = Dgc::new(1000, 0.9, 0.9999, 0);
        let s = dgc.step(&vec![1e-8; 1000]);
        assert_eq!(s.nnz(), 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_rejected() {
        Dgc::new(4, 0.9, 0.9, 0).step(&[1.0]);
    }
}
