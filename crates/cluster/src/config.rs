//! Experiment configuration and results.

use crate::faults::FaultPlan;
use crate::snap::SnapshotError;
use p3_core::SyncStrategy;
use p3_des::{SimDuration, SimTime};
use p3_models::{ComputeProfile, ModelSpec, SampleUnit};
use p3_net::Bandwidth;
use p3_pserver::RetryPolicy;
use p3_topo::{Placement, Topology};

/// Full description of one simulated training run.
///
/// Defaults mirror the paper's testbed: one worker and one colocated server
/// shard per machine, 50 µs message latency, warm-up before measurement
/// (§5.1 averages throughput over steady-state iterations).
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of machines; machine `i` hosts worker `i` and server shard
    /// `i`.
    pub machines: usize,
    /// Per-direction NIC bandwidth of every machine.
    pub bandwidth: Bandwidth,
    /// The model being trained.
    pub model: ModelSpec,
    /// Synchronization strategy under test.
    pub strategy: SyncStrategy,
    /// Per-worker minibatch; defaults to the model's paper batch size.
    pub batch_per_worker: usize,
    /// Device speed profile.
    pub compute: ComputeProfile,
    /// Iterations discarded before measurement starts.
    pub warmup_iters: u64,
    /// Iterations measured.
    pub measure_iters: u64,
    /// Seed for sharding randomness, compute jitter and worker stagger.
    pub seed: u64,
    /// Endpoint per-message cost (serialization, ps-lite bookkeeping)
    /// charged between consecutive sends of one lane.
    pub msg_overhead: SimDuration,
    /// Fixed server cost to process one received message.
    pub proc_fixed: SimDuration,
    /// Server aggregation cost per parameter per received gradient message.
    pub agg_ns_per_param: f64,
    /// Server optimizer cost per parameter, paid when a round completes.
    pub upd_ns_per_param: f64,
    /// One-way network latency per message.
    pub latency: SimDuration,
    /// If set, record machine-0 NIC utilization with this bin width.
    pub trace_bin: Option<SimDuration>,
    /// Record the full slice-lifecycle event trace (`p3-trace`): compute
    /// and stall spans, egress enqueues, wire transfers, server
    /// aggregation, round completions and fault events. Off by default;
    /// recording draws no randomness and schedules nothing, so results are
    /// bit-identical either way.
    pub slice_trace: bool,
    /// Audit the recorded event trace against the invariant catalog
    /// (`p3-audit`, DESIGN.md §10) when the run finishes; a violation turns
    /// the run into [`RunError::AuditFailed`]. Implies nothing by itself —
    /// enable tracing too, or use [`ClusterConfig::with_audit`] which sets
    /// both.
    pub audit: bool,
    /// Maximum random offset of worker start times (cluster skew).
    pub start_stagger: SimDuration,
    /// Fraction of nominal NIC bandwidth usable as goodput (tc shaping,
    /// TCP incast, ps-lite serialization — calibrated to the paper's
    /// crossover bandwidths, DESIGN.md §6).
    pub net_efficiency: f64,
    /// Single-flow goodput ceiling in bytes/sec: ps-lite serializes each
    /// connection on one core (PHub, Luo et al. 2018). Penalizes the huge
    /// layer-granular messages of the baseline; sliced strategies spread
    /// across connections.
    pub flow_cap: f64,
    /// Parallel channels per collective transfer (NCCL-style): each ring /
    /// halving–doubling transfer is split into this many concurrent flows
    /// so a single peer-to-peer stream is not pinned to the `flow_cap`
    /// single-flow ceiling. Ignored by the PS backend, whose sliced pushes
    /// already spread across many connections.
    pub collective_channels: usize,
    /// Optional gradient compression on the wire (§6: compression is
    /// orthogonal to P3 and combinable with it). Shrinks payloads; the
    /// accuracy cost of compression is measured separately by `p3-train`.
    pub wire_compression: Option<WireCompression>,
    /// Injected faults. The default empty plan adds zero overhead and
    /// leaves results bit-identical to a fault-free build.
    pub faults: FaultPlan,
    /// Timeout/retransmit policy, armed only when the fault plan can lose
    /// messages ([`FaultPlan::needs_reliability`]).
    pub retry: RetryPolicy,
    /// How long servers wait for a silent worker before dropping it from
    /// the membership and completing rounds with the survivors.
    pub liveness_timeout: SimDuration,
    /// Optional rack-level topology. `None` (the default) is the paper's
    /// flat single-switch fabric; `Some` routes traffic over the compiled
    /// link graph (machine ports + oversubscribed rack uplinks) and must
    /// agree with `machines` on the cluster size. A single-rack topology
    /// is simulated result-identically to the flat fabric.
    pub topology: Option<Topology>,
    /// Where PS shards live relative to the racks (only meaningful with a
    /// topology; ignored on the flat fabric).
    pub placement: Placement,
    /// Which communication backend aggregates gradients: the parameter
    /// server (the paper's setting) or a collective allreduce hosted on
    /// the same engine, network, and fault machinery.
    pub backend: BackendKind,
    /// Emit a [`p3_trace::TraceEvent::StateHash`] trace event every this
    /// many simulator events (requires `slice_trace`). `0` (the default)
    /// disables emission; the rolling hash itself is always maintained and
    /// reported as [`RunResult::event_hash`].
    pub hash_every: u64,
}

/// The gradient-aggregation mechanism of a run.
///
/// All backends share the worker compute engine, the fluid network, the
/// fault machinery, and the trace/audit pipeline; they differ only in how
/// ready gradients travel and how updated parameters come back (the
/// `CommBackend` seam, DESIGN.md §11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Sharded parameter server: push → aggregate → pull, under the
    /// configured [`SyncStrategy`](p3_core::SyncStrategy).
    #[default]
    Ps,
    /// Ring allreduce: each slice's gradients circulate in `2(N−1)`
    /// neighbour-to-neighbour chunk steps, one collective in flight at a
    /// time (Horovod-style serialization), scheduled by slice priority.
    Ring,
    /// Recursive halving–doubling allreduce: `2·log₂N` pairwise exchange
    /// steps; requires a power-of-two machine count.
    HalvingDoubling,
}

impl BackendKind {
    /// Stable lower-case name, as accepted by `p3 simulate --backend`.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Ps => "ps",
            BackendKind::Ring => "ring",
            BackendKind::HalvingDoubling => "halving-doubling",
        }
    }

    /// True for the collective (non-parameter-server) backends.
    pub fn is_collective(self) -> bool {
        self != BackendKind::Ps
    }
}

/// Payload shrink factors of a lossy compression scheme, as seen by the
/// network (e.g. DGC at 99.9% sparsity pushes ~500× less; the returned
/// update is the union of the workers' selections, so it compresses less).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireCompression {
    /// Dense bytes / transmitted bytes for worker→server gradients.
    pub push_ratio: f64,
    /// Dense bytes / transmitted bytes for server→worker updates.
    pub response_ratio: f64,
}

impl WireCompression {
    /// DGC at the given sparsity on a `workers`-machine cluster: pushes
    /// carry index+value pairs for the kept fraction; responses carry the
    /// union across workers (up to `workers×` the kept fraction).
    ///
    /// # Panics
    ///
    /// Panics if sparsity is outside `(0, 1)` or `workers == 0`.
    pub fn dgc(sparsity: f64, workers: usize) -> WireCompression {
        assert!(sparsity > 0.0 && sparsity < 1.0, "bad sparsity {sparsity}");
        assert!(workers > 0, "no workers");
        let kept = 1.0 - sparsity;
        // Index+value doubles per-entry bytes.
        let push_ratio = 1.0 / (kept * 2.0);
        let response_ratio = 1.0 / ((kept * workers as f64).min(1.0) * 2.0);
        WireCompression {
            push_ratio,
            response_ratio,
        }
    }
}

impl ClusterConfig {
    /// A run with the paper's defaults.
    pub fn new(
        model: ModelSpec,
        strategy: SyncStrategy,
        machines: usize,
        bandwidth: Bandwidth,
    ) -> Self {
        let batch = model.default_batch();
        ClusterConfig {
            machines,
            bandwidth,
            model,
            strategy,
            batch_per_worker: batch,
            compute: ComputeProfile::p4000(),
            warmup_iters: 3,
            measure_iters: 12,
            seed: 0x9e3779b9,
            msg_overhead: SimDuration::from_micros(100),
            proc_fixed: SimDuration::from_micros(10),
            agg_ns_per_param: 2.0,
            upd_ns_per_param: 3.0,
            latency: SimDuration::from_micros(50),
            trace_bin: None,
            slice_trace: false,
            audit: false,
            start_stagger: SimDuration::from_millis(2),
            net_efficiency: 0.25,
            flow_cap: 120e6,
            collective_channels: 4,
            wire_compression: None,
            faults: FaultPlan::none(),
            retry: RetryPolicy::default(),
            backend: BackendKind::Ps,
            liveness_timeout: SimDuration::from_secs(5),
            topology: None,
            placement: Placement::Spread,
            hash_every: 0,
        }
    }

    /// Routes traffic over a rack-level topology instead of the flat
    /// switch. The topology's machine count must equal `machines`
    /// (validated when the run starts).
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Chooses a PS-shard placement policy (used with
    /// [`ClusterConfig::with_topology`]).
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables NIC utilization tracing with the given bin (the paper uses
    /// 10 ms).
    pub fn with_trace(mut self, bin: SimDuration) -> Self {
        self.trace_bin = Some(bin);
        self
    }

    /// Overrides warm-up and measured iteration counts.
    pub fn with_iters(mut self, warmup: u64, measure: u64) -> Self {
        assert!(measure > 0, "must measure at least one iteration");
        self.warmup_iters = warmup;
        self.measure_iters = measure;
        self
    }

    /// Enables the slice-lifecycle event trace (see
    /// [`ClusterConfig::slice_trace`]).
    pub fn with_slice_trace(mut self) -> Self {
        self.slice_trace = true;
        self
    }

    /// Enables the inline trace audit: the run records the slice-lifecycle
    /// trace and, on completion, replays it through `p3-audit`'s invariant
    /// catalog. Any violation fails the run with
    /// [`RunError::AuditFailed`].
    pub fn with_audit(mut self) -> Self {
        self.slice_trace = true;
        self.audit = true;
        self
    }

    /// The audit-relevant facts of this configuration, for embedding in an
    /// exported trace (`p3_trace::export_trace_json`) so `p3 audit` can run
    /// the configuration-gated checks offline.
    pub fn trace_meta(&self) -> p3_trace::TraceMeta {
        p3_trace::TraceMeta {
            machines: self.machines,
            // Collective backends force single-lane worker egress (chunk
            // steps are strictly ordered), whatever the strategy says.
            single_consumer: Some(
                self.backend.is_collective()
                    || matches!(self.strategy.egress, p3_core::Egress::SingleConsumer),
            ),
            window: Some(self.machines),
            // Uniform per-port capacity only exists on the flat fabric;
            // topology runs bound flows per link, which the flat check
            // cannot express.
            port_bytes_per_sec: self
                .topology
                .is_none()
                .then(|| self.bandwidth.bytes_per_sec() * self.net_efficiency),
            strategy: Some(self.strategy.name().to_string()),
            model: Some(self.model.name().to_string()),
            collective: Some(self.backend.is_collective()),
        }
    }

    /// Installs a fault-injection plan (validated when the run starts).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Overrides the timeout/retransmit policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Selects the gradient-aggregation backend (validated when the run
    /// starts: halving–doubling needs a power-of-two cluster, and the
    /// collective backends reject crash plans and wire compression).
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides the number of parallel channels each collective transfer
    /// is split into (validated when the run starts: must be at least one).
    pub fn with_collective_channels(mut self, channels: usize) -> Self {
        self.collective_channels = channels;
        self
    }

    /// Emits a rolling state-hash trace event every `every` simulator
    /// events (and enables the slice trace, which carries them). Two runs
    /// of the same configuration record identical hash streams; comparing
    /// streams of two diverging configurations bisects the divergence to
    /// the first differing event.
    pub fn with_state_hash_every(mut self, every: u64) -> Self {
        self.hash_every = every;
        self.slice_trace = true;
        self
    }
}

/// A per-machine NIC utilization trace pair, in Gbps per bin.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationTrace {
    /// Bin width.
    pub bin: SimDuration,
    /// Outbound (transmit) Gbps per bin.
    pub tx_gbps: Vec<f64>,
    /// Inbound (receive) Gbps per bin.
    pub rx_gbps: Vec<f64>,
}

/// Delivered-message counts over a whole run, by protocol type — the
/// protocol-conformance ledger (every strategy has an exactly predictable
/// message budget, which the test suite pins).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessageStats {
    /// Worker→server gradient pushes delivered.
    pub pushes: u64,
    /// Server→worker parameter responses delivered.
    pub responses: u64,
    /// Server→worker update notifications delivered (baseline only).
    pub notifies: u64,
    /// Worker→server pull requests delivered.
    pub pull_requests: u64,
    /// Worker→rack-aggregator partial pushes delivered (rack-local
    /// placement only).
    pub rack_pushes: u64,
    /// Rack-aggregator→server combined pushes delivered (rack-local
    /// placement only).
    pub combined_pushes: u64,
    /// Worker→worker collective chunks delivered (reduce-scatter plus
    /// allgather; ring and halving–doubling backends only).
    pub collective_chunks: u64,
}

/// Counters of everything the fault-injection and reliability machinery
/// did during a run. All-zero for an empty [`FaultPlan`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages dropped by the lossy network.
    pub messages_lost: u64,
    /// Retransmissions sent after a retry timeout.
    pub retransmits: u64,
    /// Messages abandoned after exhausting the retry budget.
    pub gave_up: u64,
    /// Gradient pushes discarded because their round had already completed
    /// (re-sent by a rejoining worker, or raced a degraded completion).
    pub stale_pushes_dropped: u64,
    /// Gradient pushes discarded because the same worker already
    /// contributed to that round (duplicates from a crash/rejoin replay).
    pub duplicate_pushes_dropped: u64,
    /// Key-rounds completed without a gradient from every configured
    /// worker (graceful degradation after a liveness timeout).
    pub degraded_rounds: u64,
    /// In-flight transmissions cancelled by worker crashes.
    pub flows_cancelled: u64,
    /// Collectives aborted mid-flight by a membership change and
    /// relaunched over the surviving group (ring / halving–doubling
    /// backends only).
    pub collectives_aborted: u64,
}

/// Traffic carried by one link of a compiled topology over a whole run.
///
/// Only populated when the run had a [`Topology`]; the flat fabric reports
/// an empty list.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkUtilization {
    /// Link name from the compiled graph (`m3.tx`, `rack1.up`, …).
    pub name: String,
    /// Fraction of the run during which at least one flow crossed the
    /// link.
    pub busy_fraction: f64,
    /// Total bytes carried.
    pub bytes: f64,
    /// True for shared fabric links (rack uplinks/downlinks) as opposed to
    /// per-machine NIC ports.
    pub transit: bool,
}

/// Why a simulated run could not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The event queue drained before every worker reached its iteration
    /// target; `progress` is each worker's completed-iteration count.
    Deadlock {
        /// Iterations completed per worker when the queue drained.
        progress: Vec<u64>,
    },
    /// The run processed more events than the safety cap — a wedged or
    /// pathologically slow configuration.
    EventCapExceeded {
        /// The cap that was hit.
        cap: u64,
    },
    /// The configuration is self-contradictory (e.g. a fault plan naming a
    /// machine that does not exist).
    InvalidConfig(String),
    /// The run finished but its event trace violated the invariant catalog
    /// (only with [`ClusterConfig::with_audit`]); the string is the full
    /// audit report.
    AuditFailed(String),
    /// A snapshot file could not be decoded (truncated, corrupt, wrong
    /// version, or taken under a different configuration).
    Snapshot(SnapshotError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Deadlock { progress } => {
                write!(
                    f,
                    "simulation deadlocked: no events left, progress {progress:?}"
                )
            }
            RunError::EventCapExceeded { cap } => {
                write!(f, "event cap {cap} exceeded — wedged simulation")
            }
            RunError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            RunError::AuditFailed(report) => {
                write!(f, "trace audit failed:\n{report}")
            }
            RunError::Snapshot(e) => write!(f, "snapshot error: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Outcome of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Aggregate cluster throughput in samples/sec (the paper's y-axis).
    pub throughput: f64,
    /// Mean per-worker throughput in samples/sec.
    pub per_worker_throughput: f64,
    /// Unit of `throughput` (images or sentences per second).
    pub unit: SampleUnit,
    /// Mean measured iteration duration across workers.
    pub mean_iteration: SimDuration,
    /// Median measured iteration duration, pooled across workers.
    pub p50_iteration: SimDuration,
    /// 99th-percentile measured iteration duration, pooled across workers
    /// (the tail that stragglers and faults stretch).
    pub p99_iteration: SimDuration,
    /// Mean fraction of wall time workers spent stalled waiting for
    /// parameters (the paper's "Delay" made measurable).
    pub mean_stall_fraction: f64,
    /// Total time each worker spent stalled waiting for parameters, over
    /// the whole run (warm-up included), indexed by machine.
    pub stalled_per_worker: Vec<SimDuration>,
    /// Simulated instant at which the last worker finished measuring.
    pub finished_at: SimTime,
    /// Total simulator events processed (diagnostics).
    pub events: u64,
    /// Most flows ever simultaneously in the network — a deterministic
    /// measure of how much concurrent traffic the run drove (and of the
    /// allocator work each reallocation performed). Snapshot-carried, so a
    /// resumed run reports the same peak.
    pub peak_in_flight_flows: u64,
    /// Rolling state hash folded over every processed `(time, event)`
    /// pair. Two runs of the same configuration finish with equal hashes;
    /// it is the cheap digest for run-twice and resume-equivalence
    /// comparisons.
    pub event_hash: u64,
    /// Delivered-message counts by protocol type.
    pub messages: MessageStats,
    /// Fault-injection and reliability counters (all zero without faults).
    pub faults: FaultStats,
    /// Machine-0 NIC trace, when tracing was enabled.
    pub trace: Option<UtilizationTrace>,
    /// Per-link traffic totals of the compiled topology (empty on the flat
    /// fabric).
    pub links: Vec<LinkUtilization>,
    /// Engine self-profile (wall-clock timers, work counters, events/sec),
    /// present only when the run was started via
    /// [`ClusterSim::with_profiling`](crate::ClusterSim::with_profiling).
    /// Wall-clock readings vary run to run; every determinism-sensitive
    /// field of this struct is independent of whether profiling was on.
    pub profile: Option<p3_prof::ProfileReport>,
}

impl RunResult {
    /// Speedup of this run's throughput over a baseline run.
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        self.throughput / baseline.throughput
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let cfg = ClusterConfig::new(
            ModelSpec::resnet50(),
            SyncStrategy::p3(),
            4,
            Bandwidth::from_gbps(10.0),
        );
        assert_eq!(cfg.batch_per_worker, 32);
        assert_eq!(cfg.machines, 4);
        assert!(cfg.warmup_iters > 0);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_measure_rejected() {
        ClusterConfig::new(
            ModelSpec::resnet50(),
            SyncStrategy::p3(),
            2,
            Bandwidth::from_gbps(1.0),
        )
        .with_iters(0, 0);
    }

    #[test]
    fn speedup_ratio() {
        let mk = |t: f64| RunResult {
            throughput: t,
            per_worker_throughput: t / 4.0,
            unit: SampleUnit::Images,
            mean_iteration: SimDuration::from_secs(1),
            p50_iteration: SimDuration::from_secs(1),
            p99_iteration: SimDuration::from_secs(1),
            mean_stall_fraction: 0.1,
            stalled_per_worker: vec![SimDuration::from_millis(100); 4],
            finished_at: SimTime::from_secs(10),
            events: 0,
            peak_in_flight_flows: 0,
            event_hash: 0,
            messages: MessageStats::default(),
            faults: FaultStats::default(),
            trace: None,
            links: Vec::new(),
            profile: None,
        };
        assert!((mk(150.0).speedup_over(&mk(100.0)) - 1.5).abs() < 1e-12);
    }
}
