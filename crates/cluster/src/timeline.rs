//! ASCII timeline rendering of a recorded slice-lifecycle trace.
//!
//! Converts a [`TraceLog`] from an instrumented run into the Gantt
//! vocabulary of [`crate::gantt`] — one labelled row per machine resource
//! (compute, stall, tx, rx, agg), segment times in simulated seconds — and
//! renders it with the same fixed-width [`ascii_gantt`] used for the
//! paper's Figure 4/6 regenerations. This is the terminal-friendly
//! counterpart of the Perfetto export in `p3-trace`.

use crate::gantt::{ascii_gantt, Lane, Schedule, Segment};
use p3_des::SimTime;
use p3_trace::{TraceEvent, TraceLog};
use std::collections::BTreeMap;

/// Builds a Gantt [`Schedule`] from a recorded trace, cut off at the
/// instant every one of the `machines` workers has completed `iterations`
/// iterations (the whole log when `iterations` is zero or never reached).
///
/// Rows: `w{m} compute` and `w{m} stall` on the compute lane, `m{m} tx` /
/// `m{m} rx` for wire transfers, and `s{m} agg` for server aggregation.
/// On topology runs, transfers whose rate was bound by a transit link
/// (link id ≥ `2 * machines`, i.e. a switch uplink/downlink rather than
/// an endpoint port) additionally appear on a `link l{id}` row, making
/// core congestion visible as its own lane. Spans still open at the
/// cutoff are dropped.
pub fn timeline_schedule(log: &TraceLog, machines: usize, iterations: u64) -> Schedule {
    let mut cutoff: Option<SimTime> = None;
    if iterations > 0 {
        let mut done = vec![0u64; machines];
        for te in log.events() {
            if let TraceEvent::IterationEnd { worker, .. } = te.event {
                if worker < machines {
                    done[worker] += 1;
                    if done.iter().all(|&d| d >= iterations) {
                        cutoff = Some(te.at);
                        break;
                    }
                }
            }
        }
    }

    let mut segments: Vec<Segment> = Vec::new();
    let mut compute_open: BTreeMap<(usize, usize, u8), SimTime> = BTreeMap::new();
    let mut stall_open: BTreeMap<(usize, usize), SimTime> = BTreeMap::new();
    let mut agg_open: BTreeMap<(usize, usize, u64, usize), SimTime> = BTreeMap::new();
    let mut wire_open: BTreeMap<u64, (SimTime, usize, usize)> = BTreeMap::new();
    let mut push = |label: String, lane: Lane, s: SimTime, e: SimTime| {
        segments.push(Segment {
            label,
            lane,
            start: s.as_secs_f64(),
            end: e.as_secs_f64().max(s.as_secs_f64()),
        });
    };

    for te in log.events() {
        let at = te.at;
        if cutoff.is_some_and(|c| at > c) {
            break;
        }
        match te.event {
            TraceEvent::ComputeStart {
                worker,
                phase,
                block,
            } => {
                compute_open.insert((worker, block, phase as u8), at);
            }
            TraceEvent::ComputeEnd {
                worker,
                phase,
                block,
            } => {
                if let Some(t0) = compute_open.remove(&(worker, block, phase as u8)) {
                    push(format!("w{worker} compute"), Lane::Compute, t0, at);
                }
            }
            TraceEvent::StallStart { worker, block } => {
                stall_open.insert((worker, block), at);
            }
            TraceEvent::StallEnd { worker, block } => {
                if let Some(t0) = stall_open.remove(&(worker, block)) {
                    push(format!("w{worker} stall"), Lane::Compute, t0, at);
                }
            }
            TraceEvent::WireStart {
                msg_id, src, dst, ..
            } => {
                wire_open.insert(msg_id, (at, src, dst));
            }
            TraceEvent::WireEnd {
                msg_id, bottleneck, ..
            } => {
                if let Some((t0, src, dst)) = wire_open.remove(&msg_id) {
                    push(format!("m{src} tx"), Lane::Send, t0, at);
                    push(format!("m{dst} rx"), Lane::Receive, t0, at);
                    // Transit (core) bottlenecks get their own lane; port
                    // bottlenecks are already visible on the tx/rx rows.
                    if let Some(l) = bottleneck {
                        if l >= 2 * machines {
                            push(format!("link l{l}"), Lane::Send, t0, at);
                        }
                    }
                }
            }
            TraceEvent::AggStart {
                server,
                key,
                round,
                worker,
            } => {
                agg_open.insert((server, key, round, worker), at);
            }
            TraceEvent::AggEnd {
                server,
                key,
                round,
                worker,
            } => {
                if let Some(t0) = agg_open.remove(&(server, key, round, worker)) {
                    push(format!("s{server} agg"), Lane::Update, t0, at);
                }
            }
            _ => {}
        }
    }

    segments.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite times"));
    let makespan = segments.iter().map(|s| s.end).fold(0.0, f64::max);
    Schedule {
        segments,
        iteration_gap: 0.0,
        makespan,
    }
}

/// Renders the first `iterations` iterations of a recorded trace as a
/// fixed-width ASCII Gantt chart, `width` columns wide. Returns a marker
/// line when the trace contains no completed spans.
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn ascii_timeline(log: &TraceLog, machines: usize, iterations: u64, width: usize) -> String {
    assert!(width > 0, "zero timeline width");
    let sched = timeline_schedule(log, machines, iterations);
    if sched.segments.is_empty() || sched.makespan <= 0.0 {
        return String::from("(empty trace)\n");
    }
    ascii_gantt(&sched, sched.makespan / width as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3_trace::{ComputePhase, TraceSink};

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn sample_log() -> TraceLog {
        let mut log = TraceLog::new();
        log.record(
            t(0),
            TraceEvent::ComputeStart {
                worker: 0,
                phase: ComputePhase::Forward,
                block: 0,
            },
        );
        log.record(
            t(10),
            TraceEvent::ComputeEnd {
                worker: 0,
                phase: ComputePhase::Forward,
                block: 0,
            },
        );
        log.record(
            t(10),
            TraceEvent::WireStart {
                msg_id: 1,
                src: 0,
                dst: 1,
                bytes: 64,
                priority: 0,
            },
        );
        log.record(
            t(20),
            TraceEvent::WireEnd {
                msg_id: 1,
                src: 0,
                dst: 1,
                bytes: 64,
                bottleneck: None,
            },
        );
        log.record(
            t(20),
            TraceEvent::AggStart {
                server: 1,
                key: 0,
                round: 0,
                worker: 0,
            },
        );
        log.record(
            t(25),
            TraceEvent::AggEnd {
                server: 1,
                key: 0,
                round: 0,
                worker: 0,
            },
        );
        log.record(t(25), TraceEvent::IterationEnd { worker: 0, iter: 1 });
        log.record(t(25), TraceEvent::IterationEnd { worker: 1, iter: 1 });
        // Past the 1-iteration cutoff:
        log.record(
            t(30),
            TraceEvent::ComputeStart {
                worker: 0,
                phase: ComputePhase::Forward,
                block: 0,
            },
        );
        log.record(
            t(40),
            TraceEvent::ComputeEnd {
                worker: 0,
                phase: ComputePhase::Forward,
                block: 0,
            },
        );
        log
    }

    #[test]
    fn schedule_covers_all_lanes() {
        let s = timeline_schedule(&sample_log(), 2, 0);
        let labels: Vec<&str> = s.segments.iter().map(|x| x.label.as_str()).collect();
        assert!(labels.contains(&"w0 compute"));
        assert!(labels.contains(&"m0 tx"));
        assert!(labels.contains(&"m1 rx"));
        assert!(labels.contains(&"s1 agg"));
        assert!((s.makespan - 40e-6).abs() < 1e-12);
    }

    #[test]
    fn iteration_cutoff_truncates_the_schedule() {
        let s = timeline_schedule(&sample_log(), 2, 1);
        // The second compute span (30..40 µs) is past the cutoff at 25 µs.
        assert!((s.makespan - 25e-6).abs() < 1e-12);
        assert_eq!(
            s.segments
                .iter()
                .filter(|x| x.label == "w0 compute")
                .count(),
            1
        );
    }

    #[test]
    fn transit_bottlenecks_get_their_own_lane() {
        let mut log = TraceLog::new();
        // Two machines → link ids 0..4 are ports; id 4 is the first transit
        // link. A port-bottlenecked transfer must not grow a link row.
        log.record(
            t(0),
            TraceEvent::WireStart {
                msg_id: 1,
                src: 0,
                dst: 1,
                bytes: 64,
                priority: 0,
            },
        );
        log.record(
            t(10),
            TraceEvent::WireEnd {
                msg_id: 1,
                src: 0,
                dst: 1,
                bytes: 64,
                bottleneck: Some(4),
            },
        );
        log.record(
            t(10),
            TraceEvent::WireStart {
                msg_id: 2,
                src: 1,
                dst: 0,
                bytes: 64,
                priority: 0,
            },
        );
        log.record(
            t(20),
            TraceEvent::WireEnd {
                msg_id: 2,
                src: 1,
                dst: 0,
                bytes: 64,
                bottleneck: Some(1),
            },
        );
        let s = timeline_schedule(&log, 2, 0);
        let labels: Vec<&str> = s.segments.iter().map(|x| x.label.as_str()).collect();
        assert!(labels.contains(&"link l4"), "{labels:?}");
        assert!(
            !labels.iter().any(|l| l.starts_with("link l1")),
            "{labels:?}"
        );
    }

    #[test]
    fn ascii_timeline_renders_rows_and_bars() {
        let art = ascii_timeline(&sample_log(), 2, 0, 40);
        assert!(art.contains("w0 compute"));
        assert!(art.contains("s1 agg"));
        assert!(art.contains('#'));
    }

    #[test]
    fn empty_log_renders_a_marker() {
        assert_eq!(
            ascii_timeline(&TraceLog::new(), 2, 0, 40),
            "(empty trace)\n"
        );
    }
}
