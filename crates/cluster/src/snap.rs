//! Hand-rolled binary codec for engine snapshots.
//!
//! Snapshots must round-trip bit-exactly (floating-point rates included)
//! and fail loudly on malformed input, so the format is a flat
//! little-endian byte stream with an explicit magic + version header and
//! no external dependencies. Every scalar the engine holds maps onto one
//! of the primitives here; composites are written as `len` followed by
//! elements.
//!
//! Layout: `b"P3SNAP\0\0"` (8 bytes) · format version (`u32`) · config
//! fingerprint (`u64`) · body. Readers verify magic and version before
//! touching the body and report [`SnapshotError::Truncated`] instead of
//! panicking when the stream ends early.

use std::error::Error;
use std::fmt;

/// Magic prefix identifying a snapshot byte stream.
pub const SNAP_MAGIC: [u8; 8] = *b"P3SNAP\0\0";

/// Current snapshot format version. Bump on any layout change; readers
/// reject other versions rather than guessing. v2 appended the network's
/// deterministic work counters ([`p3_net::NetStats`]) to the net section.
pub const SNAP_VERSION: u32 = 2;

/// Why a snapshot byte stream could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The stream ended before the expected data did.
    Truncated,
    /// The stream does not start with the snapshot magic.
    BadMagic,
    /// The stream's format version is not the one this build writes.
    UnsupportedVersion {
        /// Version found in the stream header.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The stream decoded but its contents are inconsistent.
    Corrupt(String),
    /// The snapshot was taken under a different configuration than the
    /// one it is being restored into.
    ConfigMismatch,
    /// Reading or writing the snapshot file failed.
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion { found, expected } => {
                write!(
                    f,
                    "snapshot format v{found} unsupported (expected v{expected})"
                )
            }
            SnapshotError::Corrupt(why) => write!(f, "snapshot corrupt: {why}"),
            SnapshotError::ConfigMismatch => {
                write!(f, "snapshot was taken under a different configuration")
            }
            SnapshotError::Io(why) => write!(f, "snapshot io: {why}"),
        }
    }
}

impl Error for SnapshotError {}

/// FNV-1a over a byte slice; used for the config fingerprint and the
/// rolling state hash.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Folds one `u64` into a rolling FNV-1a hash.
pub fn fnv64_fold(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only snapshot encoder.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Starts a stream with the magic, format version, and config
    /// fingerprint already written.
    pub fn new(config_fingerprint: u64) -> SnapWriter {
        let mut w = SnapWriter { buf: Vec::new() };
        w.buf.extend_from_slice(&SNAP_MAGIC);
        w.u32(SNAP_VERSION);
        w.u64(config_fingerprint);
        w
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a `u32` little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u128` little-endian.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as `u64` (lengths, indices).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` as its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes an optional `u64` as a presence byte plus the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u64(x);
            }
            None => self.bool(false),
        }
    }

    /// Writes an optional `usize` as a presence byte plus the value.
    pub fn opt_usize(&mut self, v: Option<usize>) {
        self.opt_u64(v.map(|x| x as u64));
    }
}

/// Cursor-based snapshot decoder. Every accessor returns
/// [`SnapshotError::Truncated`] instead of panicking when the stream
/// runs out.
#[derive(Debug)]
pub struct SnapReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Validates the header (magic + version) and returns a reader
    /// positioned at the config fingerprint along with that fingerprint.
    pub fn new(data: &'a [u8]) -> Result<(SnapReader<'a>, u64), SnapshotError> {
        if data.len() < SNAP_MAGIC.len() {
            return Err(SnapshotError::Truncated);
        }
        if data[..SNAP_MAGIC.len()] != SNAP_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let mut r = SnapReader {
            data,
            pos: SNAP_MAGIC.len(),
        };
        let version = r.u32()?;
        if version != SNAP_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                expected: SNAP_VERSION,
            });
        }
        let fingerprint = r.u64()?;
        Ok((r, fingerprint))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.data.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Fails unless the whole stream was consumed — trailing bytes mean
    /// the stream and the decoder disagree about the layout.
    pub fn expect_end(&self) -> Result<(), SnapshotError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes",
                self.data.len() - self.pos
            )))
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool; any byte other than 0/1 is corrupt.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::Corrupt(format!("bool byte {b:#04x}"))),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let s = self.take(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, SnapshotError> {
        let s = self.take(16)?;
        let mut b = [0u8; 16];
        b.copy_from_slice(s);
        Ok(u128::from_le_bytes(b))
    }

    /// Reads a `usize` written as `u64`, rejecting values that do not fit.
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapshotError::Corrupt(format!("usize overflow: {v}")))
    }

    /// Reads a length field, sanity-capped so a corrupt stream cannot
    /// trigger a huge allocation.
    pub fn len(&mut self) -> Result<usize, SnapshotError> {
        let v = self.usize()?;
        // No engine collection remotely approaches this; a larger value
        // is a mis-framed stream.
        if v > 1 << 32 {
            return Err(SnapshotError::Corrupt(format!("implausible length {v}")));
        }
        Ok(v)
    }

    /// Reads an `f64` from its exact bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an optional `u64`.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        if self.bool()? {
            Ok(Some(self.u64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads an optional `usize`.
    pub fn opt_usize(&mut self) -> Result<Option<usize>, SnapshotError> {
        match self.opt_u64()? {
            Some(v) => usize::try_from(v)
                .map(Some)
                .map_err(|_| SnapshotError::Corrupt(format!("usize overflow: {v}"))),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new(0xfeed);
        w.u8(7);
        w.bool(true);
        w.bool(false);
        w.u32(0xdead_beef);
        w.u64(u64::MAX);
        w.u128(0x0123_4567_89ab_cdef_0123_4567_89ab_cdef);
        w.usize(42);
        w.f64(-0.125);
        w.f64(f64::NAN);
        w.opt_u64(Some(99));
        w.opt_u64(None);
        w.opt_usize(Some(3));
        let bytes = w.finish();

        let (mut r, fp) = SnapReader::new(&bytes).unwrap();
        assert_eq!(fp, 0xfeed);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.u128().unwrap(), 0x0123_4567_89ab_cdef_0123_4567_89ab_cdef);
        assert_eq!(r.usize().unwrap(), 42);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert!(r.f64().unwrap().is_nan()); // exact bit pattern preserved
        assert_eq!(r.opt_u64().unwrap(), Some(99));
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_usize().unwrap(), Some(3));
        r.expect_end().unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = SnapWriter::new(1).finish();
        bytes[0] = b'X';
        assert_eq!(
            SnapReader::new(&bytes).unwrap_err(),
            SnapshotError::BadMagic
        );
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = SnapWriter::new(1).finish();
        bytes[8] = 0xff; // low byte of the version field
        assert!(matches!(
            SnapReader::new(&bytes).unwrap_err(),
            SnapshotError::UnsupportedVersion {
                found: 0xff,
                expected: SNAP_VERSION
            }
        ));
    }

    #[test]
    fn truncation_reported_not_panicked() {
        let mut w = SnapWriter::new(1);
        w.u64(5);
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let r = SnapReader::new(&bytes[..cut]);
            match r {
                Err(SnapshotError::Truncated) => {}
                Ok((mut rd, _)) => assert_eq!(rd.u64().unwrap_err(), SnapshotError::Truncated),
                Err(e) => panic!("unexpected error at cut {cut}: {e}"),
            }
        }
    }

    #[test]
    fn trailing_bytes_are_corrupt() {
        let mut bytes = SnapWriter::new(1).finish();
        bytes.push(0);
        let (r, _) = SnapReader::new(&bytes).unwrap();
        assert!(matches!(r.expect_end(), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn bad_bool_byte_is_corrupt() {
        let mut w = SnapWriter::new(1);
        w.u8(2);
        let bytes = w.finish();
        let (mut r, _) = SnapReader::new(&bytes).unwrap();
        assert!(matches!(r.bool(), Err(SnapshotError::Corrupt(_))));
    }
}
