//! # p3-cluster — the data-parallel training cluster simulator
//!
//! Executes a [`SyncStrategy`](p3_core::SyncStrategy) end to end: every
//! machine hosts a worker (computing forward/backward passes with
//! calibrated per-block durations) and a colocated parameter-server shard
//! (aggregating, updating, responding), exchanging gradient and parameter
//! messages over the fluid network of `p3-net`. Throughput, iteration
//! times, and `bwm-ng`-style NIC utilization traces come out the other
//! side — the quantities plotted in Figures 7–10 and 12–14 of the paper.
//!
//! The analytic [`gantt`] module additionally reproduces the unit-time
//! schedules of Figures 4 and 6.
//!
//! # Examples
//!
//! ```no_run
//! use p3_cluster::{ClusterConfig, ClusterSim};
//! use p3_core::SyncStrategy;
//! use p3_models::ModelSpec;
//! use p3_net::Bandwidth;
//!
//! // VGG-19 on four machines at 15 Gbps: baseline vs P3.
//! let mk = |s: SyncStrategy| {
//!     ClusterConfig::new(ModelSpec::vgg19(), s, 4, Bandwidth::from_gbps(15.0))
//! };
//! let base = ClusterSim::new(mk(SyncStrategy::baseline())).run();
//! let p3 = ClusterSim::new(mk(SyncStrategy::p3())).run();
//! println!("P3 speedup: {:.2}x", p3.speedup_over(&base));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bound;
mod config;
mod egress;
mod engine;
mod faults;
pub mod gantt;
mod snap;
mod sweep;
mod timeline;

pub use config::{
    BackendKind, ClusterConfig, FaultStats, LinkUtilization, MessageStats, RunError, RunResult,
    UtilizationTrace, WireCompression,
};
pub use egress::{EgressUnit, OutMsg};
pub use engine::{ClusterSim, SnapshottedRun};
pub use faults::{FaultPlan, LinkDegradation, StragglerEpisode, WorkerCrash};
pub use snap::{SnapshotError, SNAP_MAGIC, SNAP_VERSION};
pub use sweep::{
    bandwidth_sweep, oversubscription_sweep, scalability_sweep, slice_size_sweep, throughput_of,
    SweepPoint,
};
pub use timeline::{ascii_timeline, timeline_schedule};
