//! Whole-engine snapshot, restore, and the per-event rolling hash.
//!
//! [`snapshot`] serializes every piece of *dynamic* engine state — the
//! clock, pending events, endpoint queues, in-flight messages and network
//! flows, RNG streams, counters — through the versioned [`crate::snap`]
//! codec. Static state (the shard plan, priorities, block timings, link
//! graph) is deliberately excluded: it is a pure function of the
//! [`ClusterConfig`] and is rebuilt by [`ClusterSim::new`] on restore. A
//! fingerprint of the configuration's `Debug` form travels in the header
//! so a snapshot cannot be restored under a different configuration.
//!
//! [`restore`] is the inverse. It never panics on malformed input: every
//! length, index, and cross-reference that the engine would later trust
//! (and index with) is validated here, and violations surface as
//! [`SnapshotError::Corrupt`].
//!
//! [`fold_event`] is the cheap rolling digest: an allocation-free FNV-1a
//! fold over each `(time, event)` pair the run loop processes. Equal
//! configurations produce equal fold sequences, so two runs that diverge
//! do so at the exact event where their hashes first differ.
//!
//! The module splits along the codec direction: [`encode`] writes a live
//! engine out, [`decode`] validates bytes back into one. This file keeps
//! only what both sides (and the hot loop) share.
//!
//! [`ClusterSim::new`]: super::ClusterSim::new
//! [`ClusterConfig`]: crate::config::ClusterConfig

mod decode;
mod encode;

pub(super) use decode::restore;
pub(super) use encode::snapshot;

use super::types::{Ev, Phase, Role};
use crate::config::ClusterConfig;
use crate::snap::{fnv64, fnv64_fold, SnapshotError};
use p3_des::SimTime;

/// Digest of the configuration a snapshot belongs to. The `Debug` form
/// covers every field (the struct derives it exhaustively), so any
/// configuration change — model, strategy, faults, seed — changes the
/// fingerprint and [`restore`] refuses the stale snapshot.
fn config_fingerprint(cfg: &ClusterConfig) -> u64 {
    fnv64(format!("{cfg:?}").as_bytes())
}

fn check(ok: bool, what: &str) -> Result<(), SnapshotError> {
    if ok {
        Ok(())
    } else {
        Err(SnapshotError::Corrupt(what.to_string()))
    }
}

// ---------------------------------------------------------------------
// Rolling per-event hash.

/// Folds one processed `(time, event)` pair into the rolling run digest.
/// Allocation-free: called once per event in the hot loop.
pub(super) fn fold_event(h: u64, t: SimTime, ev: &Ev) -> u64 {
    let h = fnv64_fold(h, t.as_nanos());
    match *ev {
        Ev::StartWorker { worker } => fnv64_fold(fnv64_fold(h, 0), worker as u64),
        Ev::Compute { worker, phase, inc } => {
            let h = fnv64_fold(fnv64_fold(h, 1), worker as u64);
            let (p, b) = match phase {
                Phase::Fwd(b) => (0, b),
                Phase::Bwd(b) => (1, b),
            };
            fnv64_fold(fnv64_fold(fnv64_fold(h, p), b as u64), inc as u64)
        }
        Ev::EgressReady {
            machine,
            role,
            dst,
            inc,
        } => {
            let h = fnv64_fold(fnv64_fold(h, 2), machine as u64);
            let h = fnv64_fold(h, role_tag(role) as u64);
            fnv64_fold(fnv64_fold(h, dst.0 as u64), inc as u64)
        }
        Ev::AdmitKick { machine, role } => {
            let h = fnv64_fold(fnv64_fold(h, 3), machine as u64);
            fnv64_fold(h, role_tag(role) as u64)
        }
        Ev::ProcDone { server } => fnv64_fold(fnv64_fold(h, 4), server as u64),
        Ev::NetWake => fnv64_fold(h, 5),
        Ev::StragglerStart { idx } => fnv64_fold(fnv64_fold(h, 6), idx as u64),
        Ev::StragglerEnd { idx } => fnv64_fold(fnv64_fold(h, 7), idx as u64),
        Ev::LinkDegradeStart { idx } => fnv64_fold(fnv64_fold(h, 8), idx as u64),
        Ev::LinkDegradeEnd { idx } => fnv64_fold(fnv64_fold(h, 9), idx as u64),
        Ev::Crash { idx } => fnv64_fold(fnv64_fold(h, 10), idx as u64),
        Ev::Rejoin { worker } => fnv64_fold(fnv64_fold(h, 11), worker as u64),
        Ev::RetryTimer { msg_id, attempt } => {
            fnv64_fold(fnv64_fold(fnv64_fold(h, 12), msg_id), attempt as u64)
        }
        Ev::LivenessTimeout { worker } => fnv64_fold(fnv64_fold(h, 13), worker as u64),
    }
}

fn role_tag(role: Role) -> u8 {
    match role {
        Role::Worker => 0,
        Role::Server => 1,
    }
}

fn role_from(tag: u8) -> Result<Role, SnapshotError> {
    match tag {
        0 => Ok(Role::Worker),
        1 => Ok(Role::Server),
        _ => Err(SnapshotError::Corrupt(format!("bad role tag {tag}"))),
    }
}
