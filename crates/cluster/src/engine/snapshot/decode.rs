//! Snapshot deserialization: validates bytes back into a mid-run
//! [`ClusterSim`]. Field order mirrors [`super::encode`] exactly. Every
//! length, index, and cross-reference the engine would later trust is
//! checked here against [`Bounds`], so hostile or truncated input can
//! never panic the engine — it surfaces as [`SnapshotError`].

use super::super::collective::{ActiveCollective, CollectiveState};
use super::super::types::{Ev, MsgCtx, MsgKind, Phase, ProcItem, ServerState, WorkerState};
use super::super::ClusterSim;
use super::{check, config_fingerprint, role_from};
use crate::config::ClusterConfig;
use crate::egress::{EgressUnit, OutMsg};
use crate::snap::{SnapReader, SnapshotError};
use p3_core::PrioQueue;
use p3_des::{EventQueue, SimDuration, SimTime, SplitMix64};
use p3_net::{
    CompletedFlow, DeliveringSnapshot, FlowId, FlowSnapshot, MachineId, NetStats, NetworkSnapshot,
    Priority,
};
use std::collections::{BTreeMap, VecDeque};

/// Index bounds a decoded snapshot must respect — anything the engine
/// will later use as an array index.
struct Bounds {
    machines: usize,
    blocks: usize,
    num_keys: usize,
    stragglers: usize,
    degradations: usize,
    crashes: usize,
}

/// Rebuilds a mid-run simulation from snapshot bytes. Never panics on
/// malformed input: structural violations return [`SnapshotError`].
pub(in crate::engine) fn restore(
    cfg: ClusterConfig,
    bytes: &[u8],
) -> Result<ClusterSim, SnapshotError> {
    let expected = config_fingerprint(&cfg);
    let (mut r, found) = SnapReader::new(bytes)?;
    if found != expected {
        return Err(SnapshotError::ConfigMismatch);
    }
    let mut sim = ClusterSim::new(cfg);
    if sim.config_error.is_some() {
        // The fingerprint matched a configuration the engine itself
        // rejects — the original run could never have snapshotted it.
        return Err(SnapshotError::ConfigMismatch);
    }
    let b = Bounds {
        machines: sim.cfg.machines,
        blocks: sim.cfg.model.blocks().len(),
        num_keys: sim.plan.num_keys(),
        stragglers: sim.cfg.faults.stragglers.len(),
        degradations: sim.cfg.faults.link_degradations.len(),
        crashes: sim.cfg.faults.crashes.len(),
    };
    let nlinks = sim.net.link_usage().len();
    let traced_ports = if sim.cfg.trace_bin.is_some() {
        b.machines
    } else {
        0
    };

    let now = SimTime::from_nanos(r.u64()?);
    let n = r.len()?;
    let mut pending = Vec::new();
    for _ in 0..n {
        let t = SimTime::from_nanos(r.u64()?);
        check(t >= now, "pending event scheduled before the clock")?;
        pending.push((t, decode_ev(&mut r, &b)?));
    }
    sim.queue = EventQueue::from_pending(now, pending);

    for i in 0..b.machines {
        decode_worker(&mut r, &mut sim.workers[i], &b)?;
    }
    for i in 0..b.machines {
        decode_server(&mut r, &mut sim.servers[i], &b)?;
    }
    let netsnap = decode_net(&mut r, &b, nlinks, traced_ports)?;

    let n = r.len()?;
    let mut msgs = BTreeMap::new();
    for _ in 0..n {
        let id = r.u64()?;
        let ctx = decode_msg_ctx(&mut r, &b)?;
        check(msgs.insert(id, ctx).is_none(), "duplicate message id")?;
    }
    let n = r.len()?;
    let mut flows = BTreeMap::new();
    for _ in 0..n {
        let flow = FlowId(r.u64()?);
        let mid = r.u64()?;
        check(msgs.contains_key(&mid), "flow references unknown message")?;
        check(flows.insert(flow, mid).is_none(), "duplicate flow id")?;
    }
    // Every flow the network will eventually deliver must resolve to a
    // registered message, or delivery would panic.
    for f in &netsnap.flows {
        check(
            flows.contains_key(&FlowId(f.id)),
            "network flow unknown to the engine",
        )?;
    }
    for d in &netsnap.delivering {
        check(
            flows.contains_key(&d.flow.id),
            "delivering flow unknown to the engine",
        )?;
    }
    sim.net.restore_from(&netsnap);
    sim.msgs = msgs;
    sim.flows = flows;

    sim.next_msg_id = r.u64()?;
    if let Some((&max_id, _)) = sim.msgs.last_key_value() {
        check(
            sim.next_msg_id > max_id,
            "message id counter behind live ids",
        )?;
    }
    sim.next_wake = r.opt_u64()?.map(SimTime::from_nanos);
    for i in 0..b.machines {
        sim.admit_gate[i] = [SimTime::from_nanos(r.u64()?), SimTime::from_nanos(r.u64()?)];
    }
    for i in 0..b.machines {
        sim.admit_kick_at[i] = [
            r.opt_u64()?.map(SimTime::from_nanos),
            r.opt_u64()?.map(SimTime::from_nanos),
        ];
    }
    sim.events = r.u64()?;

    sim.stats.pushes = r.u64()?;
    sim.stats.responses = r.u64()?;
    sim.stats.notifies = r.u64()?;
    sim.stats.pull_requests = r.u64()?;
    sim.stats.rack_pushes = r.u64()?;
    sim.stats.combined_pushes = r.u64()?;
    sim.stats.collective_chunks = r.u64()?;

    sim.loss_rng = SplitMix64::new(r.u64()?);
    for i in 0..b.machines {
        sim.dead_members[i] = r.bool()?;
    }
    sim.expected_pushes = r.u32()?;

    sim.faults.messages_lost = r.u64()?;
    sim.faults.retransmits = r.u64()?;
    sim.faults.gave_up = r.u64()?;
    sim.faults.stale_pushes_dropped = r.u64()?;
    sim.faults.duplicate_pushes_dropped = r.u64()?;
    sim.faults.degraded_rounds = r.u64()?;
    sim.faults.flows_cancelled = r.u64()?;
    sim.faults.collectives_aborted = r.u64()?;

    let n = r.len()?;
    sim.rack_agg.clear();
    for _ in 0..n {
        let machine = r.usize()?;
        let key = r.usize()?;
        let round = r.u64()?;
        let mask = r.u128()?;
        check(machine < b.machines, "rack aggregator out of range")?;
        check(key < b.num_keys, "rack-aggregation key out of range")?;
        sim.rack_agg.insert((machine, key, round), mask);
    }

    let has_collective = r.bool()?;
    check(
        has_collective == sim.collective.is_some(),
        "collective state presence contradicts the backend",
    )?;
    // Presence equality was just checked, so this decodes exactly when
    // the writer encoded.
    if let Some(st) = sim.collective.as_mut() {
        decode_collective(&mut r, st, &b)?;
    }
    sim.hash = r.u64()?;
    r.expect_end()?;
    sim.config_error = None;
    Ok(sim)
}

fn decode_ev(r: &mut SnapReader, b: &Bounds) -> Result<Ev, SnapshotError> {
    let idx_below = |v: usize, bound: usize, what: &str| -> Result<usize, SnapshotError> {
        check(v < bound, what)?;
        Ok(v)
    };
    let tag = r.u8()?;
    Ok(match tag {
        0 => Ev::StartWorker {
            worker: idx_below(r.usize()?, b.machines, "event worker out of range")?,
        },
        1 => {
            let worker = idx_below(r.usize()?, b.machines, "event worker out of range")?;
            let ptag = r.u8()?;
            let block = idx_below(r.usize()?, b.blocks, "event block out of range")?;
            let phase = match ptag {
                0 => Phase::Fwd(block),
                1 => Phase::Bwd(block),
                _ => return Err(SnapshotError::Corrupt(format!("bad phase tag {ptag}"))),
            };
            Ev::Compute {
                worker,
                phase,
                inc: r.u32()?,
            }
        }
        2 => Ev::EgressReady {
            machine: idx_below(r.usize()?, b.machines, "event machine out of range")?,
            role: role_from(r.u8()?)?,
            dst: MachineId(idx_below(
                r.usize()?,
                b.machines,
                "event destination out of range",
            )?),
            inc: r.u32()?,
        },
        3 => Ev::AdmitKick {
            machine: idx_below(r.usize()?, b.machines, "event machine out of range")?,
            role: role_from(r.u8()?)?,
        },
        4 => Ev::ProcDone {
            server: idx_below(r.usize()?, b.machines, "event server out of range")?,
        },
        5 => Ev::NetWake,
        6 => Ev::StragglerStart {
            idx: idx_below(r.usize()?, b.stragglers, "straggler index out of range")?,
        },
        7 => Ev::StragglerEnd {
            idx: idx_below(r.usize()?, b.stragglers, "straggler index out of range")?,
        },
        8 => Ev::LinkDegradeStart {
            idx: idx_below(r.usize()?, b.degradations, "degradation index out of range")?,
        },
        9 => Ev::LinkDegradeEnd {
            idx: idx_below(r.usize()?, b.degradations, "degradation index out of range")?,
        },
        10 => Ev::Crash {
            idx: idx_below(r.usize()?, b.crashes, "crash index out of range")?,
        },
        11 => Ev::Rejoin {
            worker: idx_below(r.usize()?, b.machines, "event worker out of range")?,
        },
        12 => Ev::RetryTimer {
            msg_id: r.u64()?,
            attempt: r.u32()?,
        },
        13 => Ev::LivenessTimeout {
            worker: idx_below(r.usize()?, b.machines, "event worker out of range")?,
        },
        _ => return Err(SnapshotError::Corrupt(format!("bad event tag {tag}"))),
    })
}

fn decode_u64s(r: &mut SnapReader, expected: usize, what: &str) -> Result<Vec<u64>, SnapshotError> {
    let n = r.len()?;
    check(n == expected, what)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u64()?);
    }
    Ok(out)
}

fn decode_worker(
    r: &mut SnapReader,
    ws: &mut WorkerState,
    b: &Bounds,
) -> Result<(), SnapshotError> {
    ws.iter = r.u64()?;
    ws.completed = r.u64()?;
    ws.received_version = decode_u64s(r, b.num_keys, "worker version vector length")?;
    ws.notified_version = decode_u64s(r, b.num_keys, "worker version vector length")?;
    ws.waiting_block = r.opt_usize()?;
    if let Some(blk) = ws.waiting_block {
        check(blk < b.blocks, "waiting block out of range")?;
    }
    ws.stalled_since = r.opt_u64()?.map(SimTime::from_nanos);
    ws.stalled_total = SimDuration::from_nanos(r.u64()?);
    ws.started = r.bool()?;
    ws.measure_start = r.opt_u64()?.map(SimTime::from_nanos);
    ws.measure_end = r.opt_u64()?.map(SimTime::from_nanos);
    ws.jitter = r.f64()?;
    ws.slowdown = r.f64()?;
    ws.crashed = r.bool()?;
    ws.permanently_dead = r.bool()?;
    ws.incarnation = r.u32()?;
    ws.resume_iter = r.u64()?;
    ws.iter_started = SimTime::from_nanos(r.u64()?);
    let n = r.len()?;
    ws.measured_iters = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        ws.measured_iters.push(r.f64()?);
    }
    ws.egress = decode_egress(r, b)?;
    ws.rng = SplitMix64::new(r.u64()?);
    Ok(())
}

fn decode_server(
    r: &mut SnapReader,
    ss: &mut ServerState,
    b: &Bounds,
) -> Result<(), SnapshotError> {
    let n = r.len()?;
    let mut queue = PrioQueue::new();
    for _ in 0..n {
        let prio = r.u32()?;
        queue.push(prio, decode_proc_item(r, b)?);
    }
    ss.proc_queue = queue;
    ss.proc_busy = r.bool()?;
    let n = r.len()?;
    check(n == b.num_keys, "server mask vector length")?;
    ss.received = Vec::with_capacity(n);
    for _ in 0..n {
        ss.received.push(r.u128()?);
    }
    ss.version = decode_u64s(r, b.num_keys, "server version vector length")?;
    let n = r.len()?;
    check(n == b.num_keys, "pending-pull vector length")?;
    ss.pending_pulls = Vec::with_capacity(n);
    for _ in 0..n {
        let m = r.len()?;
        let mut pulls = Vec::with_capacity(m.min(1024));
        for _ in 0..m {
            let worker = r.usize()?;
            check(worker < b.machines, "pending puller out of range")?;
            pulls.push(worker);
        }
        ss.pending_pulls.push(pulls);
    }
    ss.current = if r.bool()? {
        Some(decode_proc_item(r, b)?)
    } else {
        None
    };
    ss.egress = decode_egress(r, b)?;
    Ok(())
}

fn decode_proc_item(r: &mut SnapReader, b: &Bounds) -> Result<ProcItem, SnapshotError> {
    let key = r.usize()?;
    let round = r.u64()?;
    let worker = r.usize()?;
    let members = r.u128()?;
    check(key < b.num_keys, "processing-item key out of range")?;
    check(worker < b.machines, "processing-item worker out of range")?;
    Ok(ProcItem {
        key,
        round,
        worker,
        members,
    })
}

fn decode_egress(r: &mut SnapReader, b: &Bounds) -> Result<EgressUnit, SnapshotError> {
    let tag = r.u8()?;
    match tag {
        0 => {
            let window = r.usize()?;
            check(window > 0, "zero egress window")?;
            let in_flight = r.usize()?;
            let n = r.len()?;
            let mut queue = PrioQueue::new();
            for _ in 0..n {
                let msg = decode_out_msg(r, b)?;
                queue.push(msg.priority.0, msg);
            }
            Ok(EgressUnit::Single {
                queue,
                in_flight,
                window,
            })
        }
        1 => {
            let n = r.len()?;
            check(n == b.machines, "per-destination lane count")?;
            let mut queues = Vec::with_capacity(n);
            for _ in 0..n {
                let m = r.len()?;
                let mut lane = VecDeque::new();
                for _ in 0..m {
                    lane.push_back(decode_out_msg(r, b)?);
                }
                queues.push(lane);
            }
            let n = r.len()?;
            check(n == b.machines, "per-destination busy count")?;
            let mut busy = Vec::with_capacity(n);
            for _ in 0..n {
                busy.push(r.bool()?);
            }
            Ok(EgressUnit::PerDest { queues, busy })
        }
        _ => Err(SnapshotError::Corrupt(format!("bad egress tag {tag}"))),
    }
}

fn decode_out_msg(r: &mut SnapReader, b: &Bounds) -> Result<OutMsg, SnapshotError> {
    let dst = r.usize()?;
    check(dst < b.machines, "egress destination out of range")?;
    Ok(OutMsg {
        dst: MachineId(dst),
        bytes: r.u64()?,
        priority: Priority(r.u32()?),
        msg_id: r.u64()?,
    })
}

fn decode_msg_ctx(r: &mut SnapReader, b: &Bounds) -> Result<MsgCtx, SnapshotError> {
    let kind = decode_msg_kind(r, b)?;
    let src = r.usize()?;
    let dst = r.usize()?;
    check(src < b.machines, "message source out of range")?;
    check(dst < b.machines, "message destination out of range")?;
    Ok(MsgCtx {
        kind,
        src,
        dst,
        bytes: r.u64()?,
        priority: Priority(r.u32()?),
        attempt: r.u32()?,
        in_flight: r.bool()?,
    })
}

fn decode_msg_kind(r: &mut SnapReader, b: &Bounds) -> Result<MsgKind, SnapshotError> {
    let tag = r.u8()?;
    let key = r.usize()?;
    check(key < b.num_keys, "message key out of range")?;
    let n = r.u64()?; // round or version, tag-dependent
    Ok(match tag {
        0 => MsgKind::Push { key, round: n },
        1 => MsgKind::Response { key, version: n },
        2 => MsgKind::Notify { key, version: n },
        3 => MsgKind::PullReq { key, round: n },
        4 => MsgKind::RackPush { key, round: n },
        5 => MsgKind::CombinedPush {
            key,
            round: n,
            members: r.u128()?,
        },
        6 => MsgKind::ReduceScatter {
            key,
            round: n,
            step: r.usize()?,
        },
        7 => MsgKind::AllGather {
            key,
            version: n,
            step: r.usize()?,
        },
        _ => {
            return Err(SnapshotError::Corrupt(format!(
                "bad message-kind tag {tag}"
            )))
        }
    })
}

fn decode_f64s(
    r: &mut SnapReader,
    expected: Option<usize>,
    what: &str,
) -> Result<Vec<f64>, SnapshotError> {
    let n = r.len()?;
    if let Some(e) = expected {
        check(n == e, what)?;
    }
    let mut out = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        out.push(r.f64()?);
    }
    Ok(out)
}

fn decode_net(
    r: &mut SnapReader,
    b: &Bounds,
    nlinks: usize,
    traced_ports: usize,
) -> Result<NetworkSnapshot, SnapshotError> {
    let n = r.len()?;
    let mut flows = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let id = r.u64()?;
        let src = r.usize()?;
        let dst = r.usize()?;
        check(src < b.machines, "flow source out of range")?;
        check(dst < b.machines, "flow destination out of range")?;
        let priority = r.u32()?;
        let tag = r.u64()?;
        let bytes = r.u64()?;
        let remaining = r.f64()?;
        let rate = r.f64()?;
        let bottleneck = r.opt_usize()?;
        if let Some(l) = bottleneck {
            check(l < nlinks, "flow bottleneck link out of range")?;
        }
        flows.push(FlowSnapshot {
            id,
            src,
            dst,
            priority,
            tag,
            bytes,
            remaining,
            rate,
            bottleneck,
        });
    }
    let n = r.len()?;
    let mut delivering = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let at = SimTime::from_nanos(r.u64()?);
        let id = FlowId(r.u64()?);
        let src = r.usize()?;
        let dst = r.usize()?;
        check(src < b.machines, "delivering source out of range")?;
        check(dst < b.machines, "delivering destination out of range")?;
        let tag = r.u64()?;
        let bytes = r.u64()?;
        let bottleneck = r.opt_usize()?;
        delivering.push(DeliveringSnapshot {
            at,
            flow: CompletedFlow {
                id,
                src: MachineId(src),
                dst: MachineId(dst),
                tag,
                bytes,
                bottleneck,
            },
        });
    }
    let last_update = SimTime::from_nanos(r.u64()?);
    let next_flow_id = r.u64()?;
    let tx_scale = decode_f64s(r, Some(b.machines), "port scale vector length")?;
    let rx_scale = decode_f64s(r, Some(b.machines), "port scale vector length")?;
    let link_busy = decode_f64s(r, Some(nlinks), "link accounting vector length")?;
    let link_bytes = decode_f64s(r, Some(nlinks), "link accounting vector length")?;
    let n = r.len()?;
    check(n == traced_ports, "trace bin vector count")?;
    let mut tx_bins = Vec::with_capacity(n);
    for _ in 0..n {
        tx_bins.push(decode_f64s(r, None, "trace bins")?);
    }
    let n = r.len()?;
    check(n == traced_ports, "trace bin vector count")?;
    let mut rx_bins = Vec::with_capacity(n);
    for _ in 0..n {
        rx_bins.push(decode_f64s(r, None, "trace bins")?);
    }
    let stats = NetStats {
        reallocations: r.u64()?,
        flows_touched: r.u64()?,
        waterfill_rounds: r.u64()?,
        ports_touched: r.u64()?,
        peak_in_flight: r.u64()?,
    };
    Ok(NetworkSnapshot {
        flows,
        delivering,
        last_update,
        next_flow_id,
        tx_scale,
        rx_scale,
        link_busy,
        link_bytes,
        tx_bins,
        rx_bins,
        stats,
    })
}

fn decode_collective(
    r: &mut SnapReader,
    st: &mut CollectiveState,
    b: &Bounds,
) -> Result<(), SnapshotError> {
    let n = r.len()?;
    check(n == b.blocks, "block-barrier vector length")?;
    st.block_ready = Vec::with_capacity(n);
    for _ in 0..n {
        st.block_ready.push(r.u128()?);
    }
    st.block_round = decode_u64s(r, b.blocks, "block-round vector length")?;
    let n = r.len()?;
    let mut pending = PrioQueue::new();
    for _ in 0..n {
        let prio = r.u32()?;
        let key = r.usize()?;
        let round = r.u64()?;
        let members = r.u128()?;
        check(key < b.num_keys, "pending collective key out of range")?;
        pending.push(prio, (key, round, members));
    }
    st.pending = pending;
    st.active = if r.bool()? {
        let key = r.usize()?;
        let round = r.u64()?;
        let step = r.usize()?;
        let outstanding = r.usize()?;
        let members = r.u128()?;
        check(key < b.num_keys, "active collective key out of range")?;
        check(step < 2 * b.machines.max(2), "collective step out of range")?;
        Some(ActiveCollective {
            key,
            round,
            step,
            outstanding,
            members,
        })
    } else {
        None
    };
    st.completed_version = decode_u64s(r, b.num_keys, "collective version vector length")?;
    Ok(())
}
