//! Snapshot serialization: walks a live [`ClusterSim`] and writes every
//! piece of dynamic state through the [`crate::snap`] codec. Field order
//! here is the format — [`super::decode`] mirrors it exactly, and any
//! reordering is a (version-bumped) format change.

use super::super::collective::CollectiveState;
use super::super::types::{Ev, MsgCtx, MsgKind, Phase, ProcItem, ServerState, WorkerState};
use super::super::ClusterSim;
use super::{config_fingerprint, role_tag};
use crate::egress::{EgressUnit, OutMsg};
use crate::snap::SnapWriter;
use p3_net::NetworkSnapshot;

/// Serializes the complete dynamic state of a simulation.
pub(in crate::engine) fn snapshot(sim: &ClusterSim) -> Vec<u8> {
    let mut w = SnapWriter::new(config_fingerprint(&sim.cfg));
    let now = sim.queue.now();
    w.u64(now.as_nanos());

    let pending = sim.queue.pending_sorted();
    w.usize(pending.len());
    for (t, ev) in &pending {
        w.u64(t.as_nanos());
        encode_ev(&mut w, *ev);
    }

    for ws in &sim.workers {
        encode_worker(&mut w, ws);
    }
    for ss in &sim.servers {
        encode_server(&mut w, ss);
    }
    encode_net(&mut w, &sim.net.snapshot());

    w.usize(sim.msgs.len());
    for (&id, ctx) in &sim.msgs {
        w.u64(id);
        encode_msg_ctx(&mut w, ctx);
    }
    w.usize(sim.flows.len());
    for (&flow, &mid) in &sim.flows {
        w.u64(flow.0);
        w.u64(mid);
    }
    w.u64(sim.next_msg_id);
    w.opt_u64(sim.next_wake.map(|t| t.as_nanos()));
    for gate in &sim.admit_gate {
        w.u64(gate[0].as_nanos());
        w.u64(gate[1].as_nanos());
    }
    for kick in &sim.admit_kick_at {
        w.opt_u64(kick[0].map(|t| t.as_nanos()));
        w.opt_u64(kick[1].map(|t| t.as_nanos()));
    }
    w.u64(sim.events);

    w.u64(sim.stats.pushes);
    w.u64(sim.stats.responses);
    w.u64(sim.stats.notifies);
    w.u64(sim.stats.pull_requests);
    w.u64(sim.stats.rack_pushes);
    w.u64(sim.stats.combined_pushes);
    w.u64(sim.stats.collective_chunks);

    w.u64(sim.loss_rng.state());
    for &dead in &sim.dead_members {
        w.bool(dead);
    }
    w.u32(sim.expected_pushes);

    w.u64(sim.faults.messages_lost);
    w.u64(sim.faults.retransmits);
    w.u64(sim.faults.gave_up);
    w.u64(sim.faults.stale_pushes_dropped);
    w.u64(sim.faults.duplicate_pushes_dropped);
    w.u64(sim.faults.degraded_rounds);
    w.u64(sim.faults.flows_cancelled);
    w.u64(sim.faults.collectives_aborted);

    w.usize(sim.rack_agg.len());
    for (&(machine, key, round), &mask) in &sim.rack_agg {
        w.usize(machine);
        w.usize(key);
        w.u64(round);
        w.u128(mask);
    }

    match &sim.collective {
        None => w.bool(false),
        Some(st) => {
            w.bool(true);
            encode_collective(&mut w, st);
        }
    }
    w.u64(sim.hash);
    w.finish()
}

fn encode_ev(w: &mut SnapWriter, ev: Ev) {
    match ev {
        Ev::StartWorker { worker } => {
            w.u8(0);
            w.usize(worker);
        }
        Ev::Compute { worker, phase, inc } => {
            w.u8(1);
            w.usize(worker);
            match phase {
                Phase::Fwd(b) => {
                    w.u8(0);
                    w.usize(b);
                }
                Phase::Bwd(b) => {
                    w.u8(1);
                    w.usize(b);
                }
            }
            w.u32(inc);
        }
        Ev::EgressReady {
            machine,
            role,
            dst,
            inc,
        } => {
            w.u8(2);
            w.usize(machine);
            w.u8(role_tag(role));
            w.usize(dst.0);
            w.u32(inc);
        }
        Ev::AdmitKick { machine, role } => {
            w.u8(3);
            w.usize(machine);
            w.u8(role_tag(role));
        }
        Ev::ProcDone { server } => {
            w.u8(4);
            w.usize(server);
        }
        Ev::NetWake => w.u8(5),
        Ev::StragglerStart { idx } => {
            w.u8(6);
            w.usize(idx);
        }
        Ev::StragglerEnd { idx } => {
            w.u8(7);
            w.usize(idx);
        }
        Ev::LinkDegradeStart { idx } => {
            w.u8(8);
            w.usize(idx);
        }
        Ev::LinkDegradeEnd { idx } => {
            w.u8(9);
            w.usize(idx);
        }
        Ev::Crash { idx } => {
            w.u8(10);
            w.usize(idx);
        }
        Ev::Rejoin { worker } => {
            w.u8(11);
            w.usize(worker);
        }
        Ev::RetryTimer { msg_id, attempt } => {
            w.u8(12);
            w.u64(msg_id);
            w.u32(attempt);
        }
        Ev::LivenessTimeout { worker } => {
            w.u8(13);
            w.usize(worker);
        }
    }
}

fn encode_worker(w: &mut SnapWriter, ws: &WorkerState) {
    w.u64(ws.iter);
    w.u64(ws.completed);
    w.usize(ws.received_version.len());
    for &v in &ws.received_version {
        w.u64(v);
    }
    w.usize(ws.notified_version.len());
    for &v in &ws.notified_version {
        w.u64(v);
    }
    w.opt_usize(ws.waiting_block);
    w.opt_u64(ws.stalled_since.map(|t| t.as_nanos()));
    w.u64(ws.stalled_total.as_nanos());
    w.bool(ws.started);
    w.opt_u64(ws.measure_start.map(|t| t.as_nanos()));
    w.opt_u64(ws.measure_end.map(|t| t.as_nanos()));
    w.f64(ws.jitter);
    w.f64(ws.slowdown);
    w.bool(ws.crashed);
    w.bool(ws.permanently_dead);
    w.u32(ws.incarnation);
    w.u64(ws.resume_iter);
    w.u64(ws.iter_started.as_nanos());
    w.usize(ws.measured_iters.len());
    for &secs in &ws.measured_iters {
        w.f64(secs);
    }
    encode_egress(w, &ws.egress);
    w.u64(ws.rng.state());
}

fn encode_server(w: &mut SnapWriter, ss: &ServerState) {
    let items = ss.proc_queue.snapshot_sorted();
    w.usize(items.len());
    for (prio, item) in &items {
        w.u32(*prio);
        encode_proc_item(w, item);
    }
    w.bool(ss.proc_busy);
    w.usize(ss.received.len());
    for &mask in &ss.received {
        w.u128(mask);
    }
    w.usize(ss.version.len());
    for &v in &ss.version {
        w.u64(v);
    }
    w.usize(ss.pending_pulls.len());
    for pulls in &ss.pending_pulls {
        w.usize(pulls.len());
        for &worker in pulls {
            w.usize(worker);
        }
    }
    match &ss.current {
        None => w.bool(false),
        Some(item) => {
            w.bool(true);
            encode_proc_item(w, item);
        }
    }
    encode_egress(w, &ss.egress);
}

fn encode_proc_item(w: &mut SnapWriter, item: &ProcItem) {
    w.usize(item.key);
    w.u64(item.round);
    w.usize(item.worker);
    w.u128(item.members);
}

fn encode_egress(w: &mut SnapWriter, egress: &EgressUnit) {
    match egress {
        EgressUnit::Single {
            queue,
            in_flight,
            window,
        } => {
            w.u8(0);
            w.usize(*window);
            w.usize(*in_flight);
            let msgs = queue.snapshot_sorted();
            w.usize(msgs.len());
            for (_, msg) in &msgs {
                encode_out_msg(w, msg);
            }
        }
        EgressUnit::PerDest { queues, busy } => {
            w.u8(1);
            w.usize(queues.len());
            for lane in queues {
                w.usize(lane.len());
                for msg in lane {
                    encode_out_msg(w, msg);
                }
            }
            w.usize(busy.len());
            for &b in busy {
                w.bool(b);
            }
        }
    }
}

fn encode_out_msg(w: &mut SnapWriter, msg: &OutMsg) {
    w.usize(msg.dst.0);
    w.u64(msg.bytes);
    w.u32(msg.priority.0);
    w.u64(msg.msg_id);
}

fn encode_msg_ctx(w: &mut SnapWriter, ctx: &MsgCtx) {
    encode_msg_kind(w, ctx.kind);
    w.usize(ctx.src);
    w.usize(ctx.dst);
    w.u64(ctx.bytes);
    w.u32(ctx.priority.0);
    w.u32(ctx.attempt);
    w.bool(ctx.in_flight);
}

fn encode_msg_kind(w: &mut SnapWriter, kind: MsgKind) {
    match kind {
        MsgKind::Push { key, round } => {
            w.u8(0);
            w.usize(key);
            w.u64(round);
        }
        MsgKind::Response { key, version } => {
            w.u8(1);
            w.usize(key);
            w.u64(version);
        }
        MsgKind::Notify { key, version } => {
            w.u8(2);
            w.usize(key);
            w.u64(version);
        }
        MsgKind::PullReq { key, round } => {
            w.u8(3);
            w.usize(key);
            w.u64(round);
        }
        MsgKind::RackPush { key, round } => {
            w.u8(4);
            w.usize(key);
            w.u64(round);
        }
        MsgKind::CombinedPush {
            key,
            round,
            members,
        } => {
            w.u8(5);
            w.usize(key);
            w.u64(round);
            w.u128(members);
        }
        MsgKind::ReduceScatter { key, round, step } => {
            w.u8(6);
            w.usize(key);
            w.u64(round);
            w.usize(step);
        }
        MsgKind::AllGather { key, version, step } => {
            w.u8(7);
            w.usize(key);
            w.u64(version);
            w.usize(step);
        }
    }
}

fn encode_net(w: &mut SnapWriter, snap: &NetworkSnapshot) {
    w.usize(snap.flows.len());
    for f in &snap.flows {
        w.u64(f.id);
        w.usize(f.src);
        w.usize(f.dst);
        w.u32(f.priority);
        w.u64(f.tag);
        w.u64(f.bytes);
        w.f64(f.remaining);
        w.f64(f.rate);
        w.opt_usize(f.bottleneck);
    }
    w.usize(snap.delivering.len());
    for d in &snap.delivering {
        w.u64(d.at.as_nanos());
        w.u64(d.flow.id.0);
        w.usize(d.flow.src.0);
        w.usize(d.flow.dst.0);
        w.u64(d.flow.tag);
        w.u64(d.flow.bytes);
        w.opt_usize(d.flow.bottleneck);
    }
    w.u64(snap.last_update.as_nanos());
    w.u64(snap.next_flow_id);
    encode_f64s(w, &snap.tx_scale);
    encode_f64s(w, &snap.rx_scale);
    encode_f64s(w, &snap.link_busy);
    encode_f64s(w, &snap.link_bytes);
    w.usize(snap.tx_bins.len());
    for bins in &snap.tx_bins {
        encode_f64s(w, bins);
    }
    w.usize(snap.rx_bins.len());
    for bins in &snap.rx_bins {
        encode_f64s(w, bins);
    }
    w.u64(snap.stats.reallocations);
    w.u64(snap.stats.flows_touched);
    w.u64(snap.stats.waterfill_rounds);
    w.u64(snap.stats.ports_touched);
    w.u64(snap.stats.peak_in_flight);
}

fn encode_f64s(w: &mut SnapWriter, values: &[f64]) {
    w.usize(values.len());
    for &v in values {
        w.f64(v);
    }
}

fn encode_collective(w: &mut SnapWriter, st: &CollectiveState) {
    w.usize(st.block_ready.len());
    for &mask in &st.block_ready {
        w.u128(mask);
    }
    w.usize(st.block_round.len());
    for &r in &st.block_round {
        w.u64(r);
    }
    let pending = st.pending.snapshot_sorted();
    w.usize(pending.len());
    for (prio, (key, round, members)) in &pending {
        w.u32(*prio);
        w.usize(*key);
        w.u64(*round);
        w.u128(*members);
    }
    match &st.active {
        None => w.bool(false),
        Some(a) => {
            w.bool(true);
            w.usize(a.key);
            w.u64(a.round);
            w.usize(a.step);
            w.usize(a.outstanding);
            w.u128(a.members);
        }
    }
    w.usize(st.completed_version.len());
    for &v in &st.completed_version {
        w.u64(v);
    }
}
