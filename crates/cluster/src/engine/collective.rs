//! Collective communication backend: `p3-allreduce`'s ring and
//! halving–doubling schedules re-hosted on the cluster engine, so
//! allreduce runs get the fluid network, topology contention, fault
//! injection, tracing, and the audit for free.
//!
//! Semantics (mirroring `p3_allreduce::run_allreduce`'s analytic model,
//! which remains the closed-form reference):
//!
//! - A slice's collective launches once **every live** worker has finished
//!   the backward pass of the slice's block (an allreduce is inherently a
//!   barrier per tensor). The participant set is frozen into a membership
//!   mask when the barrier fires.
//! - Ready slices wait in a priority queue; **one collective is in flight
//!   at a time** (Horovod-style coordinator serialization), so priority
//!   decides who goes next — P3's scheduling generalized to collectives.
//! - Each schedule step's chunks travel through the worker endpoints'
//!   single-lane egress and the fluid network like any other message:
//!   they pay `msg_overhead` at admission, contend for links, can be lost
//!   and retransmitted, and appear in the trace as `ReduceScatter` /
//!   `AllGather` chunks.
//! - When the last allgather chunk lands, every live worker's
//!   `received_version` for the slice advances and stalled forward passes
//!   are rechecked — the same contract the PS backend satisfies with its
//!   `Response` broadcast.
//!
//! Stragglers and degraded links work unchanged. Message loss works, but
//! a chunk that exhausts its retry budget (`GiveUp`) wedges the collective
//! and surfaces as a structured `Deadlock` — configure a generous retry
//! budget with loss.
//!
//! **Crash tolerance (degraded-group reform).** A worker crash mid-run no
//! longer wedges the schedule: the in-flight collective (if the crashed
//! rank participates) is aborted — its queued chunks are purged, its
//! in-network chunks cancelled, and a `CollectiveAbort` fault recorded —
//! and the slice is requeued to relaunch from step 0 over the surviving
//! group. Barriers and queued launches drop the dead rank's bit from
//! their membership masks, a halving–doubling group whose survivor count
//! is not a power of two falls back to the ring schedule for that launch,
//! and a rejoining worker syncs to the completed versions and joins
//! future barriers only (its in-progress round was already aggregated
//! degraded without it).

use super::backend::CommBackend;
use super::types::{MsgCtx, MsgKind, Role};
use super::ClusterSim;
use crate::egress::OutMsg;
use p3_allreduce::{CollectiveSchedule, ScheduleKind};
use p3_core::PrioQueue;
use p3_net::{FlowId, MachineId, Priority};
use p3_pserver::HEADER_BYTES;
use p3_trace::{FaultKind, MsgClass, TraceEvent};

/// The one collective currently occupying the network.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ActiveCollective {
    pub(crate) key: usize,
    pub(crate) round: u64,
    pub(crate) step: usize,
    /// Chunks of the current step not yet delivered.
    pub(crate) outstanding: usize,
    /// Participating workers, frozen at launch (one bit per machine).
    pub(crate) members: u128,
}

/// All collective-backend state, hung off the sim as
/// `Option<CollectiveState>` (`None` under the PS backend, so PS runs
/// carry no dead weight). The backend's hooks temporarily take the state
/// out of the sim while they run — it and the rest of the sim are mutated
/// side by side, and its absence doubles as the "is a collective already
/// being handled?" re-entrancy guard.
#[derive(Debug)]
pub(crate) struct CollectiveState {
    /// Requested algorithm (a launch may fall back to ring when the
    /// surviving group size does not satisfy it).
    pub(crate) kind: ScheduleKind,
    /// Per-block mask of workers whose backward pass for that block has
    /// finished in round `block_round[block]`.
    pub(crate) block_ready: Vec<u128>,
    /// The round each block's readiness mask belongs to. A replayed
    /// backward from an older round (a rejoined worker redoing work that
    /// was already aggregated degraded) is discarded; a newer round
    /// supersedes the mask.
    pub(crate) block_round: Vec<u64>,
    /// Slices whose gradients are ready cluster-wide, keyed by network
    /// priority: the next collective to launch is the most urgent one.
    /// Each entry carries the membership mask frozen when its barrier
    /// fired (crashes strip bits from queued entries too).
    pub(crate) pending: PrioQueue<(usize, u64, u128)>,
    pub(crate) active: Option<ActiveCollective>,
    /// Per-key highest version completed by a collective; a rejoining
    /// worker syncs its `received_version` to this.
    pub(crate) completed_version: Vec<u64>,
}

impl CollectiveState {
    pub(crate) fn new(schedule: CollectiveSchedule, blocks: usize, num_keys: usize) -> Self {
        CollectiveState {
            kind: schedule.kind(),
            block_ready: vec![0; blocks],
            block_round: vec![0; blocks],
            pending: PrioQueue::new(),
            active: None,
            completed_version: vec![0; num_keys],
        }
    }
}

/// The schedule actually used for a launch over `count` survivors:
/// halving–doubling needs a power of two, so a degraded group that lost
/// it falls back to the (any-size) ring.
pub(crate) fn effective_kind(kind: ScheduleKind, count: usize) -> ScheduleKind {
    if kind == ScheduleKind::HalvingDoubling && !count.is_power_of_two() {
        ScheduleKind::Ring
    } else {
        kind
    }
}

/// The machines participating in `members`, ascending — the dense rank →
/// machine map for a (possibly degraded) launch.
fn group_machines(members: u128) -> Vec<usize> {
    (0..u128::BITS as usize)
        .filter(|&m| members & (1u128 << m) != 0)
        .collect()
}

/// Ring / halving–doubling allreduce hosted on the engine. Which schedule
/// runs is decided by the [`CollectiveSchedule`] built from
/// [`BackendKind`](crate::BackendKind) at construction.
pub(crate) struct CollectiveBackend;

impl CommBackend for CollectiveBackend {
    fn grads_ready(sim: &mut ClusterSim, worker: usize, block: usize, round: u64) {
        let Some(mut st) = sim.collective.take() else {
            unreachable!("collective backend without collective state")
        };
        let keys = &sim.keys_of_block[block];
        for &k in keys {
            sim.trace(TraceEvent::GradReady {
                worker,
                key: k,
                round,
                priority: sim.prio[k],
            });
        }
        if round < st.block_round[block] {
            // A rejoined worker replaying a round that was already
            // aggregated degraded without it; nothing to contribute.
            sim.collective = Some(st);
            return;
        }
        if round > st.block_round[block] {
            // First worker to reach a new round supersedes the mask (any
            // leftover bits belong to contributions already consumed).
            st.block_round[block] = round;
            st.block_ready[block] = 0;
        }
        st.block_ready[block] |= 1u128 << worker;
        Self::check_barrier(sim, &mut st, block);
        sim.collective = Some(st);
    }

    fn delivered(sim: &mut ClusterSim, ctx: MsgCtx) {
        let Some(mut st) = sim.collective.take() else {
            unreachable!("collective backend without collective state")
        };
        Self::on_chunk_delivered(sim, &mut st, ctx);
        sim.collective = Some(st);
    }

    fn iteration_started(_sim: &mut ClusterSim, _worker: usize) {
        // Nothing to do: parameters arrive via allgather completion, never
        // by pulling.
    }

    fn worker_crashed(sim: &mut ClusterSim, worker: usize) {
        let Some(mut st) = sim.collective.take() else {
            unreachable!("collective backend without collective state")
        };
        Self::on_member_lost(sim, &mut st, worker);
        sim.collective = Some(st);
    }

    fn worker_rejoined(sim: &mut ClusterSim, worker: usize) {
        let Some(mut st) = sim.collective.take() else {
            unreachable!("collective backend without collective state")
        };
        // Re-sync: the restarted process adopts the collectively-agreed
        // parameters (every completed version), then participates in
        // future barriers only — its in-progress round was aggregated
        // degraded without it.
        for (k, &v) in st.completed_version.iter().enumerate() {
            let rv = &mut sim.workers[worker].received_version[k];
            if v > *rv {
                *rv = v;
            }
        }
        // A fully-crashed group may have parked pending launches; now that
        // a rank is back the queue can drain again.
        if st.active.is_none() {
            Self::start_next(sim, &mut st);
        }
        sim.collective = Some(st);
    }
}

impl CollectiveBackend {
    /// Mask of workers currently able to participate in a barrier.
    fn live_mask(sim: &ClusterSim) -> u128 {
        sim.workers
            .iter()
            .enumerate()
            .filter(|(_, w)| !w.crashed)
            .fold(0u128, |m, (i, _)| m | (1u128 << i))
    }

    /// Fires `block`'s barrier if every live worker has contributed,
    /// freezing the live set as the launch membership.
    fn check_barrier(sim: &mut ClusterSim, st: &mut CollectiveState, block: usize) {
        let live = Self::live_mask(sim);
        if live == 0 || st.block_ready[block] & live != live {
            return;
        }
        st.block_ready[block] = 0;
        let round = st.block_round[block];
        for &k in &sim.keys_of_block[block] {
            st.pending.push(sim.prio[k], (k, round, live));
        }
        if st.active.is_none() {
            Self::start_next(sim, st);
        }
    }

    fn on_chunk_delivered(sim: &mut ClusterSim, st: &mut CollectiveState, ctx: MsgCtx) {
        let chunk_step = match ctx.kind {
            MsgKind::ReduceScatter { step, .. } | MsgKind::AllGather { step, .. } => step,
            other => unreachable!("{other:?} delivered under a collective backend"),
        };
        sim.stats.collective_chunks += 1;
        let Some(mut a) = st.active else {
            unreachable!("chunk delivered with no active collective")
        };
        assert_eq!(
            chunk_step, a.step,
            "chunk from step {chunk_step} delivered while step {} is active",
            a.step
        );
        a.outstanding -= 1;
        if a.outstanding > 0 {
            st.active = Some(a);
            return;
        }
        a.step += 1;
        // (The degenerate single-member collective arrives here with
        // `step == 1 > steps() == 0` and completes immediately.)
        let schedule = Self::group_schedule(st.kind, a.members);
        if a.step < schedule.steps() {
            a.outstanding = Self::launch_step(sim, st, &a, a.step);
            st.active = Some(a);
            return;
        }
        st.active = None;
        Self::complete(sim, st, a.key, a.round);
    }

    /// The transfer schedule for a launch over `members`.
    fn group_schedule(kind: ScheduleKind, members: u128) -> CollectiveSchedule {
        let count = members.count_ones() as usize;
        match CollectiveSchedule::new(effective_kind(kind, count), count) {
            Ok(s) => s,
            Err(why) => unreachable!("schedule over {count} survivors rejected: {why}"),
        }
    }

    /// Launches the most urgent pending collective, if any. Entries whose
    /// membership crashed away entirely complete immediately (their
    /// gradients died with the processes; the version still advances so
    /// rejoining workers do not wedge on it).
    fn start_next(sim: &mut ClusterSim, st: &mut CollectiveState) {
        debug_assert!(st.active.is_none(), "collective already in flight");
        while let Some((key, round, members)) = st.pending.pop() {
            if members == 0 {
                Self::complete(sim, st, key, round);
                if st.active.is_some() {
                    // `complete` chained into `start_next` and launched.
                    return;
                }
                continue;
            }
            let schedule = Self::group_schedule(st.kind, members);
            let a = ActiveCollective {
                key,
                round,
                step: 0,
                outstanding: 0,
                members,
            };
            let outstanding = if schedule.steps() == 0 {
                Self::launch_degenerate(sim, &a)
            } else {
                Self::launch_step(sim, st, &a, 0)
            };
            st.active = Some(ActiveCollective { outstanding, ..a });
            return;
        }
    }

    /// Single-member group: an allreduce with yourself moves no gradients,
    /// but one loopback allgather chunk still flows so the trace and the
    /// delivery path stay uniform with real groups.
    fn launch_degenerate(sim: &mut ClusterSim, a: &ActiveCollective) -> usize {
        let machine = group_machines(a.members)[0];
        let version = a.round + 1;
        let bytes = HEADER_BYTES as u64;
        let priority = Priority(sim.prio[a.key]);
        let msg_id = sim.register_msg(
            MsgKind::AllGather {
                key: a.key,
                version,
                step: 0,
            },
            machine,
            machine,
            bytes,
            priority,
        );
        let msg = OutMsg {
            dst: MachineId(machine),
            bytes,
            priority,
            msg_id,
        };
        sim.enqueue_traced(
            machine,
            Role::Worker,
            msg,
            MsgClass::AllGather,
            a.key,
            version,
        );
        sim.kick_egress(machine, Role::Worker);
        1
    }

    /// Enqueues every chunk of one schedule step on its sender's egress
    /// and returns the number of chunks in flight. Each schedule transfer
    /// is split into `collective_channels` concurrent flows (NCCL-style
    /// channels) so one peer-to-peer stream is not pinned to the
    /// single-flow goodput ceiling (`ClusterConfig::flow_cap`). Schedule
    /// ranks are mapped onto the (possibly degraded) member machines in
    /// ascending order.
    fn launch_step(
        sim: &mut ClusterSim,
        st: &CollectiveState,
        a: &ActiveCollective,
        step: usize,
    ) -> usize {
        let schedule = Self::group_schedule(st.kind, a.members);
        let machines = group_machines(a.members);
        let key = a.key;
        let round = a.round;
        let payload = 4 * sim.plan.slice(p3_pserver::Key(key as u64)).params;
        let transfers = schedule.transfers(step, payload);
        let allgather = schedule.is_allgather(step);
        let priority = Priority(sim.prio[key]);
        let channels = sim.cfg.collective_channels as u64;
        let mut chunks = 0;
        for t in &transfers {
            let (src, dst) = (machines[t.src], machines[t.dst]);
            let (kind, class, tag) = if allgather {
                let version = round + 1;
                (
                    MsgKind::AllGather { key, version, step },
                    MsgClass::AllGather,
                    version,
                )
            } else {
                (
                    MsgKind::ReduceScatter { key, round, step },
                    MsgClass::ReduceScatter,
                    round,
                )
            };
            // Near-even split; the last channel takes the remainder.
            let per = t.bytes / channels;
            for c in 0..channels {
                let slab = if c == channels - 1 {
                    t.bytes - per * (channels - 1)
                } else {
                    per
                };
                let bytes = slab + HEADER_BYTES as u64;
                let msg_id = sim.register_msg(kind, src, dst, bytes, priority);
                let msg = OutMsg {
                    dst: MachineId(dst),
                    bytes,
                    priority,
                    msg_id,
                };
                sim.enqueue_traced(src, Role::Worker, msg, class, key, tag);
                chunks += 1;
            }
        }
        for t in &transfers {
            sim.kick_egress(machines[t.src], Role::Worker);
        }
        chunks
    }

    /// The last allgather chunk landed: every live worker now holds the
    /// aggregated parameters for this slice — the collective equivalent of
    /// the PS backend's response broadcast.
    fn complete(sim: &mut ClusterSim, st: &mut CollectiveState, key: usize, round: u64) {
        let version = round + 1;
        if version > st.completed_version[key] {
            st.completed_version[key] = version;
        }
        for w in 0..sim.cfg.machines {
            if sim.workers[w].crashed {
                continue;
            }
            let rv = &mut sim.workers[w].received_version[key];
            if version > *rv {
                *rv = version;
            }
        }
        for w in 0..sim.cfg.machines {
            if !sim.workers[w].crashed {
                sim.recheck_waiting(w);
            }
        }
        Self::start_next(sim, st);
    }

    /// A participant crashed: reform the collective machinery around the
    /// survivors. The active collective (if the dead rank is in it) is
    /// aborted — queued chunks purged, in-network chunks cancelled — and
    /// requeued to restart from step 0 over the surviving group; barrier
    /// masks and queued launches lose the dead rank's bit; newly
    /// satisfiable barriers fire.
    fn on_member_lost(sim: &mut ClusterSim, st: &mut CollectiveState, worker: usize) {
        let bit = 1u128 << worker;

        if let Some(a) = st.active {
            if a.members & bit != 0 {
                Self::abort_active(sim, st, worker);
            }
        }

        // Strip the dead rank from queued launches and barrier masks.
        let stripped: Vec<(u32, (usize, u64, u128))> = st
            .pending
            .snapshot_sorted()
            .into_iter()
            .map(|(p, (k, r, m))| (p, (k, r, m & !bit)))
            .collect();
        st.pending = stripped.into_iter().collect();
        for mask in &mut st.block_ready {
            *mask &= !bit;
        }

        // The group shrank: barriers that were waiting only on the dead
        // rank are now satisfied.
        for block in 0..st.block_ready.len() {
            if st.block_ready[block] != 0 {
                Self::check_barrier(sim, st, block);
            }
        }
        if st.active.is_none() {
            Self::start_next(sim, st);
        }
    }

    /// Tears down the in-flight collective: every queued chunk is purged
    /// from its sender's egress, every in-network chunk flow is cancelled
    /// (freeing its sender's consumer slot), all chunk contexts are
    /// dropped so armed retry timers lapse, and the slice is requeued over
    /// the surviving members.
    fn abort_active(sim: &mut ClusterSim, st: &mut CollectiveState, crashed: usize) {
        let Some(a) = st.active.take() else {
            unreachable!("abort without an active collective")
        };
        let now = sim.queue.now();
        let bit = 1u128 << crashed;

        let is_chunk = |kind: MsgKind| {
            matches!(
                kind,
                MsgKind::ReduceScatter { .. } | MsgKind::AllGather { .. }
            )
        };

        // Purge chunks still queued on live senders' egress units. (The
        // crashed worker's egress was already replaced wholesale by the
        // membership layer.)
        let queued: Vec<u64> = sim
            .msgs
            .iter()
            .filter(|(_, ctx)| is_chunk(ctx.kind) && !ctx.in_flight)
            .filter(|(id, _)| !sim.flows.values().any(|mid| mid == *id))
            .map(|(&id, _)| id)
            .collect();
        for id in &queued {
            for w in sim.workers.iter_mut() {
                w.egress.retain(|m| m.msg_id != *id);
            }
            sim.msgs.remove(id);
        }

        // Cancel chunks already in the network and free their senders'
        // consumer slots.
        let doomed: Vec<(FlowId, u64)> = sim
            .flows
            .iter()
            .filter(|(_, mid)| sim.msgs.get(mid).is_some_and(|c| is_chunk(c.kind)))
            .map(|(&f, &mid)| (f, mid))
            .collect();
        for (flow, mid) in doomed {
            let cancelled = sim.net.cancel_flow(now, flow);
            debug_assert!(cancelled, "registered flow unknown to the network");
            sim.flows.remove(&flow);
            sim.faults.flows_cancelled += 1;
            let Some(ctx) = sim.msgs.remove(&mid) else {
                unreachable!("cancelled flow without a message context")
            };
            sim.trace_fault(FaultKind::FlowCancelled, ctx.src, Some(mid));
            if ctx.src != crashed {
                sim.workers[ctx.src].egress.complete(MachineId(ctx.dst));
            }
        }

        sim.faults.collectives_aborted += 1;
        sim.trace_fault(FaultKind::CollectiveAbort, crashed, None);
        sim.schedule_net_wake();

        // Requeue over the survivors; `on_member_lost` relaunches once the
        // masks are consistent.
        st.pending
            .push(sim.prio[a.key], (a.key, a.round, a.members & !bit));
    }
}
