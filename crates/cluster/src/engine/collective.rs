//! Collective communication backend: `p3-allreduce`'s ring and
//! halving–doubling schedules re-hosted on the cluster engine, so
//! allreduce runs get the fluid network, topology contention, fault
//! injection, tracing, and the audit for free.
//!
//! Semantics (mirroring `p3_allreduce::run_allreduce`'s analytic model,
//! which remains the closed-form reference):
//!
//! - A slice's collective launches once **every** worker has finished the
//!   backward pass of the slice's block (an allreduce is inherently a
//!   barrier per tensor).
//! - Ready slices wait in a priority queue; **one collective is in flight
//!   at a time** (Horovod-style coordinator serialization), so priority
//!   decides who goes next — P3's scheduling generalized to collectives.
//! - Each schedule step's chunks travel through the worker endpoints'
//!   single-lane egress and the fluid network like any other message:
//!   they pay `msg_overhead` at admission, contend for links, can be lost
//!   and retransmitted, and appear in the trace as `ReduceScatter` /
//!   `AllGather` chunks.
//! - When the last allgather chunk lands, every worker's
//!   `received_version` for the slice advances and stalled forward passes
//!   are rechecked — the same contract the PS backend satisfies with its
//!   `Response` broadcast.
//!
//! Stragglers and degraded links work unchanged. Message loss works, but
//! a chunk that exhausts its retry budget (`GiveUp`) wedges the collective
//! and surfaces as a structured `Deadlock` — configure a generous retry
//! budget with loss. Worker crashes and wire compression are rejected at
//! config validation (a dead rank has no counterpart in a ring; compressed
//! collectives are future work, see ROADMAP).

use super::backend::CommBackend;
use super::types::{MsgCtx, MsgKind, Role};
use super::ClusterSim;
use crate::egress::OutMsg;
use p3_allreduce::CollectiveSchedule;
use p3_core::PrioQueue;
use p3_net::{MachineId, Priority};
use p3_pserver::HEADER_BYTES;
use p3_trace::{MsgClass, TraceEvent};

/// The one collective currently occupying the network.
#[derive(Debug, Clone, Copy)]
struct ActiveCollective {
    key: usize,
    round: u64,
    step: usize,
    /// Chunks of the current step not yet delivered.
    outstanding: usize,
}

/// All collective-backend state, hung off the sim as
/// `Option<CollectiveState>` (`None` under the PS backend, so PS runs
/// carry no dead weight). The backend's hooks temporarily take the state
/// out of the sim while they run — it and the rest of the sim are mutated
/// side by side, and its absence doubles as the "is a collective already
/// being handled?" re-entrancy guard.
#[derive(Debug)]
pub(crate) struct CollectiveState {
    schedule: CollectiveSchedule,
    /// Per-block count of workers whose backward pass for that block has
    /// finished this round. Rounds cannot be confused: a worker only
    /// reaches round r+1's backward after every slice of round r
    /// completed its collective (the forward pass gates on it).
    block_ready: Vec<u32>,
    /// Slices whose gradients are ready cluster-wide, keyed by network
    /// priority: the next collective to launch is the most urgent one.
    pending: PrioQueue<(usize, u64)>,
    active: Option<ActiveCollective>,
}

impl CollectiveState {
    pub(crate) fn new(schedule: CollectiveSchedule, blocks: usize) -> Self {
        CollectiveState {
            schedule,
            block_ready: vec![0; blocks],
            pending: PrioQueue::new(),
            active: None,
        }
    }
}

/// Ring / halving–doubling allreduce hosted on the engine. Which schedule
/// runs is decided by the [`CollectiveSchedule`] built from
/// [`BackendKind`](crate::BackendKind) at construction.
pub(crate) struct CollectiveBackend;

impl CommBackend for CollectiveBackend {
    fn grads_ready(sim: &mut ClusterSim, worker: usize, block: usize, round: u64) {
        let Some(mut st) = sim.collective.take() else {
            unreachable!("collective backend without collective state")
        };
        let keys = &sim.keys_of_block[block];
        for &k in keys {
            sim.trace(TraceEvent::GradReady {
                worker,
                key: k,
                round,
                priority: sim.prio[k],
            });
        }
        st.block_ready[block] += 1;
        if st.block_ready[block] >= sim.cfg.machines as u32 {
            // The whole cluster finished this block: its slices are
            // eligible.
            st.block_ready[block] = 0;
            for &k in keys {
                st.pending.push(sim.prio[k], (k, round));
            }
            if st.active.is_none() {
                Self::start_next(sim, &mut st);
            }
        }
        sim.collective = Some(st);
    }

    fn delivered(sim: &mut ClusterSim, ctx: MsgCtx) {
        let Some(mut st) = sim.collective.take() else {
            unreachable!("collective backend without collective state")
        };
        Self::on_chunk_delivered(sim, &mut st, ctx);
        sim.collective = Some(st);
    }

    fn iteration_started(_sim: &mut ClusterSim, _worker: usize) {
        // Nothing to do: parameters arrive via allgather completion, never
        // by pulling.
    }
}

impl CollectiveBackend {
    fn on_chunk_delivered(sim: &mut ClusterSim, st: &mut CollectiveState, ctx: MsgCtx) {
        let chunk_step = match ctx.kind {
            MsgKind::ReduceScatter { step, .. } | MsgKind::AllGather { step, .. } => step,
            other => unreachable!("{other:?} delivered under a collective backend"),
        };
        sim.stats.collective_chunks += 1;
        let Some(mut a) = st.active else {
            unreachable!("chunk delivered with no active collective")
        };
        assert_eq!(
            chunk_step, a.step,
            "chunk from step {chunk_step} delivered while step {} is active",
            a.step
        );
        a.outstanding -= 1;
        if a.outstanding > 0 {
            st.active = Some(a);
            return;
        }
        a.step += 1;
        // (The degenerate single-machine collective arrives here with
        // `step == 1 > steps() == 0` and completes immediately.)
        if a.step < st.schedule.steps() {
            a.outstanding = Self::launch_step(sim, st, a.key, a.round, a.step);
            st.active = Some(a);
            return;
        }
        st.active = None;
        Self::complete(sim, st, a.key, a.round);
    }

    /// Launches the most urgent pending collective, if any.
    fn start_next(sim: &mut ClusterSim, st: &mut CollectiveState) {
        debug_assert!(st.active.is_none(), "collective already in flight");
        let Some((key, round)) = st.pending.pop() else {
            return;
        };
        let outstanding = if st.schedule.steps() == 0 {
            Self::launch_degenerate(sim, key, round)
        } else {
            Self::launch_step(sim, st, key, round, 0)
        };
        st.active = Some(ActiveCollective {
            key,
            round,
            step: 0,
            outstanding,
        });
    }

    /// Single-machine cluster: an allreduce with yourself moves no
    /// gradients, but one loopback allgather chunk still flows so the
    /// trace and the delivery path stay uniform with real clusters.
    fn launch_degenerate(sim: &mut ClusterSim, key: usize, round: u64) -> usize {
        let version = round + 1;
        let bytes = HEADER_BYTES as u64;
        let priority = Priority(sim.prio[key]);
        let msg_id = sim.register_msg(
            MsgKind::AllGather {
                key,
                version,
                step: 0,
            },
            0,
            0,
            bytes,
            priority,
        );
        let msg = OutMsg {
            dst: MachineId(0),
            bytes,
            priority,
            msg_id,
        };
        sim.enqueue_traced(0, Role::Worker, msg, MsgClass::AllGather, key, version);
        sim.kick_egress(0, Role::Worker);
        1
    }

    /// Enqueues every chunk of one schedule step on its sender's egress
    /// and returns the number of chunks in flight. Each schedule transfer
    /// is split into `collective_channels` concurrent flows (NCCL-style
    /// channels) so one peer-to-peer stream is not pinned to the
    /// single-flow goodput ceiling (`ClusterConfig::flow_cap`).
    fn launch_step(
        sim: &mut ClusterSim,
        st: &CollectiveState,
        key: usize,
        round: u64,
        step: usize,
    ) -> usize {
        let payload = 4 * sim.plan.slice(p3_pserver::Key(key as u64)).params;
        let transfers = st.schedule.transfers(step, payload);
        let allgather = st.schedule.is_allgather(step);
        let priority = Priority(sim.prio[key]);
        let channels = sim.cfg.collective_channels as u64;
        let mut chunks = 0;
        for t in &transfers {
            let (kind, class, tag) = if allgather {
                let version = round + 1;
                (
                    MsgKind::AllGather { key, version, step },
                    MsgClass::AllGather,
                    version,
                )
            } else {
                (
                    MsgKind::ReduceScatter { key, round, step },
                    MsgClass::ReduceScatter,
                    round,
                )
            };
            // Near-even split; the last channel takes the remainder.
            let per = t.bytes / channels;
            for c in 0..channels {
                let slab = if c == channels - 1 {
                    t.bytes - per * (channels - 1)
                } else {
                    per
                };
                let bytes = slab + HEADER_BYTES as u64;
                let msg_id = sim.register_msg(kind, t.src, t.dst, bytes, priority);
                let msg = OutMsg {
                    dst: MachineId(t.dst),
                    bytes,
                    priority,
                    msg_id,
                };
                sim.enqueue_traced(t.src, Role::Worker, msg, class, key, tag);
                chunks += 1;
            }
        }
        for t in &transfers {
            sim.kick_egress(t.src, Role::Worker);
        }
        chunks
    }

    /// The last allgather chunk landed: every worker now holds the
    /// aggregated parameters for this slice — the collective equivalent of
    /// the PS backend's response broadcast.
    fn complete(sim: &mut ClusterSim, st: &mut CollectiveState, key: usize, round: u64) {
        let version = round + 1;
        for w in 0..sim.cfg.machines {
            let rv = &mut sim.workers[w].received_version[key];
            if version > *rv {
                *rv = version;
            }
        }
        for w in 0..sim.cfg.machines {
            sim.recheck_waiting(w);
        }
        Self::start_next(sim, st);
    }
}
