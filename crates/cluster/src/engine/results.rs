//! End-of-run result assembly: freezing a finished [`ClusterSim`] into a
//! [`RunResult`] — measured throughput, iteration quantiles, stall
//! accounting, utilization traces, link totals, and (when profiling is
//! on) the frozen [`p3_prof::ProfileReport`].

use super::ClusterSim;
use crate::config::{LinkUtilization, RunResult, UtilizationTrace};
use p3_des::{quantile, SimDuration, SimTime};
use p3_net::MachineId;

impl ClusterSim {
    /// Consumes the finished engine and computes the measured result.
    /// `target` is the iteration count every surviving worker reached.
    pub(super) fn finish(mut self, target: u64) -> RunResult {
        // Freeze the profile first: copy the network's deterministic work
        // counters and the calendar's heap statistics in, then derive the
        // wall-clock throughput figures.
        let net_stats = self.net.stats();
        let profile = self.prof.take().map(|mut p| {
            p.set("net/reallocations", net_stats.reallocations);
            p.set("net/flows_touched", net_stats.flows_touched);
            p.set("net/waterfill_rounds", net_stats.waterfill_rounds);
            p.set("net/ports_touched", net_stats.ports_touched);
            p.set("net/peak_in_flight", net_stats.peak_in_flight);
            p.set("heap/scheduled_total", self.queue.scheduled_total());
            p.set("heap/high_water", self.queue.high_water() as u64);
            p.report(self.events, self.queue.now().as_secs_f64())
        });
        let batch = self.cfg.batch_per_worker as f64;
        let measure_iters = self.cfg.measure_iters as f64;
        let mut total = 0.0;
        let mut iter_sum = 0.0;
        let mut stall_sum = 0.0;
        let mut finished_at = SimTime::ZERO;
        let mut survivors = 0.0;
        let mut pooled: Vec<f64> = Vec::new();
        for w in &self.workers {
            pooled.extend_from_slice(&w.measured_iters);
            if w.permanently_dead {
                continue; // its partial iterations still count in the tail
            }
            let start = w.measure_start.expect("worker never started measuring");
            let end = w.measure_end.expect("worker never finished measuring");
            assert!(w.completed >= target);
            let secs = (end - start).as_secs_f64();
            total += measure_iters * batch / secs;
            iter_sum += secs / measure_iters;
            stall_sum += w.stalled_total.as_secs_f64() / end.as_secs_f64();
            finished_at = finished_at.max(end);
            survivors += 1.0;
        }
        let p50 = quantile(&pooled, 0.50).map_or(SimDuration::ZERO, SimDuration::from_secs_f64);
        let p99 = quantile(&pooled, 0.99).map_or(SimDuration::ZERO, SimDuration::from_secs_f64);
        let trace = self.cfg.trace_bin.map(|bin| UtilizationTrace {
            bin,
            tx_gbps: self
                .net
                .tx_trace(MachineId(0))
                .expect("trace enabled")
                .gbps_series(),
            rx_gbps: self
                .net
                .rx_trace(MachineId(0))
                .expect("trace enabled")
                .gbps_series(),
        });
        let stalled_per_worker = self.workers.iter().map(|w| w.stalled_total).collect();
        // Per-link totals of the compiled topology (empty on the flat
        // fabric). Busy fractions are relative to when the run ended.
        let end_secs = self.queue.now().as_secs_f64();
        let links = self
            .net
            .link_usage()
            .into_iter()
            .map(|l| LinkUtilization {
                name: l.name,
                busy_fraction: if end_secs > 0.0 {
                    l.busy_secs / end_secs
                } else {
                    0.0
                },
                bytes: l.bytes,
                transit: l.transit,
            })
            .collect();
        RunResult {
            throughput: total,
            per_worker_throughput: total / survivors,
            unit: self.cfg.model.unit(),
            mean_iteration: SimDuration::from_secs_f64(iter_sum / survivors),
            p50_iteration: p50,
            p99_iteration: p99,
            mean_stall_fraction: stall_sum / survivors,
            stalled_per_worker,
            finished_at,
            events: self.events,
            peak_in_flight_flows: net_stats.peak_in_flight,
            messages: self.stats,
            faults: self.faults,
            trace,
            links,
            event_hash: self.hash,
            profile,
        }
    }
}
