//! Shared vocabulary of the layered engine: event and message enums,
//! per-endpoint state, and the small helper functions that map them onto
//! the trace vocabulary.
//!
//! Everything here is `pub(crate)` plumbing between the engine layers
//! (worker compute, transport, server, membership, comm backends); nothing
//! is public API.

use crate::egress::EgressUnit;
use p3_core::PrioQueue;
use p3_des::{SimDuration, SimTime, SplitMix64};
use p3_net::{MachineId, Priority};
use p3_trace::{ComputePhase, MsgClass};

/// Hard cap on processed events — a run that exceeds it is wedged.
pub(crate) const EVENT_CAP: u64 = 500_000_000;

/// Round-membership masks are `u128` bitsets, one bit per worker.
pub(crate) const MAX_MACHINES: usize = 128;

/// Index of a role in per-machine `[worker, server]` state arrays.
pub(crate) fn role_slot(role: Role) -> usize {
    match role {
        Role::Worker => 0,
        Role::Server => 1,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    Fwd(usize),
    Bwd(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Role {
    Worker,
    Server,
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum Ev {
    StartWorker {
        worker: usize,
    },
    /// `inc` is the worker's incarnation at scheduling time; events from a
    /// pre-crash incarnation are stale and ignored.
    Compute {
        worker: usize,
        phase: Phase,
        inc: u32,
    },
    EgressReady {
        machine: usize,
        role: Role,
        dst: MachineId,
        inc: u32,
    },
    /// A single-consumer egress may admit its next message (the consumer
    /// thread finished serializing the previous one).
    AdmitKick {
        machine: usize,
        role: Role,
    },
    ProcDone {
        server: usize,
    },
    NetWake,
    /// A scheduled straggler episode begins/ends on its worker.
    StragglerStart {
        idx: usize,
    },
    StragglerEnd {
        idx: usize,
    },
    /// A scheduled link degradation begins/ends on its machine.
    LinkDegradeStart {
        idx: usize,
    },
    LinkDegradeEnd {
        idx: usize,
    },
    /// A scheduled worker-process crash / restart.
    Crash {
        idx: usize,
    },
    Rejoin {
        worker: usize,
    },
    /// Retry timeout for one transmission attempt of one message.
    RetryTimer {
        msg_id: u64,
        attempt: u32,
    },
    /// The membership grace period for a crashed worker expired.
    LivenessTimeout {
        worker: usize,
    },
}

impl Ev {
    /// The profiler's dispatch-timer key for this event variant. Static
    /// strings so the hot-loop hook allocates nothing.
    pub(crate) fn dispatch_key(&self) -> &'static str {
        match self {
            Ev::StartWorker { .. } => "dispatch/StartWorker",
            Ev::Compute { .. } => "dispatch/Compute",
            Ev::EgressReady { .. } => "dispatch/EgressReady",
            Ev::AdmitKick { .. } => "dispatch/AdmitKick",
            Ev::ProcDone { .. } => "dispatch/ProcDone",
            Ev::NetWake => "dispatch/NetWake",
            Ev::StragglerStart { .. } => "dispatch/StragglerStart",
            Ev::StragglerEnd { .. } => "dispatch/StragglerEnd",
            Ev::LinkDegradeStart { .. } => "dispatch/LinkDegradeStart",
            Ev::LinkDegradeEnd { .. } => "dispatch/LinkDegradeEnd",
            Ev::Crash { .. } => "dispatch/Crash",
            Ev::Rejoin { .. } => "dispatch/Rejoin",
            Ev::RetryTimer { .. } => "dispatch/RetryTimer",
            Ev::LivenessTimeout { .. } => "dispatch/LivenessTimeout",
        }
    }
}

/// What an in-flight message is, resolved when its flow is delivered.
#[derive(Debug, Clone, Copy)]
pub(crate) enum MsgKind {
    /// Worker → server gradients for one key of one round.
    Push { key: usize, round: u64 },
    /// Server → worker updated parameters.
    Response { key: usize, version: u64 },
    /// Server → worker update notification (baseline only).
    Notify { key: usize, version: u64 },
    /// Worker → server parameter request; answered once `version[key] >=
    /// round`.
    PullReq { key: usize, round: u64 },
    /// Worker → rack-aggregator partial gradient (rack-local placement):
    /// one rack member's contribution, combined in-rack before crossing
    /// the core.
    RackPush { key: usize, round: u64 },
    /// Rack-aggregator → home server combined gradient covering the
    /// workers in `members` (a bitmask). Sums have the same wire size as
    /// one push — that is the PHub-style core-bandwidth saving.
    CombinedPush {
        key: usize,
        round: u64,
        members: u128,
    },
    /// Worker → worker partial-gradient chunk of one collective step
    /// (reduce-scatter phase; ring and halving–doubling backends only).
    ReduceScatter { key: usize, round: u64, step: usize },
    /// Worker → worker aggregated-parameter chunk of one collective step
    /// (allgather phase). Carries the post-collective version, like a
    /// parameter-server `Response`.
    AllGather {
        key: usize,
        version: u64,
        step: usize,
    },
}

/// True for message kinds originated by the worker process (destroyed when
/// it crashes) rather than the colocated server shard.
pub(crate) fn worker_originated(kind: MsgKind) -> bool {
    matches!(
        kind,
        MsgKind::Push { .. }
            | MsgKind::PullReq { .. }
            | MsgKind::RackPush { .. }
            | MsgKind::ReduceScatter { .. }
            | MsgKind::AllGather { .. }
    )
}

pub(crate) fn sender_role_of(kind: MsgKind) -> Role {
    if worker_originated(kind) {
        Role::Worker
    } else {
        Role::Server
    }
}

/// Trace vocabulary for a message kind: protocol class, slice key, and
/// round (or version, for server→worker messages and allgather chunks).
pub(crate) fn class_of(kind: MsgKind) -> (MsgClass, usize, u64) {
    match kind {
        MsgKind::Push { key, round } => (MsgClass::Push, key, round),
        MsgKind::Response { key, version } => (MsgClass::Response, key, version),
        MsgKind::Notify { key, version } => (MsgClass::Notify, key, version),
        MsgKind::PullReq { key, round } => (MsgClass::PullRequest, key, round),
        MsgKind::RackPush { key, round } => (MsgClass::RackPush, key, round),
        MsgKind::CombinedPush { key, round, .. } => (MsgClass::CombinedPush, key, round),
        MsgKind::ReduceScatter { key, round, .. } => (MsgClass::ReduceScatter, key, round),
        MsgKind::AllGather { key, version, .. } => (MsgClass::AllGather, key, version),
    }
}

/// Trace vocabulary for a compute phase.
pub(crate) fn trace_phase(phase: Phase) -> (ComputePhase, usize) {
    match phase {
        Phase::Fwd(b) => (ComputePhase::Forward, b),
        Phase::Bwd(b) => (ComputePhase::Backward, b),
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct MsgCtx {
    pub(crate) kind: MsgKind,
    pub(crate) src: usize,
    pub(crate) dst: usize,
    /// Wire size, kept for retransmission.
    pub(crate) bytes: u64,
    /// Network priority, kept so retransmissions re-enter the egress queue
    /// at their original urgency.
    pub(crate) priority: Priority,
    /// Transmission attempts so far (0 = first send).
    pub(crate) attempt: u32,
    /// True while a flow for this message is in the network.
    pub(crate) in_flight: bool,
}

#[derive(Debug)]
pub(crate) struct WorkerState {
    pub(crate) iter: u64,
    pub(crate) completed: u64,
    pub(crate) received_version: Vec<u64>,
    pub(crate) notified_version: Vec<u64>,
    pub(crate) waiting_block: Option<usize>,
    /// Instant the worker stalled waiting for parameters, if stalled.
    pub(crate) stalled_since: Option<SimTime>,
    /// Accumulated stall time.
    pub(crate) stalled_total: SimDuration,
    pub(crate) started: bool,
    pub(crate) measure_start: Option<SimTime>,
    pub(crate) measure_end: Option<SimTime>,
    pub(crate) jitter: f64,
    /// Compute-time multiplier from an active straggler episode (1.0 when
    /// healthy).
    pub(crate) slowdown: f64,
    /// True while the worker process is down.
    pub(crate) crashed: bool,
    /// True if the process will never restart.
    pub(crate) permanently_dead: bool,
    /// Bumped at every crash; events carrying an older incarnation are
    /// stale echoes of the dead process and are dropped.
    pub(crate) incarnation: u32,
    /// Iteration to restart from after a rejoin: the oldest round whose
    /// push the crash destroyed (re-pushes of already-counted keys are
    /// deduplicated server-side).
    pub(crate) resume_iter: u64,
    /// Start instant of the iteration in progress.
    pub(crate) iter_started: SimTime,
    /// Durations (seconds) of iterations completed inside the measurement
    /// window, for tail quantiles.
    pub(crate) measured_iters: Vec<f64>,
    pub(crate) egress: EgressUnit,
    pub(crate) rng: SplitMix64,
}

#[derive(Debug)]
pub(crate) struct ServerState {
    /// Pending received gradient messages awaiting processing.
    pub(crate) proc_queue: PrioQueue<ProcItem>,
    pub(crate) proc_busy: bool,
    /// Per-key bitmask of workers whose push was counted this round
    /// (indexed by key; bit per worker). A mask instead of a counter so a
    /// rejoining worker's replayed pushes deduplicate.
    pub(crate) received: Vec<u128>,
    /// Per-key completed rounds (indexed by key).
    pub(crate) version: Vec<u64>,
    /// Workers whose deferred pulls await each key's next version.
    pub(crate) pending_pulls: Vec<Vec<usize>>,
    /// The message currently occupying the processing unit.
    pub(crate) current: Option<ProcItem>,
    pub(crate) egress: EgressUnit,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct ProcItem {
    pub(crate) key: usize,
    pub(crate) round: u64,
    /// Representative sender, for tracing (the pushing worker, or the
    /// aggregator machine of a combined push).
    pub(crate) worker: usize,
    /// Workers whose gradients this message carries: a single bit for a
    /// direct push, a whole rack's mask for a combined push.
    pub(crate) members: u128,
}
