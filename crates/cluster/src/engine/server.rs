//! Parameter-server engine: shard processing queues, gradient aggregation,
//! round completion and response fan-out, deferred pulls, notify
//! propagation, and rack-local partial aggregation. Only the PS backend
//! drives this layer; collective backends leave every shard idle.

use super::types::{Ev, MsgKind, ProcItem, Role};
use super::ClusterSim;
use crate::egress::OutMsg;
use p3_core::{PullTiming, ResponseMode, ServerProcessing};
use p3_des::SimDuration;
use p3_net::{MachineId, Priority};
use p3_pserver::HEADER_BYTES;
use p3_topo::Placement;
use p3_trace::{FaultKind, MsgClass, TraceEvent};

impl ClusterSim {
    // ------------------------------------------------------------------
    // Worker-side PS protocol helpers.

    pub(crate) fn send_pull_request(&mut self, worker: usize, key: usize, round: u64) {
        let slice = self.plan.slice(p3_pserver::Key(key as u64));
        let bytes = HEADER_BYTES as u64;
        let priority = Priority(self.prio[key]);
        let msg = OutMsg {
            dst: MachineId(slice.server.0),
            bytes,
            priority,
            msg_id: self.register_msg(
                MsgKind::PullReq { key, round },
                worker,
                slice.server.0,
                bytes,
                priority,
            ),
        };
        self.enqueue_traced(worker, Role::Worker, msg, MsgClass::PullRequest, key, round);
    }

    pub(crate) fn on_notify(&mut self, worker: usize, key: usize, version: u64) {
        {
            let w = &mut self.workers[worker];
            if version > w.notified_version[key] {
                w.notified_version[key] = version;
            }
        }
        // MXNet pulls a layer only once every one of its parts has
        // notified (§4.2 explains why P3 removes this).
        let array = self.plan.slice(p3_pserver::Key(key as u64)).array;
        let keys = self.plan.slices_of_array(array).to_vec();
        let all_notified = keys
            .iter()
            .all(|&k| self.workers[worker].notified_version[k] >= version);
        if all_notified && self.cfg.strategy.pull_timing == PullTiming::Eager {
            for &k in &keys {
                if self.workers[worker].received_version[k] < version
                    && self.workers[worker].notified_version[k] >= version
                {
                    self.send_pull_request(worker, k, version);
                }
            }
            self.kick_egress(worker, Role::Worker);
        }
    }

    // ------------------------------------------------------------------
    // Rack-local aggregation.

    /// The rack aggregator a worker's push detours through under
    /// rack-local placement: set only when the key's home server is in a
    /// different rack, so the rack's combined gradient crosses the core
    /// once instead of once per member. Pushes within the home rack (and
    /// everything outside rack-local placement) go direct.
    pub(crate) fn rack_push_target(&self, worker: usize, server: usize) -> Option<usize> {
        let topo = self.cfg.topology.as_ref()?;
        if self.cfg.placement != Placement::RackLocal || topo.machines() != self.cfg.machines {
            return None;
        }
        let rack = topo.rack_of(worker);
        (topo.rack_of(server) != rack).then(|| topo.aggregator_of(rack))
    }

    /// One rack member's partial gradient arrived at its rack aggregator.
    /// Combining is treated as free (it overlaps the remaining members'
    /// transfers); once the whole rack has contributed, the combined
    /// gradient is forwarded to the key's home server through the
    /// aggregator machine's server-role egress.
    pub(crate) fn on_rack_push(&mut self, agg: usize, key: usize, round: u64, from: usize) {
        let topo = self
            .cfg
            .topology
            .as_ref()
            .expect("rack push without a topology");
        let rack = topo.rack_of(agg);
        let full: u128 = topo.rack_members(rack).fold(0, |m, w| m | (1u128 << w));
        let members = {
            let entry = self.rack_agg.entry((agg, key, round)).or_insert(0);
            *entry |= 1u128 << from;
            *entry
        };
        if members != full {
            return;
        }
        self.rack_agg.remove(&(agg, key, round));
        let slice = self.plan.slice(p3_pserver::Key(key as u64));
        let server = slice.server.0;
        let bytes = self.push_wire(slice.params);
        let priority = Priority(self.prio[key]);
        let msg = OutMsg {
            dst: MachineId(server),
            bytes,
            priority,
            msg_id: self.register_msg(
                MsgKind::CombinedPush {
                    key,
                    round,
                    members,
                },
                agg,
                server,
                bytes,
                priority,
            ),
        };
        self.enqueue_traced(agg, Role::Server, msg, MsgClass::CombinedPush, key, round);
        self.kick_egress(agg, Role::Server);
    }

    // ------------------------------------------------------------------
    // Server processing.

    /// Queues a received gradient message (direct or combined) on a
    /// server's processing unit at the strategy's processing priority.
    pub(crate) fn enqueue_proc(
        &mut self,
        server: usize,
        key: usize,
        round: u64,
        from: usize,
        members: u128,
    ) {
        let prio = match self.cfg.strategy.server_processing {
            ServerProcessing::Priority => self.prio[key],
            ServerProcessing::Fifo => 0,
        };
        self.servers[server].proc_queue.push(
            prio,
            ProcItem {
                key,
                round,
                worker: from,
                members,
            },
        );
        self.kick_proc(server);
    }

    pub(crate) fn kick_proc(&mut self, server: usize) {
        if self.servers[server].proc_busy {
            return;
        }
        loop {
            let Some(item) = self.servers[server].proc_queue.pop() else {
                return;
            };
            let version = self.servers[server].version[item.key];
            if item.round < version {
                // The round completed without this push (degraded
                // completion, or a rejoined worker replaying old work).
                self.faults.stale_pushes_dropped += 1;
                self.trace_fault(FaultKind::StalePush, server, None);
                continue;
            }
            assert_eq!(
                version, item.round,
                "push for round {} processed while key {} is at version {}",
                item.round, item.key, version
            );
            if self.servers[server].received[item.key] & item.members != 0 {
                self.faults.duplicate_pushes_dropped += 1;
                self.trace_fault(FaultKind::DuplicatePush, server, None);
                continue;
            }
            let params = self.plan.slice(p3_pserver::Key(item.key as u64)).params;
            let completing = (self.servers[server].received[item.key] | item.members).count_ones()
                >= self.expected_pushes;
            let mut nanos =
                self.cfg.proc_fixed.as_nanos() as f64 + self.cfg.agg_ns_per_param * params as f64;
            if completing {
                nanos += self.cfg.upd_ns_per_param * params as f64;
            }
            self.servers[server].proc_busy = true;
            self.servers[server].current = Some(item);
            self.trace(TraceEvent::AggStart {
                server,
                key: item.key,
                round: item.round,
                worker: item.worker,
            });
            self.queue.schedule_in(
                SimDuration::from_nanos(nanos as u64),
                Ev::ProcDone { server },
            );
            return;
        }
    }

    pub(crate) fn on_proc_done(&mut self, server: usize) {
        let item = self.servers[server]
            .current
            .take()
            .expect("ProcDone without an item in flight");
        self.servers[server].proc_busy = false;
        self.trace(TraceEvent::AggEnd {
            server,
            key: item.key,
            round: item.round,
            worker: item.worker,
        });
        // Re-validate: the round may have completed (degraded) while this
        // push was in the processing unit.
        if item.round < self.servers[server].version[item.key] {
            self.faults.stale_pushes_dropped += 1;
            self.trace_fault(FaultKind::StalePush, server, None);
        } else if self.servers[server].received[item.key] & item.members != 0 {
            self.faults.duplicate_pushes_dropped += 1;
            self.trace_fault(FaultKind::DuplicatePush, server, None);
        } else {
            self.servers[server].received[item.key] |= item.members;
            if self.servers[server].received[item.key].count_ones() >= self.expected_pushes {
                self.complete_round(server, item.key);
                self.kick_egress(server, Role::Server);
            }
        }
        self.kick_proc(server);
    }

    /// Finishes one key's aggregation round: bumps the version and sends
    /// the update out (broadcast or notify, per strategy), skipping evicted
    /// workers. Called from normal processing and from degraded completion
    /// after a membership change.
    pub(crate) fn complete_round(&mut self, server: usize, key: usize) {
        let mask = self.servers[server].received[key];
        let degraded = (mask.count_ones() as usize) < self.cfg.machines;
        if degraded {
            self.faults.degraded_rounds += 1;
            self.trace_fault(FaultKind::DegradedRound, server, None);
        }
        self.servers[server].received[key] = 0;
        self.servers[server].version[key] += 1;
        let version = self.servers[server].version[key];
        self.trace(TraceEvent::RoundComplete {
            server,
            key,
            version,
            degraded,
        });
        match self.cfg.strategy.response {
            ResponseMode::ImmediateBroadcast => {
                for w in 0..self.cfg.machines {
                    if self.dead_members[w] {
                        continue;
                    }
                    self.send_response_versioned(server, key, w, version);
                }
            }
            ResponseMode::NotifyThenPull => {
                if self.cfg.strategy.pull_timing == PullTiming::Eager {
                    let bytes = HEADER_BYTES as u64;
                    let priority = Priority(self.prio[key]);
                    for w in 0..self.cfg.machines {
                        if self.dead_members[w] {
                            continue;
                        }
                        let msg = OutMsg {
                            dst: MachineId(w),
                            bytes,
                            priority,
                            msg_id: self.register_msg(
                                MsgKind::Notify { key, version },
                                server,
                                w,
                                bytes,
                                priority,
                            ),
                        };
                        self.enqueue_traced(
                            server,
                            Role::Server,
                            msg,
                            MsgClass::Notify,
                            key,
                            version,
                        );
                    }
                }
                // Deferred (TF-style) pulls waiting on this version:
                let waiting = std::mem::take(&mut self.servers[server].pending_pulls[key]);
                for w in waiting {
                    if self.dead_members[w] {
                        continue;
                    }
                    self.send_response_versioned(server, key, w, version);
                }
            }
        }
    }

    pub(crate) fn send_response(&mut self, server: usize, key: usize, worker: usize) {
        let version = self.servers[server].version[key];
        self.send_response_versioned(server, key, worker, version);
    }

    fn send_response_versioned(&mut self, server: usize, key: usize, worker: usize, version: u64) {
        let params = self.plan.slice(p3_pserver::Key(key as u64)).params;
        let bytes = self.response_wire(params);
        let priority = Priority(self.prio[key]);
        let msg = OutMsg {
            dst: MachineId(worker),
            bytes,
            priority,
            msg_id: self.register_msg(
                MsgKind::Response { key, version },
                server,
                worker,
                bytes,
                priority,
            ),
        };
        self.enqueue_traced(server, Role::Server, msg, MsgClass::Response, key, version);
    }
}
