//! Per-event snapshot hooks for the run loop.
//!
//! The loop in `engine/mod.rs` is generic over [`SnapshotSink`] so the
//! common no-snapshot path pays nothing for the capability: `ACTIVE` is a
//! const the compiler folds away, and [`NoSnapshots`] is a ZST.

use super::ClusterSim;

/// What the run loop does after dispatching each event — the seam that
/// keeps the hot loop monomorphic for the common no-snapshot case while
/// letting callers capture periodic snapshots.
pub(super) trait SnapshotSink {
    /// Whether this sink does any per-event work. `false` lets the run
    /// loop compile the profiler's snapshot timer out of the common
    /// no-snapshot path entirely.
    const ACTIVE: bool;
    fn after_event(&mut self, sim: &ClusterSim);
}

/// The default sink: no snapshots, zero per-event work.
pub(super) struct NoSnapshots;

impl SnapshotSink for NoSnapshots {
    const ACTIVE: bool = false;
    fn after_event(&mut self, _sim: &ClusterSim) {}
}

/// Captures a snapshot every time the slowest live worker crosses a
/// multiple of `every` completed iterations.
pub(super) struct SnapshotTaker<'a> {
    pub(super) every: u64,
    pub(super) next_at: u64,
    pub(super) hook: &'a mut dyn FnMut(u64, Vec<u8>),
}

impl SnapshotSink for SnapshotTaker<'_> {
    const ACTIVE: bool = true;
    fn after_event(&mut self, sim: &ClusterSim) {
        let floor = sim.min_completed();
        if floor >= self.next_at {
            (self.hook)(floor, sim.snapshot());
            // Skip past multiples crossed in one jump so every snapshot
            // reflects a distinct progress floor.
            self.next_at = (floor / self.every + 1) * self.every;
        }
    }
}

/// Captures exactly one snapshot the first time the slowest live worker
/// reaches `at` completed iterations, then goes dormant.
pub(super) struct SnapshotOnce<'a> {
    pub(super) at: u64,
    pub(super) out: &'a mut Option<Vec<u8>>,
}

impl SnapshotSink for SnapshotOnce<'_> {
    const ACTIVE: bool = true;
    fn after_event(&mut self, sim: &ClusterSim) {
        if self.out.is_none() && sim.min_completed() >= self.at {
            *self.out = Some(sim.snapshot());
        }
    }
}
