//! Fault-injection, tracing, and topology tests for the engine, plus the
//! replayability property suite.

use super::ClusterSim;
use crate::config::{ClusterConfig, FaultStats, RunError};
use crate::faults::{FaultPlan, LinkDegradation, StragglerEpisode, WorkerCrash};
use p3_core::SyncStrategy;
use p3_des::{SimDuration, SimTime};
use p3_models::ModelSpec;
use p3_net::Bandwidth;
use p3_pserver::RetryPolicy;

fn base_cfg() -> ClusterConfig {
    ClusterConfig::new(
        ModelSpec::resnet50(),
        SyncStrategy::p3(),
        4,
        Bandwidth::from_gbps(8.0),
    )
    .with_iters(1, 3)
    .with_seed(7)
}

#[test]
fn empty_plan_is_bit_identical_to_no_plan() {
    // The pay-for-what-you-use guarantee: installing an empty plan must
    // not shift a single event or random draw.
    let clean = ClusterSim::new(base_cfg()).run();
    let with_plan = ClusterSim::new(base_cfg().with_faults(FaultPlan::none())).run();
    assert_eq!(clean, with_plan);
    assert_eq!(clean.events, with_plan.events);
    assert_eq!(clean.faults, FaultStats::default());
}

#[test]
fn straggler_stretches_the_tail() {
    let plan = FaultPlan {
        stragglers: vec![StragglerEpisode {
            worker: 1,
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(1_000),
            slowdown: 3.0,
        }],
        ..FaultPlan::none()
    };
    let clean = ClusterSim::new(base_cfg()).run();
    let slow = ClusterSim::new(base_cfg().with_faults(plan)).run();
    assert!(
        slow.throughput < clean.throughput,
        "straggler did not hurt: {} vs {}",
        slow.throughput,
        clean.throughput
    );
    assert!(
        slow.p99_iteration > clean.p99_iteration,
        "straggler did not stretch p99: {:?} vs {:?}",
        slow.p99_iteration,
        clean.p99_iteration
    );
}

#[test]
fn degraded_link_slows_the_run() {
    let plan = FaultPlan {
        link_degradations: vec![LinkDegradation {
            machine: 0,
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(1_000),
            capacity_factor: 0.1,
        }],
        ..FaultPlan::none()
    };
    let clean = ClusterSim::new(base_cfg()).run();
    let degraded = ClusterSim::new(base_cfg().with_faults(plan)).run();
    assert!(
        degraded.throughput < clean.throughput * 0.95,
        "10% link capacity barely hurt: {} vs {}",
        degraded.throughput,
        clean.throughput
    );
}

#[test]
fn lossy_network_retransmits_and_completes() {
    let plan = FaultPlan {
        loss_probability: 0.05,
        ..FaultPlan::none()
    };
    let cfg = base_cfg().with_faults(plan).with_retry(RetryPolicy::new(
        SimDuration::from_millis(20),
        2.0,
        16,
    ));
    let r = ClusterSim::new(cfg).run();
    assert!(r.throughput > 0.0);
    assert!(r.faults.messages_lost > 0, "5% loss lost nothing");
    assert!(r.faults.retransmits > 0, "losses were never retransmitted");
    assert_eq!(r.faults.gave_up, 0, "p=0.05^17 give-up should not occur");
}

#[test]
fn permanent_crash_degrades_and_survivors_finish() {
    let mut cfg = base_cfg().with_faults(FaultPlan {
        crashes: vec![WorkerCrash {
            worker: 2,
            at: SimTime::from_millis(400),
            rejoin_after: None,
        }],
        ..FaultPlan::none()
    });
    cfg.liveness_timeout = SimDuration::from_millis(100);
    let r = ClusterSim::new(cfg).run();
    assert!(r.throughput > 0.0, "survivors failed to finish");
    assert!(
        r.faults.degraded_rounds > 0,
        "no round completed without the dead worker"
    );
}

#[test]
fn crash_with_rejoin_completes_all_workers() {
    let mut cfg = base_cfg().with_faults(FaultPlan {
        crashes: vec![WorkerCrash {
            worker: 1,
            at: SimTime::from_millis(400),
            rejoin_after: Some(SimDuration::from_millis(300)),
        }],
        ..FaultPlan::none()
    });
    // Generous liveness: membership never shrinks; peers simply wait.
    cfg.liveness_timeout = SimDuration::from_secs(30);
    let r = ClusterSim::new(cfg).run();
    assert!(r.throughput > 0.0);
    assert_eq!(
        r.faults.degraded_rounds, 0,
        "membership should not have shrunk"
    );
    // The rejoin re-synced state via pull requests — a message class P3
    // never uses in healthy runs, so any count proves the restart path
    // executed.
    assert!(
        r.messages.pull_requests > 0,
        "rejoin resync must pull state"
    );
}

#[test]
fn crash_then_rejoin_after_eviction_catches_up() {
    let mut cfg = base_cfg().with_faults(FaultPlan {
        crashes: vec![WorkerCrash {
            worker: 3,
            at: SimTime::from_millis(400),
            rejoin_after: Some(SimDuration::from_millis(500)),
        }],
        ..FaultPlan::none()
    });
    // Tight liveness: the worker is evicted, rounds degrade, then it
    // rejoins and must re-sync and still reach its iteration target.
    cfg.liveness_timeout = SimDuration::from_millis(50);
    let r = ClusterSim::new(cfg).run();
    assert!(r.throughput > 0.0);
    assert!(r.faults.degraded_rounds > 0);
}

#[test]
fn collective_crash_aborts_in_flight_collective_and_completes() {
    use crate::config::BackendKind;
    use p3_trace::{FaultKind, TraceEvent};

    let mut cfg = base_cfg()
        .with_backend(BackendKind::Ring)
        .with_faults(FaultPlan {
            crashes: vec![WorkerCrash {
                worker: 2,
                at: SimTime::from_millis(900),
                rejoin_after: Some(SimDuration::from_millis(200)),
            }],
            ..FaultPlan::none()
        })
        .with_slice_trace();
    cfg.liveness_timeout = SimDuration::from_secs(30);
    let (r, log) = ClusterSim::new(cfg).run_traced();
    let log = log.expect("tracing enabled");
    assert!(r.throughput > 0.0, "survivors failed to finish");
    assert!(
        r.faults.collectives_aborted >= 1,
        "a crash at 900ms should land mid-collective"
    );
    // The counter is a faithful journal of the abort machinery: every
    // abort left exactly one CollectiveAbort fault event in the trace.
    let aborts = log
        .events()
        .iter()
        .filter(|te| {
            matches!(
                te.event,
                TraceEvent::Fault {
                    kind: FaultKind::CollectiveAbort,
                    ..
                }
            )
        })
        .count() as u64;
    assert_eq!(r.faults.collectives_aborted, aborts);
    // The abort cancelled the dead worker's in-network chunks.
    assert!(r.faults.flows_cancelled > 0, "abort cancelled no flows");
}

#[test]
fn halving_doubling_permanent_crash_reforms_over_survivors() {
    use crate::config::BackendKind;

    let mut cfg = base_cfg()
        .with_backend(BackendKind::HalvingDoubling)
        .with_faults(FaultPlan {
            crashes: vec![WorkerCrash {
                worker: 3,
                at: SimTime::from_millis(900),
                rejoin_after: None,
            }],
            ..FaultPlan::none()
        });
    cfg.liveness_timeout = SimDuration::from_millis(100);
    let r = ClusterSim::new(cfg).run();
    assert!(r.throughput > 0.0, "survivors failed to finish");
    assert!(
        r.faults.collectives_aborted >= 1,
        "the in-flight collective should have aborted"
    );
}

#[test]
fn invalid_plan_is_a_structured_error() {
    let cfg = base_cfg().with_faults(FaultPlan {
        stragglers: vec![StragglerEpisode {
            worker: 99,
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(1),
            slowdown: 2.0,
        }],
        ..FaultPlan::none()
    });
    match ClusterSim::new(cfg).try_run() {
        Err(RunError::InvalidConfig(why)) => assert!(why.contains("out of range")),
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}

#[test]
fn faults_work_under_baseline_strategy_too() {
    // The per-destination egress and notify/pull protocol take the same
    // fault paths.
    let mut cfg = ClusterConfig::new(
        ModelSpec::resnet50(),
        SyncStrategy::baseline(),
        4,
        Bandwidth::from_gbps(8.0),
    )
    .with_iters(1, 3)
    .with_seed(7)
    .with_faults(FaultPlan {
        loss_probability: 0.02,
        crashes: vec![WorkerCrash {
            worker: 0,
            at: SimTime::from_millis(400),
            rejoin_after: Some(SimDuration::from_millis(200)),
        }],
        ..FaultPlan::none()
    });
    cfg.liveness_timeout = SimDuration::from_secs(30);
    cfg.retry = RetryPolicy::new(SimDuration::from_millis(20), 2.0, 16);
    let r = ClusterSim::new(cfg).run();
    assert!(r.throughput > 0.0);
    assert!(r.faults.messages_lost > 0);
}

mod trace_tests {
    use super::super::ClusterSim;
    use crate::config::ClusterConfig;
    use crate::faults::FaultPlan;
    use crate::timeline::ascii_timeline;
    use p3_core::SyncStrategy;
    use p3_des::{SimDuration, SimTime};
    use p3_models::ModelSpec;
    use p3_net::Bandwidth;
    use p3_pserver::RetryPolicy;
    use p3_trace::{chrome_trace_json, validate_chrome_trace};

    /// Two workers training VGG-19 (the paper's flagship model) for two
    /// iterations — small enough for tests, long enough that every round-1
    /// push → aggregate → pull chain must complete (iteration 2's forward
    /// passes consume round-1 parameters).
    fn vgg_cfg() -> ClusterConfig {
        ClusterConfig::new(
            ModelSpec::vgg19(),
            SyncStrategy::p3(),
            2,
            Bandwidth::from_gbps(10.0),
        )
        .with_iters(0, 2)
        .with_seed(7)
    }

    #[test]
    fn tracing_is_bit_identical_to_untraced() {
        // The zero-overhead guarantee: recording draws no randomness and
        // schedules nothing, so enabling the trace must not shift a single
        // event.
        let plain = ClusterSim::new(vgg_cfg()).run();
        let (traced, log) = ClusterSim::new(vgg_cfg().with_slice_trace()).run_traced();
        assert_eq!(plain, traced);
        assert!(!log.expect("tracing enabled").is_empty());
    }

    #[test]
    fn untraced_runs_return_no_log() {
        let (_, log) = ClusterSim::new(vgg_cfg()).run_traced();
        assert!(log.is_none());
    }

    #[test]
    fn chrome_export_contains_full_slice_chains() {
        let cfg = vgg_cfg().with_slice_trace();
        let machines = cfg.machines;
        let keys = cfg.strategy.plan(&cfg.model, machines, cfg.seed).num_keys();
        let (_, log) = ClusterSim::new(cfg).run_traced();
        let doc = chrome_trace_json(&log.expect("tracing enabled"), machines);
        let spans = validate_chrome_trace(&doc).expect("schema-valid Chrome trace");
        // Every slice shows at least one complete push → aggregate → pull
        // chain from the first iteration.
        for k in 0..keys {
            for name in [
                format!("push k{k}"),
                format!("agg k{k}"),
                format!("pull k{k}"),
            ] {
                assert!(
                    spans.iter().any(|s| s.name == name),
                    "no complete '{name}' span among {} spans",
                    spans.len()
                );
            }
        }
    }

    #[test]
    fn timeline_renders_nonempty_gantt() {
        let (_, log) = ClusterSim::new(vgg_cfg().with_slice_trace()).run_traced();
        let art = ascii_timeline(&log.expect("tracing enabled"), 2, 1, 60);
        assert_ne!(art, "(empty trace)\n");
        assert!(art.contains("w0 compute"));
        assert!(art.contains('#'));
    }

    #[test]
    fn fault_stats_match_traced_fault_events() {
        use crate::faults::WorkerCrash;
        use p3_trace::{FaultKind, TraceEvent};

        let mut cfg = ClusterConfig::new(
            ModelSpec::resnet50(),
            SyncStrategy::p3(),
            4,
            Bandwidth::from_gbps(8.0),
        )
        .with_iters(1, 3)
        .with_seed(7)
        .with_faults(FaultPlan {
            loss_probability: 0.05,
            crashes: vec![WorkerCrash {
                worker: 2,
                at: SimTime::from_millis(400),
                rejoin_after: Some(SimDuration::from_millis(200)),
            }],
            ..FaultPlan::none()
        })
        .with_retry(RetryPolicy::new(SimDuration::from_millis(20), 2.0, 16))
        .with_slice_trace();
        cfg.liveness_timeout = SimDuration::from_secs(30);
        let (r, log) = ClusterSim::new(cfg).run_traced();
        let log = log.expect("tracing enabled");
        let count = |kind: FaultKind| {
            log.events()
                .iter()
                .filter(|te| matches!(te.event, TraceEvent::Fault { kind: k, .. } if k == kind))
                .count() as u64
        };
        // Every aggregate counter equals its per-event count — the trace
        // is a faithful journal of the fault machinery.
        assert!(r.faults.messages_lost > 0, "5% loss lost nothing");
        assert_eq!(r.faults.messages_lost, count(FaultKind::Loss));
        assert_eq!(r.faults.retransmits, count(FaultKind::Retransmit));
        assert_eq!(r.faults.gave_up, count(FaultKind::GiveUp));
        assert_eq!(r.faults.stale_pushes_dropped, count(FaultKind::StalePush));
        assert_eq!(
            r.faults.duplicate_pushes_dropped,
            count(FaultKind::DuplicatePush)
        );
        assert_eq!(r.faults.degraded_rounds, count(FaultKind::DegradedRound));
        assert_eq!(r.faults.flows_cancelled, count(FaultKind::FlowCancelled));
        assert_eq!(count(FaultKind::Crash), 1);
        assert_eq!(count(FaultKind::Rejoin), 1);
    }
}

mod topology_tests {
    use super::super::ClusterSim;
    use crate::config::{ClusterConfig, RunError, RunResult};
    use p3_core::SyncStrategy;
    use p3_models::ModelSpec;
    use p3_net::Bandwidth;
    use p3_topo::{Placement, Topology};

    fn base(strategy: SyncStrategy) -> ClusterConfig {
        ClusterConfig::new(
            ModelSpec::resnet50(),
            strategy,
            4,
            Bandwidth::from_gbps(8.0),
        )
        .with_iters(1, 2)
        .with_seed(7)
    }

    #[test]
    fn single_rack_topology_is_result_identical_to_flat() {
        // The degenerate case: one rack, oversub 1. The graph allocator
        // mirrors the flat water-fill operand for operand, so even a
        // traced run must not shift a single event — only the link report
        // (absent on the flat fabric) may differ.
        let flat = ClusterSim::new(base(SyncStrategy::p3()).with_slice_trace()).run();
        let mut topo = ClusterSim::new(
            base(SyncStrategy::p3())
                .with_slice_trace()
                .with_topology(Topology::new(1, 4, 1.0)),
        )
        .run();
        assert!(
            !topo.links.is_empty(),
            "topology runs must report link usage"
        );
        topo.links.clear();
        assert_eq!(flat, topo);
    }

    #[test]
    fn degenerate_equivalence_holds_for_baseline_strategy_too() {
        let flat = ClusterSim::new(base(SyncStrategy::baseline())).run();
        let mut topo =
            ClusterSim::new(base(SyncStrategy::baseline()).with_topology(Topology::new(1, 4, 1.0)))
                .run();
        topo.links.clear();
        assert_eq!(flat, topo);
    }

    #[test]
    fn oversubscribed_core_slows_training() {
        let flat = ClusterSim::new(base(SyncStrategy::p3())).run();
        let topo =
            ClusterSim::new(base(SyncStrategy::p3()).with_topology(Topology::new(2, 2, 8.0))).run();
        assert!(
            topo.throughput < flat.throughput,
            "8:1 oversubscription did not hurt: {} vs {}",
            topo.throughput,
            flat.throughput
        );
    }

    #[test]
    fn topology_runs_are_deterministic() {
        let run = || {
            ClusterSim::new(base(SyncStrategy::p3()).with_topology(Topology::new(2, 2, 4.0))).run()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn machine_count_mismatch_is_invalid_config() {
        let cfg = base(SyncStrategy::p3()).with_topology(Topology::new(2, 4, 2.0));
        match ClusterSim::new(cfg).try_run() {
            Err(RunError::InvalidConfig(why)) => {
                assert!(why.contains("8 machines"), "unexpected message: {why}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn link_report_covers_ports_and_uplinks() {
        let r =
            ClusterSim::new(base(SyncStrategy::p3()).with_topology(Topology::new(2, 2, 4.0))).run();
        // 4 tx + 4 rx ports, 2 uplinks, 2 downlinks.
        assert_eq!(r.links.len(), 12);
        assert_eq!(r.links.iter().filter(|l| l.transit).count(), 4);
        for l in &r.links {
            assert!(
                (0.0..=1.0).contains(&l.busy_fraction),
                "{} busy {}",
                l.name,
                l.busy_fraction
            );
        }
        // The oversubscribed core actually carried traffic.
        let core_bytes: f64 = r.links.iter().filter(|l| l.transit).map(|l| l.bytes).sum();
        assert!(core_bytes > 0.0, "no cross-rack traffic recorded");
    }

    #[test]
    fn packed_placement_concentrates_servers_in_rack_zero() {
        // With every shard packed into rack 0, rack-1 machines originate
        // pushes only (their server shards hold no keys and send no
        // responses), so their tx ports carry clearly less than rack-0's,
        // which add the full response fan-out on top of their pushes.
        let r = ClusterSim::new(
            base(SyncStrategy::p3())
                .with_topology(Topology::new(2, 2, 4.0))
                .with_placement(Placement::Packed),
        )
        .run();
        let tx = |m: usize| {
            let name = format!("m{m}.tx");
            r.links
                .iter()
                .find(|l| l.name == name)
                .expect("port reported")
                .bytes
        };
        assert!(
            tx(0) > tx(2) * 1.2 && tx(1) > tx(3) * 1.2,
            "PS-rack ports not busier: tx {:?}",
            [tx(0), tx(1), tx(2), tx(3)]
        );
    }

    #[test]
    fn rack_local_aggregation_reduces_core_traffic() {
        let run = |placement: Placement| {
            ClusterSim::new(
                ClusterConfig::new(
                    ModelSpec::resnet50(),
                    SyncStrategy::p3(),
                    8,
                    Bandwidth::from_gbps(8.0),
                )
                .with_iters(1, 2)
                .with_seed(7)
                .with_topology(Topology::new(2, 4, 4.0))
                .with_placement(placement),
            )
            .run()
        };
        let spread = run(Placement::Spread);
        let local = run(Placement::RackLocal);
        assert!(local.messages.rack_pushes > 0, "no rack pushes happened");
        assert!(
            local.messages.combined_pushes > 0,
            "no combined pushes happened"
        );
        assert_eq!(spread.messages.rack_pushes, 0);
        let core = |r: &RunResult| {
            r.links
                .iter()
                .filter(|l| l.transit)
                .map(|l| l.bytes)
                .sum::<f64>()
        };
        // 4 workers per remote rack collapse into 1 combined push per key:
        // the core carries strictly less push traffic.
        assert!(
            core(&local) < core(&spread),
            "rack-local {} vs spread {} core bytes",
            core(&local),
            core(&spread)
        );
        assert!(local.throughput > 0.0);
    }

    #[test]
    fn rack_local_with_loss_is_rejected() {
        use crate::faults::FaultPlan;
        let cfg = base(SyncStrategy::p3())
            .with_topology(Topology::new(2, 2, 2.0))
            .with_placement(Placement::RackLocal)
            .with_faults(FaultPlan {
                loss_probability: 0.01,
                ..FaultPlan::none()
            });
        match ClusterSim::new(cfg).try_run() {
            Err(RunError::InvalidConfig(why)) => {
                assert!(why.contains("rack-local"), "unexpected message: {why}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn heterogeneous_nics_throttle_the_slow_machine() {
        // Machine 3 gets a 10× slower NIC; its port should be the busiest.
        let topo = Topology::new(2, 2, 1.0).with_nic(3, Bandwidth::from_gbps(0.8));
        let r = ClusterSim::new(base(SyncStrategy::p3()).with_topology(topo)).run();
        let busy = |name: &str| {
            r.links
                .iter()
                .find(|l| l.name == name)
                .expect("port reported")
                .busy_fraction
        };
        assert!(
            busy("m3.tx") > busy("m0.tx"),
            "slow NIC not saturated: m3 {} vs m0 {}",
            busy("m3.tx"),
            busy("m0.tx")
        );
    }
}

mod fault_properties {
    use super::super::ClusterSim;
    use crate::config::{ClusterConfig, RunResult};
    use crate::faults::{FaultPlan, StragglerEpisode, WorkerCrash};
    use p3_core::SyncStrategy;
    use p3_des::{SimDuration, SimTime};
    use p3_models::ModelSpec;
    use p3_net::Bandwidth;
    use p3_pserver::RetryPolicy;
    use proptest::prelude::*;

    fn run_with(seed: u64, loss_bp: u32, straggle: bool, crash: bool) -> RunResult {
        let mut plan = FaultPlan::none();
        plan.loss_probability = loss_bp as f64 / 10_000.0;
        if straggle {
            plan.stragglers.push(StragglerEpisode {
                worker: 1,
                start: SimTime::from_millis(100),
                duration: SimDuration::from_secs(2),
                slowdown: 2.5,
            });
        }
        if crash {
            plan.crashes.push(WorkerCrash {
                worker: 2,
                at: SimTime::from_millis(300),
                rejoin_after: Some(SimDuration::from_millis(200)),
            });
        }
        let mut cfg = ClusterConfig::new(
            ModelSpec::resnet50(),
            SyncStrategy::p3(),
            4,
            Bandwidth::from_gbps(10.0),
        )
        .with_iters(1, 2)
        .with_seed(seed)
        .with_faults(plan);
        cfg.liveness_timeout = SimDuration::from_secs(30);
        cfg.retry = RetryPolicy::new(SimDuration::from_millis(20), 2.0, 16);
        ClusterSim::new(cfg).run()
    }

    proptest! {
        /// Same seed + same fault plan ⇒ bit-identical results. The entire
        /// fault subsystem is replayable.
        #[test]
        fn same_seed_same_plan_is_deterministic(
            seed in 0u64..1_000,
            loss_sel in 0u32..3,
            straggle_sel in 0u32..2,
            crash_sel in 0u32..2,
        ) {
            let loss_bp = [0u32, 100, 500][loss_sel as usize];
            let (straggle, crash) = (straggle_sel == 1, crash_sel == 1);
            let a = run_with(seed, loss_bp, straggle, crash);
            let b = run_with(seed, loss_bp, straggle, crash);
            prop_assert_eq!(a, b);
        }
    }
}
