//! The communication-backend seam: how ready gradients leave a worker and
//! how updated parameters come back.
//!
//! [`CommBackend`] is the contract (DESIGN.md §11). Implementations hook
//! three engine events:
//!
//! 1. **`grads_ready`** — a worker finished one block's backward pass; its
//!    slices' gradients exist and must eventually be aggregated.
//! 2. **`delivered`** — the transport delivered one of the backend's
//!    messages (the sender was already freed and the loss draw survived).
//! 3. **`iteration_started`** — a worker crossed an iteration boundary
//!    (the hook for deferred-pull protocols).
//!
//! The contract: after `grads_ready(w, block, r)` has fired on every live
//! worker, the backend must eventually advance `received_version[k]` past
//! `r` for every key `k` of the block on every live worker and call
//! [`ClusterSim::recheck_waiting`] — that is what un-stalls the next
//! forward pass. Everything else (what travels, where, in what order) is
//! the backend's business. [`PsBackend`] realizes the paper's sharded
//! push→aggregate→pull; [`CollectiveBackend`](super::collective) realizes
//! ring and halving–doubling allreduce on the same engine.
//!
//! Dispatch is static (a `match` on [`BackendKind`]) — two backends do not
//! justify dynamic dispatch inside the hot loop.

use super::collective::CollectiveBackend;
use super::types::{MsgCtx, MsgKind, Role};
use super::ClusterSim;
use crate::config::BackendKind;
use crate::egress::OutMsg;
use p3_core::PullTiming;
use p3_net::{MachineId, Priority};
use p3_trace::{MsgClass, TraceEvent};

/// One gradient-aggregation mechanism hosted on the engine. Methods are
/// associated functions over the whole sim (not `&self`) because a backend
/// is pure protocol: all state lives in [`ClusterSim`].
pub(crate) trait CommBackend {
    /// One block's gradients became ready on one worker at the end of its
    /// backward pass.
    fn grads_ready(sim: &mut ClusterSim, worker: usize, block: usize, round: u64);

    /// One of this backend's messages was delivered by the transport.
    fn delivered(sim: &mut ClusterSim, ctx: MsgCtx);

    /// A worker crossed an iteration boundary (deferred-pull hook).
    fn iteration_started(sim: &mut ClusterSim, worker: usize);

    /// A worker process crashed. Called at the end of the membership
    /// layer's crash handling (the worker's own egress and in-network
    /// flows are already gone); the backend reforms whatever group state
    /// referenced the dead rank.
    fn worker_crashed(sim: &mut ClusterSim, worker: usize);

    /// A crashed worker restarted. The backend re-syncs the rejoiner's
    /// parameter state (a PS worker re-pulls every key; a collective
    /// worker adopts the completed versions and joins future barriers).
    fn worker_rejoined(sim: &mut ClusterSim, worker: usize);
}

/// The paper's protocol: sharded parameter server with push → aggregate →
/// pull under the configured [`SyncStrategy`](p3_core::SyncStrategy).
pub(crate) struct PsBackend;

impl CommBackend for PsBackend {
    fn grads_ready(sim: &mut ClusterSim, worker: usize, block: usize, round: u64) {
        let keys: Vec<usize> = sim.keys_of_block[block].clone();
        for k in keys {
            let slice = sim.plan.slice(p3_pserver::Key(k as u64));
            let server = slice.server.0;
            let bytes = sim.push_wire(slice.params);
            let priority = Priority(sim.prio[k]);
            sim.trace(TraceEvent::GradReady {
                worker,
                key: k,
                round,
                priority: priority.0,
            });
            let (dst, kind, class) = match sim.rack_push_target(worker, server) {
                Some(agg) => (agg, MsgKind::RackPush { key: k, round }, MsgClass::RackPush),
                None => (server, MsgKind::Push { key: k, round }, MsgClass::Push),
            };
            let msg = OutMsg {
                dst: MachineId(dst),
                bytes,
                priority,
                msg_id: sim.register_msg(kind, worker, dst, bytes, priority),
            };
            sim.enqueue_traced(worker, Role::Worker, msg, class, k, round);
        }
        sim.kick_egress(worker, Role::Worker);
    }

    fn delivered(sim: &mut ClusterSim, ctx: MsgCtx) {
        match ctx.kind {
            MsgKind::Push { key, round } => {
                sim.stats.pushes += 1;
                sim.enqueue_proc(ctx.dst, key, round, ctx.src, 1u128 << ctx.src);
            }
            MsgKind::RackPush { key, round } => {
                sim.stats.rack_pushes += 1;
                sim.on_rack_push(ctx.dst, key, round, ctx.src);
            }
            MsgKind::CombinedPush {
                key,
                round,
                members,
            } => {
                sim.stats.combined_pushes += 1;
                sim.enqueue_proc(ctx.dst, key, round, ctx.src, members);
            }
            MsgKind::PullReq { key, round } => {
                sim.stats.pull_requests += 1;
                let server = ctx.dst;
                if sim.servers[server].version[key] >= round {
                    sim.send_response(server, key, ctx.src);
                    sim.kick_egress(server, Role::Server);
                } else {
                    sim.servers[server].pending_pulls[key].push(ctx.src);
                }
            }
            MsgKind::Response { key, version } => {
                sim.stats.responses += 1;
                let w = &mut sim.workers[ctx.dst];
                if version > w.received_version[key] {
                    w.received_version[key] = version;
                }
                sim.recheck_waiting(ctx.dst);
            }
            MsgKind::Notify { key, version } => {
                sim.stats.notifies += 1;
                sim.on_notify(ctx.dst, key, version);
            }
            MsgKind::ReduceScatter { .. } | MsgKind::AllGather { .. } => {
                unreachable!("collective chunk delivered under the PS backend")
            }
        }
    }

    fn iteration_started(sim: &mut ClusterSim, worker: usize) {
        // TensorFlow-style: the next graph execution issues recv ops for
        // every parameter now.
        if sim.cfg.strategy.pull_timing == PullTiming::NextIterationStart {
            let round = sim.workers[worker].iter;
            for k in 0..sim.plan.num_keys() {
                if sim.workers[worker].received_version[k] < round {
                    sim.send_pull_request(worker, k, round);
                }
            }
            sim.kick_egress(worker, Role::Worker);
        }
    }

    fn worker_crashed(_sim: &mut ClusterSim, _worker: usize) {
        // Nothing beyond the membership layer's generic teardown: servers
        // keep aggregating, rounds complete degraded via the liveness
        // timeout.
    }

    fn worker_rejoined(sim: &mut ClusterSim, worker: usize) {
        // Re-sync: the restarted process pulls the current state of every
        // key (servers answer immediately with their latest version, or
        // defer until the resumed round completes).
        let resume = sim.workers[worker].resume_iter;
        for k in 0..sim.plan.num_keys() {
            sim.send_pull_request(worker, k, resume);
        }
    }
}

impl ClusterSim {
    pub(crate) fn backend_grads_ready(&mut self, worker: usize, block: usize, round: u64) {
        match self.cfg.backend {
            BackendKind::Ps => PsBackend::grads_ready(self, worker, block, round),
            BackendKind::Ring | BackendKind::HalvingDoubling => {
                CollectiveBackend::grads_ready(self, worker, block, round)
            }
        }
    }

    pub(crate) fn backend_delivered(&mut self, ctx: MsgCtx) {
        match self.cfg.backend {
            BackendKind::Ps => PsBackend::delivered(self, ctx),
            BackendKind::Ring | BackendKind::HalvingDoubling => {
                CollectiveBackend::delivered(self, ctx)
            }
        }
    }

    pub(crate) fn backend_iteration_started(&mut self, worker: usize) {
        match self.cfg.backend {
            BackendKind::Ps => PsBackend::iteration_started(self, worker),
            BackendKind::Ring | BackendKind::HalvingDoubling => {
                CollectiveBackend::iteration_started(self, worker)
            }
        }
    }

    pub(crate) fn backend_worker_crashed(&mut self, worker: usize) {
        match self.cfg.backend {
            BackendKind::Ps => PsBackend::worker_crashed(self, worker),
            BackendKind::Ring | BackendKind::HalvingDoubling => {
                CollectiveBackend::worker_crashed(self, worker)
            }
        }
    }

    pub(crate) fn backend_worker_rejoined(&mut self, worker: usize) {
        match self.cfg.backend {
            BackendKind::Ps => PsBackend::worker_rejoined(self, worker),
            BackendKind::Ring | BackendKind::HalvingDoubling => {
                CollectiveBackend::worker_rejoined(self, worker)
            }
        }
    }
}
