//! Transport layer: the engine's adapter onto the fluid [`Network`].
//! Owns message registration, egress admission (single-consumer gates and
//! per-destination lanes), flow start and delivery, loss draws, retry
//! timers, and trace recording of the enqueue→wire lifecycle.
//!
//! Delivery is protocol-agnostic: once the sender is freed and the loss
//! draw survives, the payload is handed to the configured
//! [`CommBackend`](super::backend::CommBackend) for protocol handling.
//!
//! [`Network`]: p3_net::Network

use super::types::{class_of, role_slot, sender_role_of, Ev, MsgCtx, MsgKind, Role};
use super::ClusterSim;
use crate::egress::{EgressUnit, OutMsg};
use p3_des::SimTime;
use p3_net::{MachineId, Priority};
use p3_pserver::{wire_bytes, RetryDecision, HEADER_BYTES};
use p3_trace::{EndpointRole, FaultKind, MsgClass, TraceEvent};

impl ClusterSim {
    // ------------------------------------------------------------------
    // Tracing.

    /// Records one event at the current simulated time. With tracing off
    /// this is a single branch; recording draws no randomness and
    /// schedules nothing, preserving determinism either way.
    #[inline]
    pub(crate) fn trace(&self, event: TraceEvent) {
        if let Some(t) = &self.tracer {
            t.record(self.queue.now(), event);
        }
    }

    /// Records one fault event.
    pub(crate) fn trace_fault(&self, kind: FaultKind, machine: usize, msg_id: Option<u64>) {
        self.trace(TraceEvent::Fault {
            kind,
            machine,
            msg_id,
        });
    }

    /// Enqueues `msg` on an endpoint's egress, recording the enqueue (with
    /// the post-enqueue queue depth and priority) when tracing.
    pub(crate) fn enqueue_traced(
        &mut self,
        machine: usize,
        role: Role,
        msg: OutMsg,
        class: MsgClass,
        key: usize,
        round: u64,
    ) {
        match role {
            Role::Worker => self.workers[machine].egress.enqueue(msg),
            Role::Server => self.servers[machine].egress.enqueue(msg),
        }
        if self.tracer.is_some() {
            let queue_depth = match role {
                Role::Worker => self.workers[machine].egress.backlog(),
                Role::Server => self.servers[machine].egress.backlog(),
            };
            let erole = match role {
                Role::Worker => EndpointRole::Worker,
                Role::Server => EndpointRole::Server,
            };
            self.trace(TraceEvent::EgressEnqueue {
                machine,
                role: erole,
                msg_id: msg.msg_id,
                class,
                key,
                round,
                priority: msg.priority.0,
                queue_depth,
            });
        }
    }

    // ------------------------------------------------------------------
    // Wire sizes and message registration.

    /// Wire size of a gradient push for `params` parameters, after any
    /// configured compression.
    pub(crate) fn push_wire(&self, params: u64) -> u64 {
        match self.cfg.wire_compression {
            Some(c) => HEADER_BYTES as u64 + ((4 * params) as f64 / c.push_ratio).ceil() as u64,
            None => wire_bytes(params),
        }
    }

    /// Wire size of a parameter response, after any configured compression.
    pub(crate) fn response_wire(&self, params: u64) -> u64 {
        match self.cfg.wire_compression {
            Some(c) => HEADER_BYTES as u64 + ((4 * params) as f64 / c.response_ratio).ceil() as u64,
            None => wire_bytes(params),
        }
    }

    pub(crate) fn register_msg(
        &mut self,
        kind: MsgKind,
        src: usize,
        dst: usize,
        bytes: u64,
        priority: Priority,
    ) -> u64 {
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        self.msgs.insert(
            id,
            MsgCtx {
                kind,
                src,
                dst,
                bytes,
                priority,
                attempt: 0,
                in_flight: false,
            },
        );
        id
    }

    /// Arms the retry timer for a just-admitted message. Only called when
    /// the fault plan can lose messages; fault-free runs never schedule
    /// retry events.
    fn note_admitted(&mut self, msg_id: u64, now: SimTime) {
        if !self.cfg.faults.needs_reliability() {
            return;
        }
        let Some(ctx) = self.msgs.get_mut(&msg_id) else {
            return;
        };
        ctx.in_flight = true;
        let attempt = ctx.attempt;
        let timeout = self.cfg.retry.timeout_for(attempt);
        self.queue
            .schedule_at(now + timeout, Ev::RetryTimer { msg_id, attempt });
    }

    // ------------------------------------------------------------------
    // Egress admission.

    /// Starts any transmissions an endpoint's scheduler allows.
    ///
    /// Per-destination (baseline) lanes transmit whenever idle — each
    /// connection has its own sender thread in MXNet. A single-consumer
    /// (P3) endpoint serializes per-message work on one thread: it admits
    /// at most one message per `msg_overhead`, modelling the consumer's
    /// serialization/syscall cost — the source of Figure 12's small-slice
    /// falloff.
    pub(crate) fn kick_egress(&mut self, machine: usize, role: Role) {
        if role == Role::Worker && self.workers[machine].crashed {
            return; // a dead process transmits nothing
        }
        let now = self.queue.now();
        let single = {
            let unit = match role {
                Role::Worker => &self.workers[machine].egress,
                Role::Server => &self.servers[machine].egress,
            };
            matches!(unit, EgressUnit::Single { .. })
        };
        if single {
            let slot = role_slot(role);
            let gate = self.admit_gate[machine][slot];
            if now < gate {
                self.schedule_admit_kick(machine, role, gate);
            } else {
                let admitted = match role {
                    Role::Worker => self.workers[machine].egress.start_one(),
                    Role::Server => self.servers[machine].egress.start_one(),
                };
                if let Some(m) = admitted {
                    let span = self.prof_begin();
                    let flow = self.net.start_flow(
                        now,
                        MachineId(machine),
                        m.dst,
                        m.bytes,
                        m.priority,
                        m.msg_id,
                    );
                    self.prof_end("net/start_flow", span);
                    self.flows.insert(flow, m.msg_id);
                    self.note_admitted(m.msg_id, now);
                    let next = now + self.cfg.msg_overhead;
                    self.admit_gate[machine][slot] = next;
                    let backlog = match role {
                        Role::Worker => self.workers[machine].egress.backlog(),
                        Role::Server => self.servers[machine].egress.backlog(),
                    };
                    if backlog > 0 {
                        self.schedule_admit_kick(machine, role, next);
                    }
                }
            }
        } else {
            let ready = match role {
                Role::Worker => self.workers[machine].egress.start_ready(),
                Role::Server => self.servers[machine].egress.start_ready(),
            };
            for m in ready {
                let span = self.prof_begin();
                let flow = self.net.start_flow(
                    now,
                    MachineId(machine),
                    m.dst,
                    m.bytes,
                    m.priority,
                    m.msg_id,
                );
                self.prof_end("net/start_flow", span);
                self.flows.insert(flow, m.msg_id);
                self.note_admitted(m.msg_id, now);
            }
        }
        self.schedule_net_wake();
    }

    fn schedule_admit_kick(&mut self, machine: usize, role: Role, at: SimTime) {
        let slot = role_slot(role);
        if self.admit_kick_at[machine][slot].is_none_or(|t| at < t) {
            self.queue.schedule_at(at, Ev::AdmitKick { machine, role });
            self.admit_kick_at[machine][slot] = Some(at);
        }
    }

    pub(crate) fn schedule_net_wake(&mut self) {
        if let Some(t) = self.net.next_event_time() {
            if self.next_wake.is_none_or(|w| t < w) {
                self.queue.schedule_at(t, Ev::NetWake);
                self.next_wake = Some(t);
            }
        }
    }

    // ------------------------------------------------------------------
    // Delivery.

    pub(crate) fn on_delivered(&mut self, msg_id: u64) {
        let ctx = *self
            .msgs
            .get(&msg_id)
            .expect("delivery for unknown message");
        let now = self.queue.now();

        // Free the sender: its NIC finished transmitting whether or not the
        // message survives the network or finds its receiver alive.
        // Single-consumer units release their window slot immediately
        // (their per-message cost was charged at admission);
        // per-destination lanes pay the endpoint overhead before reuse.
        let sender_role = sender_role_of(ctx.kind);
        let sender_single = {
            let unit = match sender_role {
                Role::Worker => &self.workers[ctx.src].egress,
                Role::Server => &self.servers[ctx.src].egress,
            };
            matches!(unit, EgressUnit::Single { .. })
        };
        if sender_single {
            match sender_role {
                Role::Worker => self.workers[ctx.src].egress.complete(MachineId(ctx.dst)),
                Role::Server => self.servers[ctx.src].egress.complete(MachineId(ctx.dst)),
            }
            self.kick_egress(ctx.src, sender_role);
        } else {
            let inc = match sender_role {
                Role::Worker => self.workers[ctx.src].incarnation,
                Role::Server => 0,
            };
            self.queue.schedule_at(
                now + self.cfg.msg_overhead,
                Ev::EgressReady {
                    machine: ctx.src,
                    role: sender_role,
                    dst: MachineId(ctx.dst),
                    inc,
                },
            );
        }

        // Lossy network: the message died in the fabric. Keep its context
        // (marked not-in-flight) so the retry timer retransmits it.
        // Loopback traffic never touches the fabric and cannot be lost.
        if self.cfg.faults.loss_probability > 0.0
            && ctx.src != ctx.dst
            && self.loss_rng.next_f64() < self.cfg.faults.loss_probability
        {
            self.faults.messages_lost += 1;
            self.trace_fault(FaultKind::Loss, ctx.src, Some(msg_id));
            self.msgs
                .get_mut(&msg_id)
                .expect("lost message context vanished")
                .in_flight = false;
            return;
        }
        self.msgs.remove(&msg_id);

        // Deliveries to a crashed worker vanish at the dead endpoint. (The
        // colocated server shard stays alive, so server-bound messages
        // always land.)
        let worker_bound = matches!(
            ctx.kind,
            MsgKind::Response { .. }
                | MsgKind::Notify { .. }
                | MsgKind::ReduceScatter { .. }
                | MsgKind::AllGather { .. }
        );
        if worker_bound && self.workers[ctx.dst].crashed {
            return;
        }

        let span = self.prof_begin();
        self.backend_delivered(ctx);
        self.prof_end("backend/delivered", span);
    }

    // ------------------------------------------------------------------
    // Retransmission.

    pub(crate) fn on_retry_timer(&mut self, msg_id: u64, attempt: u32) {
        let now = self.queue.now();
        let Some(ctx) = self.msgs.get(&msg_id) else {
            return; // delivered or discarded in the meantime
        };
        if ctx.attempt != attempt {
            return; // an older attempt's timer; a newer one is armed
        }
        if ctx.in_flight {
            // Still transiting a slow network: spurious timeout, wait more.
            let timeout = self.cfg.retry.timeout_for(attempt);
            self.queue
                .schedule_at(now + timeout, Ev::RetryTimer { msg_id, attempt });
            return;
        }
        // The message was lost. The policy decides: retransmit, or abandon
        // it once the retry budget is spent. Either way the decision is
        // mirrored into the trace so aggregate fault counters can be
        // cross-checked against per-event counts.
        let sender = ctx.src;
        let decision = self.cfg.retry.decide(attempt);
        if let Some(t) = &self.tracer {
            decision.record(&mut t.clone(), now, sender, msg_id);
        }
        match decision {
            RetryDecision::GiveUp => {
                self.msgs.remove(&msg_id);
                self.faults.gave_up += 1;
            }
            RetryDecision::Retransmit { .. } => {
                let (src, dst, bytes, priority, kind) = {
                    let ctx = self.msgs.get_mut(&msg_id).expect("retry context vanished");
                    ctx.attempt += 1;
                    (ctx.src, ctx.dst, ctx.bytes, ctx.priority, ctx.kind)
                };
                self.faults.retransmits += 1;
                let role = sender_role_of(kind);
                let (class, key, round) = class_of(kind);
                // Re-entering the egress queue at the original priority
                // keeps the single consumer's strict priority order intact.
                let msg = OutMsg {
                    dst: MachineId(dst),
                    bytes,
                    priority,
                    msg_id,
                };
                self.enqueue_traced(src, role, msg, class, key, round);
                self.kick_egress(src, role);
            }
        }
    }
}
