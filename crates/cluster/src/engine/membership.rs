//! Membership layer: worker-process crashes, restarts, and liveness-based
//! eviction. A crash destroys the process's queued and in-flight messages
//! and rolls its restart point back; an eviction shrinks the aggregation
//! membership so rounds complete degraded with the survivors.

use super::types::{role_slot, worker_originated, Ev, MsgKind, Role};
use super::ClusterSim;
use crate::egress::EgressUnit;
use p3_core::Egress;
use p3_des::SimTime;
use p3_net::FlowId;
use p3_trace::{FaultKind, TraceEvent};

impl ClusterSim {
    fn fresh_worker_egress(&self) -> EgressUnit {
        if self.cfg.backend.is_collective() {
            return EgressUnit::single(self.cfg.machines);
        }
        match self.cfg.strategy.egress {
            Egress::SingleConsumer => EgressUnit::single(self.cfg.machines),
            Egress::PerServerFifo => EgressUnit::per_dest(self.cfg.machines),
        }
    }

    pub(crate) fn on_crash(&mut self, idx: usize) {
        let c = self.cfg.faults.crashes[idx];
        let now = self.queue.now();
        let w = c.worker;

        // Cancel the dead process's in-network transmissions and reclaim
        // their bandwidth.
        let doomed: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|&(_, mid)| {
                let ctx = &self.msgs[mid];
                ctx.src == w && worker_originated(ctx.kind)
            })
            .map(|(&f, _)| f)
            .collect();
        self.trace_fault(FaultKind::Crash, w, None);
        for flow in doomed {
            let cancelled = self.net.cancel_flow(now, flow);
            debug_assert!(cancelled, "registered flow unknown to the network");
            let mid = self.flows.remove(&flow);
            self.faults.flows_cancelled += 1;
            self.trace_fault(FaultKind::FlowCancelled, w, mid);
        }

        // Discard every worker-originated message (queued or formerly in
        // flight) and roll the restart point back to the oldest round whose
        // push was destroyed — on rejoin that iteration is redone, and
        // servers deduplicate the replayed keys they already counted.
        let mut resume = self.workers[w].iter;
        self.msgs.retain(|_, ctx| {
            if ctx.src == w && worker_originated(ctx.kind) {
                if let MsgKind::Push { round, .. } = ctx.kind {
                    resume = resume.min(round);
                }
                false
            } else {
                true
            }
        });

        let fresh = self.fresh_worker_egress();
        let stall_ended = {
            let ws = &mut self.workers[w];
            ws.crashed = true;
            ws.incarnation += 1;
            ws.resume_iter = resume;
            let blk = ws.waiting_block.take();
            let stalled = ws.stalled_since.take().map(|since| {
                ws.stalled_total += now - since;
            });
            ws.egress = fresh;
            stalled.and(blk)
        };
        if let Some(b) = stall_ended {
            self.trace(TraceEvent::StallEnd {
                worker: w,
                block: b,
            });
        }
        self.admit_gate[w][role_slot(Role::Worker)] = SimTime::ZERO;
        self.admit_kick_at[w][role_slot(Role::Worker)] = None;

        match c.rejoin_after {
            None => self.workers[w].permanently_dead = true,
            Some(after) => self
                .queue
                .schedule_at(now + after, Ev::Rejoin { worker: w }),
        }
        self.queue.schedule_at(
            now + self.cfg.liveness_timeout,
            Ev::LivenessTimeout { worker: w },
        );
        self.schedule_net_wake();
        // The worker's own messages are gone; let the backend reform any
        // group state (a collective aborts and relaunches over survivors).
        self.backend_worker_crashed(w);
    }

    pub(crate) fn on_rejoin(&mut self, worker: usize) {
        let now = self.queue.now();
        self.trace_fault(FaultKind::Rejoin, worker, None);
        if self.dead_members[worker] {
            // Re-admit to the membership; rounds require its pushes again.
            self.dead_members[worker] = false;
            self.expected_pushes += 1;
        }
        let w = &mut self.workers[worker];
        let resume = w.resume_iter;
        w.crashed = false;
        w.iter = resume;
        w.completed = resume;
        w.waiting_block = None;
        w.stalled_since = None;
        w.iter_started = now;
        if !w.started {
            w.started = true;
            if self.cfg.warmup_iters == 0 && w.measure_start.is_none() {
                w.measure_start = Some(now);
            }
        }
        self.resample_jitter(worker);
        self.backend_worker_rejoined(worker);
        self.kick_egress(worker, Role::Worker);
        self.try_start_fwd(worker, 0);
    }

    pub(crate) fn on_liveness_timeout(&mut self, worker: usize) {
        if !self.workers[worker].crashed || self.dead_members[worker] {
            return; // rejoined in time, or already evicted
        }
        self.dead_members[worker] = true;
        self.expected_pushes -= 1;
        self.trace_fault(FaultKind::Eviction, worker, None);
        // Graceful degradation: complete every round now satisfiable by the
        // survivors alone. (The server averages over the gradients it has —
        // the effective batch shrinks, convergence is unaffected in
        // expectation.)
        for s in 0..self.servers.len() {
            let keys: Vec<usize> = (0..self.plan.num_keys())
                .filter(|&k| {
                    let mask = self.servers[s].received[k];
                    mask != 0 && mask.count_ones() >= self.expected_pushes
                })
                .collect();
            let any = !keys.is_empty();
            for k in keys {
                self.complete_round(s, k);
            }
            if any {
                self.kick_egress(s, Role::Server);
            }
        }
    }
}
