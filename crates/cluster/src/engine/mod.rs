//! The layered event-driven cluster engine: workers computing
//! forward/backward passes, a pluggable communication backend moving
//! gradients and parameters, all traffic flowing through the fluid network.
//!
//! The engine is split into composable layers (DESIGN.md §11):
//!
//! - [`worker`] — the compute engine: forward/backward scheduling, stall
//!   accounting, iteration bookkeeping, jitter.
//! - [`transport`] — the network adapter: egress admission, flow
//!   start/delivery, loss draws, retry timers, trace recording.
//! - [`server`] — the parameter-server engine: shard processing queues,
//!   aggregation, round completion, response fan-out, rack aggregation.
//! - [`membership`] — crash/rejoin/eviction handling.
//! - [`backend`] — the [`CommBackend`](backend::CommBackend) seam: how
//!   ready gradients travel and how parameters come back. The PS backend
//!   implements the paper's push→aggregate→pull; the collective backend
//!   ([`collective`]) re-hosts `p3-allreduce`'s ring and halving–doubling
//!   schedules on the same engine.
//!
//! An optional [`FaultPlan`](crate::FaultPlan) injects stragglers, degraded
//! links, message loss, and worker crashes. Loss and crashes arm a
//! timeout/retransmit layer ([`RetryPolicy`](p3_pserver::RetryPolicy)); a
//! worker silent past the liveness timeout is dropped from the membership
//! and rounds complete with the survivors' gradients (graceful
//! degradation). The empty plan schedules no fault events and draws no
//! extra randomness, so fault-free results stay bit-identical.

mod backend;
mod collective;
mod membership;
mod results;
mod server;
mod sink;
mod snapshot;
mod transport;
mod types;
mod worker;

#[cfg(test)]
mod fault_tests;
#[cfg(test)]
mod tests;

use crate::config::{BackendKind, ClusterConfig, FaultStats, MessageStats, RunError, RunResult};
use crate::egress::EgressUnit;
use crate::snap::SnapshotError;
use collective::CollectiveState;
use p3_allreduce::{CollectiveSchedule, ScheduleKind};
use p3_core::{Egress, PrioQueue};
use p3_des::{EventQueue, SimDuration, SimTime, SplitMix64};
use p3_models::BlockTiming;
use p3_net::{FlowId, MachineId, Network, NetworkConfig};
use p3_prof::{SimProfiler, SpanToken};
use p3_pserver::ShardPlan;
use p3_topo::Placement;
use p3_trace::{TraceHandle, TraceLog};
use sink::{NoSnapshots, SnapshotOnce, SnapshotSink, SnapshotTaker};
use std::collections::BTreeMap;
use types::{
    role_slot, trace_phase, Ev, MsgCtx, Phase, Role, ServerState, WorkerState, EVENT_CAP,
    MAX_MACHINES,
};

/// What [`ClusterSim::try_run_traced_snapshot_at`] produces: the run's
/// result, its trace log (when slice tracing was enabled), and the
/// one-shot warmup-boundary snapshot (when the boundary was reached).
pub type SnapshottedRun = (RunResult, Option<TraceLog>, Option<Vec<u8>>);

/// One fully configured simulation, ready to [`ClusterSim::run`].
///
/// # Examples
///
/// ```
/// use p3_cluster::{ClusterConfig, ClusterSim};
/// use p3_core::SyncStrategy;
/// use p3_models::ModelSpec;
/// use p3_net::Bandwidth;
///
/// let cfg = ClusterConfig::new(
///     ModelSpec::resnet50(),
///     SyncStrategy::p3(),
///     4,
///     Bandwidth::from_gbps(10.0),
/// ).with_iters(1, 2);
/// let result = ClusterSim::new(cfg).run();
/// assert!(result.throughput > 0.0);
/// ```
#[derive(Debug)]
pub struct ClusterSim {
    cfg: ClusterConfig,
    queue: EventQueue<Ev>,
    net: Network,
    workers: Vec<WorkerState>,
    servers: Vec<ServerState>,
    plan: ShardPlan,
    prio: Vec<u32>,
    /// Forward/backward durations per compute block for a full batch.
    block_times: Vec<BlockTiming>,
    /// Key indices per compute block, in block order.
    keys_of_block: Vec<Vec<usize>>,
    msgs: BTreeMap<u64, MsgCtx>,
    flows: BTreeMap<FlowId, u64>,
    next_msg_id: u64,
    next_wake: Option<SimTime>,
    /// Per-(machine, role) earliest next admission instant for
    /// single-consumer egress (serial per-message serialization cost).
    admit_gate: Vec<[SimTime; 2]>,
    /// Deduplication of scheduled AdmitKick events.
    admit_kick_at: Vec<[Option<SimTime>; 2]>,
    events: u64,
    stats: MessageStats,
    /// Dedicated RNG stream for message-loss draws, independent of the
    /// placement/jitter streams so enabling loss perturbs nothing else.
    loss_rng: SplitMix64,
    /// Workers evicted from the aggregation membership after a liveness
    /// timeout; servers neither expect their pushes nor send to them.
    dead_members: Vec<bool>,
    /// Pushes required to complete a round (live membership size).
    expected_pushes: u32,
    faults: FaultStats,
    /// Slice-lifecycle event recorder, present only when
    /// [`ClusterConfig::slice_trace`] is set. Recording draws no
    /// randomness and schedules nothing, so results are bit-identical with
    /// it on or off.
    tracer: Option<TraceHandle>,
    /// Partial-sum state of rack-local aggregation: (aggregator machine,
    /// key, round) → mask of rack members whose gradient has arrived.
    rack_agg: BTreeMap<(usize, usize, u64), u128>,
    /// Collective-backend state (ring / halving–doubling schedules and the
    /// one-at-a-time active collective); `None` under the PS backend.
    collective: Option<CollectiveState>,
    /// Rolling FNV-1a hash folded over every processed `(time, event)`
    /// pair — the per-event digest that localizes a divergence between two
    /// runs to the exact event (see [`p3_trace::TraceEvent::StateHash`]).
    hash: u64,
    /// A configuration contradiction detected during construction,
    /// surfaced as [`RunError::InvalidConfig`] when the run starts
    /// (construction itself is infallible).
    config_error: Option<String>,
    /// Engine self-profiler, present only with
    /// [`ClusterSim::with_profiling`]. Never snapshotted and never read by
    /// simulation logic: it only accumulates wall-clock spans and copies of
    /// already-deterministic counters, so a profiled run's event stream is
    /// bit-identical to an unprofiled one (pinned by test).
    prof: Option<SimProfiler>,
}

impl ClusterSim {
    /// Builds the simulation state for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero machines, zero
    /// batch).
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(cfg.machines > 0, "at least one machine required");
        assert!(cfg.batch_per_worker > 0, "zero batch");
        let mut config_error = None;
        let mut plan = cfg.strategy.plan(&cfg.model, cfg.machines, cfg.seed);
        let active_topo = match &cfg.topology {
            Some(t) if t.machines() != cfg.machines => {
                config_error = Some(format!(
                    "topology covers {} machines but the cluster has {}",
                    t.machines(),
                    cfg.machines
                ));
                None
            }
            other => other.as_ref(),
        };
        if let Some(topo) = active_topo {
            plan.map_servers(|s| cfg.placement.place_server(s, topo));
        }
        let prio = cfg.strategy.priorities(&plan);
        let block_times = cfg.compute.block_times(&cfg.model, cfg.batch_per_worker);

        // Map arrays to compute blocks, then keys to blocks.
        let mut block_of_array = Vec::new();
        for (b, blk) in cfg.model.blocks().iter().enumerate() {
            for _ in &blk.arrays {
                block_of_array.push(b);
            }
        }
        let mut keys_of_block: Vec<Vec<usize>> = vec![Vec::new(); cfg.model.blocks().len()];
        for (k, s) in plan.slices().iter().enumerate() {
            keys_of_block[block_of_array[s.array]].push(k);
        }

        let net_cfg = {
            let mut c = NetworkConfig::new(cfg.machines, cfg.bandwidth)
                .with_latency(cfg.latency)
                .with_efficiency(cfg.net_efficiency)
                .with_flow_cap(cfg.flow_cap);
            if let Some(bin) = cfg.trace_bin {
                c = c.with_trace(bin);
            }
            if let Some(topo) = active_topo {
                c = c.with_link_graph(topo.compile(cfg.bandwidth));
            }
            c
        };

        // Collective backends step every worker through strictly ordered
        // chunk sends, so their egress is always single-lane whatever the
        // strategy says; the PS backend follows the strategy.
        let num_keys = plan.num_keys();
        let mk_worker_egress = || {
            if cfg.backend.is_collective() {
                return EgressUnit::single(cfg.machines);
            }
            match cfg.strategy.egress {
                Egress::SingleConsumer => EgressUnit::single(cfg.machines),
                Egress::PerServerFifo => EgressUnit::per_dest(cfg.machines),
            }
        };
        let collective = match cfg.backend {
            BackendKind::Ps => None,
            BackendKind::Ring | BackendKind::HalvingDoubling => {
                let kind = if cfg.backend == BackendKind::Ring {
                    ScheduleKind::Ring
                } else {
                    ScheduleKind::HalvingDoubling
                };
                match CollectiveSchedule::new(kind, cfg.machines) {
                    Ok(schedule) => Some(CollectiveState::new(
                        schedule,
                        cfg.model.blocks().len(),
                        num_keys,
                    )),
                    Err(why) => {
                        config_error.get_or_insert(why);
                        None
                    }
                }
            }
        };
        let mut rng = SplitMix64::new(cfg.seed ^ 0xC0FF_EE00);
        let workers = (0..cfg.machines)
            .map(|_| WorkerState {
                iter: 0,
                completed: 0,
                received_version: vec![0; num_keys],
                notified_version: vec![0; num_keys],
                waiting_block: None,
                stalled_since: None,
                stalled_total: SimDuration::ZERO,
                started: false,
                measure_start: None,
                measure_end: None,
                jitter: 1.0,
                slowdown: 1.0,
                crashed: false,
                permanently_dead: false,
                incarnation: 0,
                resume_iter: 0,
                iter_started: SimTime::ZERO,
                measured_iters: Vec::new(),
                egress: mk_worker_egress(),
                rng: rng.fork(),
            })
            .collect();
        let servers = (0..cfg.machines)
            .map(|_| ServerState {
                proc_queue: PrioQueue::new(),
                proc_busy: false,
                received: vec![0; num_keys],
                version: vec![0; num_keys],
                pending_pulls: vec![Vec::new(); num_keys],
                current: None,
                egress: mk_worker_egress(),
            })
            .collect();

        let tracer = cfg.slice_trace.then(TraceHandle::default);
        let mut net = Network::new(net_cfg);
        if let Some(t) = &tracer {
            net.set_tracer(t.clone());
        }

        ClusterSim {
            queue: EventQueue::new(),
            net,
            workers,
            servers,
            plan,
            prio,
            block_times,
            keys_of_block,
            msgs: BTreeMap::new(),
            flows: BTreeMap::new(),
            next_msg_id: 0,
            next_wake: None,
            admit_gate: vec![[SimTime::ZERO; 2]; cfg.machines],
            admit_kick_at: vec![[None; 2]; cfg.machines],
            events: 0,
            stats: MessageStats::default(),
            loss_rng: SplitMix64::new(cfg.seed ^ 0x10_55_10_55),
            dead_members: vec![false; cfg.machines],
            expected_pushes: cfg.machines as u32,
            faults: FaultStats::default(),
            tracer,
            rack_agg: BTreeMap::new(),
            collective,
            hash: 0,
            config_error,
            prof: None,
            cfg,
        }
    }

    /// Enables engine self-profiling: scoped wall-clock timers around the
    /// hot paths (per-event-type dispatch, network polling, flow starts,
    /// backend delivery, snapshot capture) plus the network's deterministic
    /// work counters, frozen into [`RunResult::profile`] when the run
    /// finishes.
    ///
    /// Profiling is observation-only — it draws no randomness, schedules
    /// nothing, and feeds no wall-clock value back into simulation state —
    /// so results stay bit-identical with it on or off.
    #[must_use]
    pub fn with_profiling(mut self) -> Self {
        self.prof = Some(SimProfiler::new());
        self
    }

    /// Opens a profiler span, or `None` when profiling is off (one untaken
    /// branch — the unprofiled hot path stays clean).
    #[inline]
    pub(crate) fn prof_begin(&self) -> Option<SpanToken> {
        self.prof.as_ref().map(|p| p.begin())
    }

    /// Closes a span opened by [`ClusterSim::prof_begin`].
    #[inline]
    pub(crate) fn prof_end(&mut self, key: &'static str, span: Option<SpanToken>) {
        if let (Some(p), Some(s)) = (&mut self.prof, span) {
            p.record(key, s);
        }
    }

    /// Runs to completion and reports measured throughput.
    ///
    /// # Panics
    ///
    /// Panics on any [`RunError`]: an invalid fault plan, a deadlocked
    /// simulation, or an exceeded event cap. Sweeps over possibly-bad
    /// configurations should prefer [`ClusterSim::try_run`].
    pub fn run(self) -> RunResult {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs to completion, returning a structured error instead of
    /// panicking when the configuration is invalid or the run wedges.
    pub fn try_run(self) -> Result<RunResult, RunError> {
        self.try_run_traced().map(|(result, _)| result)
    }

    /// Runs to completion, returning the measured result together with the
    /// recorded slice-lifecycle trace (present when
    /// [`ClusterConfig::slice_trace`] is set).
    ///
    /// # Panics
    ///
    /// Panics on any [`RunError`], like [`ClusterSim::run`].
    pub fn run_traced(self) -> (RunResult, Option<TraceLog>) {
        self.try_run_traced().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`ClusterSim::try_run`], additionally returning the recorded
    /// trace when tracing is enabled.
    pub fn try_run_traced(mut self) -> Result<(RunResult, Option<TraceLog>), RunError> {
        self.validate()?;
        self.begin();
        self.run_loop(&mut NoSnapshots)?;
        self.finalize(true)
    }

    /// Like [`ClusterSim::try_run_traced`], additionally invoking `hook`
    /// with `(min_completed_iterations, snapshot_bytes)` every time the
    /// slowest live worker crosses a multiple of `every` completed
    /// iterations. The snapshot restores via [`ClusterSim::restore`] and
    /// resumes via [`ClusterSim::resume_traced`] bit-identically to the
    /// uninterrupted run.
    ///
    /// `every == 0` disables snapshotting (equivalent to
    /// [`ClusterSim::try_run_traced`]).
    pub fn try_run_traced_with_snapshots<F: FnMut(u64, Vec<u8>)>(
        mut self,
        every: u64,
        mut hook: F,
    ) -> Result<(RunResult, Option<TraceLog>), RunError> {
        self.validate()?;
        self.begin();
        if every == 0 {
            self.run_loop(&mut NoSnapshots)?;
        } else {
            let mut taker = SnapshotTaker {
                every,
                next_at: every,
                hook: &mut hook,
            };
            self.run_loop(&mut taker)?;
        }
        self.finalize(true)
    }

    /// Like [`ClusterSim::try_run_traced`], additionally capturing exactly
    /// one snapshot the first time the slowest live worker reaches
    /// `at_iteration` completed iterations. This is the search harness's
    /// warm-start hook: `p3 tune` snapshots each candidate at the warmup
    /// boundary during its screening run, then confirms frontier members
    /// by restoring the snapshot and extending the measurement window
    /// ([`ClusterSim::extend_measurement`]) instead of re-simulating the
    /// warmup prefix.
    ///
    /// `at_iteration == 0` captures nothing (equivalent to
    /// [`ClusterSim::try_run_traced`] with a `None` snapshot).
    pub fn try_run_traced_snapshot_at(
        mut self,
        at_iteration: u64,
    ) -> Result<SnapshottedRun, RunError> {
        self.validate()?;
        self.begin();
        let mut snap = None;
        if at_iteration == 0 {
            self.run_loop(&mut NoSnapshots)?;
        } else {
            let mut once = SnapshotOnce {
                at: at_iteration,
                out: &mut snap,
            };
            self.run_loop(&mut once)?;
        }
        let (result, log) = self.finalize(true)?;
        Ok((result, log, snap))
    }

    /// Reconstructs a mid-run simulation from snapshot bytes produced by
    /// [`ClusterSim::try_run_traced_with_snapshots`]. The configuration
    /// must be the one the snapshot was taken under (checked via a
    /// fingerprint in the header).
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`]: truncated/corrupt bytes, wrong magic or
    /// format version, or a configuration mismatch.
    pub fn restore(cfg: ClusterConfig, bytes: &[u8]) -> Result<ClusterSim, SnapshotError> {
        snapshot::restore(cfg, bytes)
    }

    /// Serializes the complete dynamic engine state (clock, pending
    /// events, network flows, endpoint queues, RNG streams, counters) into
    /// a versioned byte stream. See `snap.rs` for the format.
    pub fn snapshot(&self) -> Vec<u8> {
        snapshot::snapshot(self)
    }

    /// A digest of the complete dynamic engine state (the FNV-1a hash of
    /// [`ClusterSim::snapshot`]'s byte stream). Two runs of the same
    /// configuration have equal state hashes at the same event count; the
    /// first event after which they differ is where they diverged.
    pub fn state_hash(&self) -> u64 {
        crate::snap::fnv64(&self.snapshot())
    }

    /// Rolling per-event hash folded so far (also reported as
    /// [`RunResult::event_hash`] when the run finishes).
    pub fn event_hash(&self) -> u64 {
        self.hash
    }

    /// Continues a run restored by [`ClusterSim::restore`] to completion.
    ///
    /// Unlike [`ClusterSim::try_run_traced`] this neither re-validates the
    /// configuration nor re-schedules worker starts or the fault plan —
    /// all of that already happened in the original run and lives in the
    /// snapshot's event queue. The returned trace covers only the resumed
    /// portion (it is a bit-identical suffix of the uninterrupted run's
    /// trace), so the inline audit is skipped: its invariants span the
    /// whole run and would see unpaired events.
    pub fn resume_traced(mut self) -> Result<(RunResult, Option<TraceLog>), RunError> {
        self.run_loop(&mut NoSnapshots)?;
        self.finalize(false)
    }

    /// Rebases a restored run's measurement window to `measure_iters`
    /// iterations past warmup — the second half of the search harness's
    /// warm-start: a snapshot taken at the warmup boundary under a short
    /// screening measurement can serve a longer confirmation run of the
    /// same candidate, because no event before the snapshot depends on
    /// the measurement target as long as no worker had reached it. That
    /// precondition is what this method verifies: every live worker must
    /// still be strictly below the *new* target with its measurement
    /// window open. Call between [`ClusterSim::restore`] and
    /// [`ClusterSim::resume_traced`].
    ///
    /// # Errors
    ///
    /// [`RunError::InvalidConfig`] when `measure_iters` is zero, or when
    /// some worker already closed its measurement window (snapshot taken
    /// too late) or already completed the rebased target (new window too
    /// short), either of which would make the replayed prefix depend on
    /// the old target.
    pub fn extend_measurement(&mut self, measure_iters: u64) -> Result<(), RunError> {
        if measure_iters == 0 {
            return Err(RunError::InvalidConfig(
                "cannot rebase measurement to zero iterations".into(),
            ));
        }
        let new_target = self.cfg.warmup_iters + measure_iters;
        for (i, w) in self.workers.iter().enumerate() {
            if w.permanently_dead {
                continue;
            }
            if w.measure_end.is_some() || w.completed >= new_target {
                return Err(RunError::InvalidConfig(format!(
                    "cannot rebase measurement to {measure_iters} iterations: worker {i} \
                     already completed {} of them (snapshot taken too late for this window)",
                    w.completed.saturating_sub(self.cfg.warmup_iters)
                )));
            }
        }
        self.cfg.measure_iters = measure_iters;
        Ok(())
    }

    /// Static configuration checks shared by every way of starting a run.
    fn validate(&mut self) -> Result<(), RunError> {
        if self.cfg.machines > MAX_MACHINES {
            return Err(RunError::InvalidConfig(format!(
                "{} machines exceeds the {MAX_MACHINES}-machine membership mask",
                self.cfg.machines
            )));
        }
        if let Some(why) = self.config_error.take() {
            return Err(RunError::InvalidConfig(why));
        }
        self.cfg
            .faults
            .validate(self.cfg.machines)
            .map_err(RunError::InvalidConfig)?;
        if self.cfg.topology.is_some()
            && self.cfg.placement == Placement::RackLocal
            && (self.cfg.faults.loss_probability > 0.0 || !self.cfg.faults.crashes.is_empty())
        {
            return Err(RunError::InvalidConfig(
                "rack-local aggregation does not support message loss or worker crashes".into(),
            ));
        }
        if self.cfg.backend.is_collective() {
            if self.cfg.wire_compression.is_some() {
                return Err(RunError::InvalidConfig(
                    "wire compression is not yet modelled for collective backends".into(),
                ));
            }
            if self.cfg.collective_channels == 0 {
                return Err(RunError::InvalidConfig(
                    "collective backends need at least one channel per transfer".into(),
                ));
            }
        }
        Ok(())
    }

    /// Seeds the event queue: staggered worker starts and the fault plan.
    fn begin(&mut self) {
        // Staggered worker starts model real cluster skew.
        let mut rng = SplitMix64::new(self.cfg.seed ^ 0x051A_66E2);
        for w in 0..self.cfg.machines {
            let off = SimDuration::from_nanos(
                (rng.next_f64() * self.cfg.start_stagger.as_nanos() as f64) as u64,
            );
            self.queue
                .schedule_at(SimTime::ZERO + off, Ev::StartWorker { worker: w });
        }
        self.schedule_fault_plan();
    }

    /// The engine's main loop: pop, hash, dispatch, until every live
    /// worker reached the target iteration count. The rolling hash folds
    /// each `(time, event)` pair *before* dispatch, so a `StateHash`
    /// trace row at event `n` commits to the first `n` events processed.
    fn run_loop<S: SnapshotSink>(&mut self, snapshots: &mut S) -> Result<(), RunError> {
        let target = self.cfg.warmup_iters + self.cfg.measure_iters;
        while self
            .workers
            .iter()
            .any(|w| !w.permanently_dead && w.completed < target)
        {
            let Some((t, ev)) = self.queue.pop() else {
                return Err(RunError::Deadlock {
                    progress: self.workers.iter().map(|w| w.completed).collect(),
                });
            };
            self.events += 1;
            if self.events >= EVENT_CAP {
                return Err(RunError::EventCapExceeded { cap: EVENT_CAP });
            }
            self.hash = snapshot::fold_event(self.hash, t, &ev);
            let span = self.prof_begin();
            let key = ev.dispatch_key();
            self.dispatch(ev);
            self.prof_end(key, span);
            if self.cfg.hash_every > 0 && self.events.is_multiple_of(self.cfg.hash_every) {
                self.trace(p3_trace::TraceEvent::StateHash {
                    events: self.events,
                    hash: self.hash,
                });
            }
            if S::ACTIVE {
                let span = self.prof_begin();
                snapshots.after_event(self);
                self.prof_end("snapshot/capture", span);
            } else {
                snapshots.after_event(self);
            }
        }
        Ok(())
    }

    /// Drains the trace, runs the inline audit (full runs only), and
    /// computes the measured result.
    fn finalize(self, audit: bool) -> Result<(RunResult, Option<TraceLog>), RunError> {
        let target = self.cfg.warmup_iters + self.cfg.measure_iters;
        let log = self.tracer.as_ref().map(|t| t.drain());
        if audit && self.cfg.audit {
            let Some(log) = &log else {
                return Err(RunError::InvalidConfig(
                    "audit requested but slice tracing is off (use with_audit)".into(),
                ));
            };
            let opts = p3_audit::AuditOptions::from_meta(&self.cfg.trace_meta());
            let report = p3_audit::check_with(log, &opts);
            if !report.is_clean() {
                return Err(RunError::AuditFailed(report.to_string()));
            }
        }
        Ok((self.finish(target), log))
    }

    /// The slowest live worker's completed-iteration count — the
    /// progress floor a snapshot is labelled with.
    fn min_completed(&self) -> u64 {
        self.workers
            .iter()
            .filter(|w| !w.permanently_dead)
            .map(|w| w.completed)
            .min()
            .unwrap_or(0)
    }

    /// Schedules every episode of the fault plan. An empty plan schedules
    /// nothing at all — fault-free runs pay zero overhead.
    fn schedule_fault_plan(&mut self) {
        for (i, s) in self.cfg.faults.stragglers.iter().enumerate() {
            self.queue
                .schedule_at(s.start, Ev::StragglerStart { idx: i });
            self.queue
                .schedule_at(s.start + s.duration, Ev::StragglerEnd { idx: i });
        }
        for (i, d) in self.cfg.faults.link_degradations.iter().enumerate() {
            self.queue
                .schedule_at(d.start, Ev::LinkDegradeStart { idx: i });
            self.queue
                .schedule_at(d.start + d.duration, Ev::LinkDegradeEnd { idx: i });
        }
        for (i, c) in self.cfg.faults.crashes.iter().enumerate() {
            self.queue.schedule_at(c.at, Ev::Crash { idx: i });
        }
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::StartWorker { worker } => {
                let now = self.queue.now();
                if self.workers[worker].crashed {
                    // Crashed before ever starting; Rejoin boots it.
                    return;
                }
                let w = &mut self.workers[worker];
                w.started = true;
                w.iter_started = now;
                if self.cfg.warmup_iters == 0 {
                    w.measure_start = Some(now);
                }
                self.resample_jitter(worker);
                self.try_start_fwd(worker, 0);
            }
            Ev::Compute { worker, phase, inc } => {
                if self.workers[worker].incarnation != inc {
                    return; // echo of a crashed incarnation
                }
                let (tp, block) = trace_phase(phase);
                self.trace(p3_trace::TraceEvent::ComputeEnd {
                    worker,
                    phase: tp,
                    block,
                });
                match phase {
                    Phase::Fwd(b) => self.on_fwd_done(worker, b),
                    Phase::Bwd(b) => self.on_bwd_done(worker, b),
                }
            }
            Ev::EgressReady {
                machine,
                role,
                dst,
                inc,
            } => {
                if role == Role::Worker && self.workers[machine].incarnation != inc {
                    return; // the egress unit this completion refers to is gone
                }
                match role {
                    Role::Worker => self.workers[machine].egress.complete(dst),
                    Role::Server => self.servers[machine].egress.complete(dst),
                }
                self.kick_egress(machine, role);
            }
            Ev::AdmitKick { machine, role } => {
                let now = self.queue.now();
                let slot = role_slot(role);
                if self.admit_kick_at[machine][slot] == Some(now) {
                    self.admit_kick_at[machine][slot] = None;
                }
                self.kick_egress(machine, role);
            }
            Ev::ProcDone { server } => self.on_proc_done(server),
            Ev::NetWake => {
                let now = self.queue.now();
                if self.next_wake == Some(now) {
                    self.next_wake = None;
                }
                let span = self.prof_begin();
                let done = self.net.poll(now);
                self.prof_end("net/poll", span);
                for flow in done {
                    let msg_id = self
                        .flows
                        .remove(&flow.id)
                        .expect("completed flow without a registered message");
                    self.on_delivered(msg_id);
                }
                self.schedule_net_wake();
            }
            Ev::StragglerStart { idx } => {
                let s = self.cfg.faults.stragglers[idx];
                self.workers[s.worker].slowdown = s.slowdown;
            }
            Ev::StragglerEnd { idx } => {
                let s = self.cfg.faults.stragglers[idx];
                self.workers[s.worker].slowdown = 1.0;
            }
            Ev::LinkDegradeStart { idx } => {
                let d = self.cfg.faults.link_degradations[idx];
                let now = self.queue.now();
                self.net.set_port_scale(
                    now,
                    MachineId(d.machine),
                    d.capacity_factor,
                    d.capacity_factor,
                );
                self.schedule_net_wake();
            }
            Ev::LinkDegradeEnd { idx } => {
                let d = self.cfg.faults.link_degradations[idx];
                let now = self.queue.now();
                self.net.set_port_scale(now, MachineId(d.machine), 1.0, 1.0);
                self.schedule_net_wake();
            }
            Ev::Crash { idx } => self.on_crash(idx),
            Ev::Rejoin { worker } => self.on_rejoin(worker),
            Ev::RetryTimer { msg_id, attempt } => self.on_retry_timer(msg_id, attempt),
            Ev::LivenessTimeout { worker } => self.on_liveness_timeout(worker),
        }
    }
}
