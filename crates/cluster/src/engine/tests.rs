//! Engine behaviour tests: strategy coverage, stall accounting, and exact
//! message budgets. (Fault, trace, and topology tests live in
//! `fault_tests`.)

use super::ClusterSim;
use crate::config::ClusterConfig;
use p3_core::SyncStrategy;
use p3_des::SimDuration;
use p3_models::ModelSpec;
use p3_net::Bandwidth;

fn cfg(strategy: SyncStrategy, gbps: f64) -> ClusterConfig {
    ClusterConfig::new(
        ModelSpec::resnet50(),
        strategy,
        4,
        Bandwidth::from_gbps(gbps),
    )
    .with_iters(1, 2)
    .with_seed(7)
}

#[test]
fn every_strategy_terminates_and_reports() {
    for strategy in [
        SyncStrategy::baseline(),
        SyncStrategy::slicing_only(),
        SyncStrategy::p3(),
        SyncStrategy::tf_style(),
        SyncStrategy::poseidon_wfbp(),
        SyncStrategy::p3_generation_order(),
        SyncStrategy::p3_random_order(3),
        SyncStrategy::p3_notify_pull(),
    ] {
        let name = strategy.name().to_string();
        let r = ClusterSim::new(cfg(strategy, 8.0)).run();
        assert!(r.throughput > 0.0, "{name} produced no throughput");
        assert!(r.events > 0);
        assert!(!r.mean_iteration.is_zero());
    }
}

#[test]
fn single_machine_cluster_works() {
    // Degenerate deployment: worker and its only server share one
    // machine; all traffic is loopback.
    let c = ClusterConfig::new(
        ModelSpec::resnet50(),
        SyncStrategy::p3(),
        1,
        Bandwidth::from_gbps(1.0),
    )
    .with_iters(1, 2);
    let r = ClusterSim::new(c).run();
    // Loopback never binds: throughput equals the compute plateau.
    let plateau = ModelSpec::resnet50().reference_throughput();
    assert!(
        (r.throughput - plateau).abs() / plateau < 0.05,
        "got {}",
        r.throughput
    );
}

#[test]
fn starved_network_still_completes() {
    // 50 Mbps: brutally communication-bound but must terminate.
    let r = ClusterSim::new(cfg(SyncStrategy::p3(), 0.05)).run();
    assert!(r.throughput > 0.0);
    assert!(
        r.throughput < 20.0,
        "50 Mbps cannot be compute-bound: {}",
        r.throughput
    );
}

#[test]
fn tf_style_is_no_faster_than_eager_baseline() {
    // Deferring pulls to the next iteration start removes overlap.
    let tf = ClusterSim::new(cfg(SyncStrategy::tf_style(), 3.0)).run();
    let eager = ClusterSim::new(cfg(SyncStrategy::baseline(), 3.0)).run();
    assert!(
        tf.throughput <= eager.throughput * 1.02,
        "tf {} vs eager {}",
        tf.throughput,
        eager.throughput
    );
}

#[test]
fn immediate_broadcast_helps_p3() {
    // Ablation §5: removing the notify+pull round trip is part of P3's
    // win.
    let with = ClusterSim::new(cfg(SyncStrategy::p3(), 3.0)).run();
    let without = ClusterSim::new(cfg(SyncStrategy::p3_notify_pull(), 3.0)).run();
    assert!(
        with.throughput >= without.throughput * 0.98,
        "broadcast {} vs notify-pull {}",
        with.throughput,
        without.throughput
    );
}

#[test]
fn sockeye_jitter_produces_unequal_iterations() {
    let c = ClusterConfig::new(
        ModelSpec::sockeye(),
        SyncStrategy::p3(),
        2,
        Bandwidth::from_gbps(20.0),
    )
    .with_iters(1, 6);
    let r = ClusterSim::new(c).run();
    // With ±12% compute jitter and a sync barrier, the mean iteration
    // must exceed the jitter-free compute time (max of workers).
    let jitter_free =
        ModelSpec::sockeye().default_batch() as f64 / ModelSpec::sockeye().reference_throughput();
    assert!(
        r.mean_iteration.as_secs_f64() > jitter_free * 1.005,
        "barrier should amplify stragglers: {} vs {}",
        r.mean_iteration.as_secs_f64(),
        jitter_free
    );
}

#[test]
fn traces_cover_the_whole_run() {
    let c = cfg(SyncStrategy::p3(), 4.0).with_trace(SimDuration::from_millis(10));
    let r = ClusterSim::new(c).run();
    let t = r.trace.expect("tracing enabled");
    assert!(!t.tx_gbps.is_empty());
    assert!(!t.rx_gbps.is_empty());
    // Something was actually transmitted and received.
    assert!(t.tx_gbps.iter().sum::<f64>() > 0.0);
    assert!(t.rx_gbps.iter().sum::<f64>() > 0.0);
    // And never above the nominal NIC rate.
    assert!(t.tx_gbps.iter().all(|&g| g <= 4.0 + 1e-9));
}

#[test]
fn seeds_change_details_not_regime() {
    let a = ClusterSim::new(cfg(SyncStrategy::p3(), 4.0).with_seed(1)).run();
    let b = ClusterSim::new(cfg(SyncStrategy::p3(), 4.0).with_seed(2)).run();
    // KVStore's random placement and stagger differ, but throughput
    // stays in the same regime.
    assert!((a.throughput / b.throughput - 1.0).abs() < 0.15);
}

#[test]
fn inception_runs_under_all_fig7_strategies() {
    for strategy in SyncStrategy::fig7_series() {
        let c = ClusterConfig::new(
            ModelSpec::inception_v3(),
            strategy,
            4,
            Bandwidth::from_gbps(4.0),
        )
        .with_iters(1, 2);
        assert!(ClusterSim::new(c).run().throughput > 0.0);
    }
}

#[test]
fn tail_quantiles_are_ordered() {
    let r = ClusterSim::new(cfg(SyncStrategy::p3(), 4.0)).run();
    assert!(!r.p50_iteration.is_zero());
    assert!(r.p50_iteration <= r.p99_iteration);
}

#[test]
fn profiling_is_bit_identical_to_an_unprofiled_run() {
    // The tentpole invariant of the profiler: turning it on must not
    // perturb the simulation. The rolling event hash commits to every
    // (time, event) pair processed, so equal hashes mean the two runs
    // dispatched the exact same event stream.
    let plain = ClusterSim::new(cfg(SyncStrategy::p3(), 8.0)).run();
    let profiled = ClusterSim::new(cfg(SyncStrategy::p3(), 8.0))
        .with_profiling()
        .run();
    assert_eq!(plain.event_hash, profiled.event_hash);
    assert_eq!(plain.events, profiled.events);
    assert_eq!(plain.throughput.to_bits(), profiled.throughput.to_bits());
    assert_eq!(plain.peak_in_flight_flows, profiled.peak_in_flight_flows);
    assert!(plain.profile.is_none());
    assert!(profiled.profile.is_some());
}

#[test]
fn profile_reports_dispatch_timers_and_work_counters() {
    let r = ClusterSim::new(cfg(SyncStrategy::p3(), 8.0))
        .with_profiling()
        .run();
    let p = r.profile.expect("profiling was enabled");
    assert_eq!(p.events, r.events);
    assert!(p.wall_seconds > 0.0);
    let timer_keys: Vec<&str> = p.timers.iter().map(|t| t.key.as_str()).collect();
    assert!(timer_keys.contains(&"dispatch/NetWake"));
    assert!(timer_keys.contains(&"dispatch/Compute"));
    assert!(timer_keys.contains(&"net/poll"));
    assert!(timer_keys.contains(&"net/start_flow"));
    assert!(timer_keys.contains(&"backend/delivered"));
    // Every dispatched event lands in exactly one dispatch/* timer.
    let dispatched: u64 = p
        .timers
        .iter()
        .filter(|t| t.key.starts_with("dispatch/"))
        .map(|t| t.calls)
        .sum();
    assert_eq!(dispatched, r.events);
    let counter = |key: &str| {
        p.counters
            .iter()
            .find(|c| c.key == key)
            .unwrap_or_else(|| panic!("missing counter {key}"))
            .value
    };
    assert!(counter("net/reallocations") > 0);
    assert!(counter("net/waterfill_rounds") > 0);
    assert_eq!(counter("net/peak_in_flight"), r.peak_in_flight_flows);
    assert!(counter("heap/scheduled_total") >= r.events);
    assert!(counter("heap/high_water") > 0);
}

#[test]
fn peak_in_flight_is_deterministic_and_nonzero() {
    let a = ClusterSim::new(cfg(SyncStrategy::p3(), 8.0)).run();
    let b = ClusterSim::new(cfg(SyncStrategy::p3(), 8.0)).run();
    assert!(a.peak_in_flight_flows > 0);
    assert_eq!(a.peak_in_flight_flows, b.peak_in_flight_flows);
}

mod stall_tests {
    use super::super::ClusterSim;
    use crate::config::ClusterConfig;
    use crate::faults::{FaultPlan, StragglerEpisode};
    use p3_core::SyncStrategy;
    use p3_des::{SimDuration, SimTime};
    use p3_models::ModelSpec;
    use p3_net::Bandwidth;

    #[test]
    fn p3_stalls_less_than_baseline_when_constrained() {
        let run = |s: SyncStrategy| {
            ClusterSim::new(
                ClusterConfig::new(ModelSpec::resnet50(), s, 4, Bandwidth::from_gbps(3.0))
                    .with_iters(1, 3),
            )
            .run()
        };
        let base = run(SyncStrategy::baseline());
        let p3 = run(SyncStrategy::p3());
        assert!(
            p3.mean_stall_fraction < base.mean_stall_fraction,
            "P3 stall {:.3} vs baseline {:.3}",
            p3.mean_stall_fraction,
            base.mean_stall_fraction
        );
    }

    #[test]
    fn compute_bound_runs_barely_stall() {
        let r = ClusterSim::new(
            ClusterConfig::new(
                ModelSpec::resnet50(),
                SyncStrategy::p3(),
                4,
                Bandwidth::from_gbps(50.0),
            )
            .with_iters(1, 3),
        )
        .run();
        assert!(
            r.mean_stall_fraction < 0.05,
            "stall {:.3}",
            r.mean_stall_fraction
        );
    }

    #[test]
    fn per_worker_stall_nonzero_under_straggler() {
        let plan = FaultPlan {
            stragglers: vec![StragglerEpisode {
                worker: 1,
                start: SimTime::ZERO,
                duration: SimDuration::from_secs(1_000),
                slowdown: 3.0,
            }],
            ..FaultPlan::none()
        };
        let r = ClusterSim::new(
            ClusterConfig::new(
                ModelSpec::resnet50(),
                SyncStrategy::p3(),
                4,
                Bandwidth::from_gbps(8.0),
            )
            .with_iters(1, 3)
            .with_seed(7)
            .with_faults(plan),
        )
        .run();
        assert_eq!(r.stalled_per_worker.len(), 4);
        // The healthy workers wait at the synchronization barrier for the
        // 3×-slow straggler's gradients.
        let healthy_stall = r
            .stalled_per_worker
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 1)
            .map(|(_, &d)| d)
            .fold(SimDuration::ZERO, |a, b| a + b);
        assert!(!healthy_stall.is_zero(), "nobody waited for the straggler");
    }

    #[test]
    fn per_worker_stall_near_zero_when_compute_bound() {
        let r = ClusterSim::new(
            ClusterConfig::new(
                ModelSpec::resnet50(),
                SyncStrategy::p3(),
                4,
                Bandwidth::from_gbps(50.0),
            )
            .with_iters(1, 3),
        )
        .run();
        assert_eq!(r.stalled_per_worker.len(), 4);
        let total = r.finished_at.as_secs_f64();
        for (i, d) in r.stalled_per_worker.iter().enumerate() {
            let frac = d.as_secs_f64() / total;
            assert!(frac < 0.05, "worker {i} stalled {frac:.3} of the run");
        }
    }
}

mod message_accounting_tests {
    use super::super::ClusterSim;
    use crate::config::{ClusterConfig, MessageStats};
    use p3_core::SyncStrategy;
    use p3_models::ModelSpec;
    use p3_net::Bandwidth;

    /// Runs `iters` total iterations and returns (stats, keys, machines).
    fn run_counted(strategy: SyncStrategy, iters: u64) -> (MessageStats, u64, u64) {
        let model = ModelSpec::resnet50();
        let machines = 3usize;
        let keys = strategy.plan(&model, machines, 0x9e3779b9).num_keys() as u64;
        let cfg = ClusterConfig::new(model, strategy, machines, Bandwidth::from_gbps(50.0))
            .with_iters(0, iters);
        let r = ClusterSim::new(cfg).run();
        (r.messages, keys, machines as u64)
    }

    #[test]
    fn p3_message_budget_is_exact() {
        // ImmediateBroadcast: per round, every key is pushed by every
        // worker and broadcast back to every worker; nothing else.
        let (m, keys, w) = run_counted(SyncStrategy::p3(), 3);
        let rounds = 3;
        // The run halts the instant the last worker finishes its backward
        // pass; the final round's tail messages may still be in flight.
        let full = keys * w * rounds;
        assert!(
            m.pushes <= full && m.pushes >= full - keys * w,
            "pushes {}",
            m.pushes
        );
        assert_eq!(m.notifies, 0);
        assert_eq!(m.pull_requests, 0);
        // Responses: the final round's broadcasts may still be in flight
        // when the run stops, so allow the tail to be missing.
        let full = keys * w * rounds;
        assert!(
            m.responses <= full && m.responses >= full - keys * w,
            "responses {} vs expected ~{}",
            m.responses,
            full
        );
    }

    #[test]
    fn baseline_message_budget_is_exact() {
        // NotifyThenPull: per round and key, W pushes, W notifies, W pull
        // requests, W responses.
        let (m, keys, w) = run_counted(SyncStrategy::baseline(), 3);
        let rounds = 3;
        let full = keys * w * rounds;
        assert!(
            m.pushes <= full && m.pushes >= full - keys * w,
            "pushes {}",
            m.pushes
        );
        assert!(m.notifies <= full && m.notifies >= full - keys * w);
        assert!(m.pull_requests <= m.notifies);
        assert!(m.responses <= m.pull_requests);
        // All but the in-flight tail must complete for training to advance:
        // round r+1 pushes require round r responses.
        assert!(m.responses >= keys * w * (rounds - 1));
    }

    #[test]
    fn tf_style_pulls_everything_every_iteration() {
        let (m, keys, w) = run_counted(SyncStrategy::tf_style(), 2);
        // No notifies in the TF model; pulls are issued per key per
        // iteration boundary.
        assert_eq!(m.notifies, 0);
        assert!(m.pull_requests >= keys * w, "pulls {}", m.pull_requests);
    }
}
