//! Worker compute engine: forward/backward pass scheduling, parameter
//! readiness and stall accounting, iteration bookkeeping, and compute
//! jitter. Hands finished gradients to the communication backend and is
//! woken by it when parameters arrive ([`ClusterSim::recheck_waiting`]).

use super::types::{trace_phase, Ev, Phase};
use super::ClusterSim;
use p3_des::SimDuration;
use p3_trace::TraceEvent;

impl ClusterSim {
    /// Combined compute-time multiplier: calibrated jitter times any active
    /// straggler slowdown.
    fn compute_scale(&self, worker: usize) -> f64 {
        self.workers[worker].jitter * self.workers[worker].slowdown
    }

    fn schedule_compute(&mut self, worker: usize, dur: SimDuration, phase: Phase) {
        let (tp, block) = trace_phase(phase);
        self.trace(TraceEvent::ComputeStart {
            worker,
            phase: tp,
            block,
        });
        let inc = self.workers[worker].incarnation;
        self.queue
            .schedule_in(dur, Ev::Compute { worker, phase, inc });
    }

    fn fwd_ready(&self, worker: usize, block: usize) -> bool {
        let need = self.workers[worker].iter;
        self.keys_of_block[block]
            .iter()
            .all(|&k| self.workers[worker].received_version[k] >= need)
    }

    pub(crate) fn try_start_fwd(&mut self, worker: usize, block: usize) {
        let now = self.queue.now();
        if self.fwd_ready(worker, block) {
            let was_stalled = {
                let w = &mut self.workers[worker];
                w.waiting_block = None;
                match w.stalled_since.take() {
                    Some(since) => {
                        w.stalled_total += now - since;
                        true
                    }
                    None => false,
                }
            };
            if was_stalled {
                self.trace(TraceEvent::StallEnd { worker, block });
            }
            if self.tracer.is_some() {
                let round = self.workers[worker].iter;
                for k in self.keys_of_block[block].clone() {
                    self.trace(TraceEvent::SliceConsumed {
                        worker,
                        key: k,
                        round,
                    });
                }
            }
            let dur = self.block_times[block]
                .fwd
                .mul_f64(self.compute_scale(worker));
            self.schedule_compute(worker, dur, Phase::Fwd(block));
        } else {
            let newly_stalled = {
                let w = &mut self.workers[worker];
                w.waiting_block = Some(block);
                if w.stalled_since.is_none() {
                    w.stalled_since = Some(now);
                    true
                } else {
                    false
                }
            };
            if newly_stalled {
                self.trace(TraceEvent::StallStart { worker, block });
            }
        }
    }

    pub(crate) fn on_fwd_done(&mut self, worker: usize, block: usize) {
        let last = self.block_times.len() - 1;
        if block < last {
            self.try_start_fwd(worker, block + 1);
        } else {
            let dur = self.block_times[last]
                .bwd
                .mul_f64(self.compute_scale(worker));
            self.schedule_compute(worker, dur, Phase::Bwd(last));
        }
    }

    pub(crate) fn on_bwd_done(&mut self, worker: usize, block: usize) {
        // Gradients for every array of this block are now ready: hand their
        // slices to the communication backend (PS pushes, or a collective's
        // pending queue).
        let round = self.workers[worker].iter;
        self.backend_grads_ready(worker, block, round);

        if block > 0 {
            let dur = self.block_times[block - 1]
                .bwd
                .mul_f64(self.compute_scale(worker));
            self.schedule_compute(worker, dur, Phase::Bwd(block - 1));
        } else {
            self.on_iteration_complete(worker);
        }
    }

    fn on_iteration_complete(&mut self, worker: usize) {
        let now = self.queue.now();
        let warmup = self.cfg.warmup_iters;
        let target = warmup + self.cfg.measure_iters;
        let w = &mut self.workers[worker];
        w.completed += 1;
        w.iter += 1;
        let dur = (now - w.iter_started).as_secs_f64();
        w.iter_started = now;
        if w.completed > warmup && w.completed <= target {
            w.measured_iters.push(dur);
        }
        if w.completed == warmup && w.measure_start.is_none() {
            w.measure_start = Some(now);
        }
        if w.completed == target && w.measure_end.is_none() {
            w.measure_end = Some(now);
        }
        let completed = w.completed;
        self.trace(TraceEvent::IterationEnd {
            worker,
            iter: completed,
        });
        self.resample_jitter(worker);
        self.backend_iteration_started(worker);
        self.try_start_fwd(worker, 0);
    }

    pub(crate) fn resample_jitter(&mut self, worker: usize) {
        let frac = self.cfg.model.iteration_jitter();
        let w = &mut self.workers[worker];
        w.jitter = if frac > 0.0 {
            (1.0 + w.rng.normal() * frac).clamp(0.5, 2.0)
        } else {
            1.0
        };
    }

    pub(crate) fn recheck_waiting(&mut self, worker: usize) {
        if let Some(b) = self.workers[worker].waiting_block {
            if self.fwd_ready(worker, b) {
                self.try_start_fwd(worker, b);
            }
        }
    }
}
