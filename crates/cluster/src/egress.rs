//! Endpoint transmit scheduling.
//!
//! The fluid network (`p3-net`) decides how concurrent flows share ports;
//! *which* messages are in flight at all is an endpoint decision, and it is
//! where the baseline and P3 differ:
//!
//! * **Per-destination FIFO** — baseline frameworks hold one TCP connection
//!   per peer; messages to one peer serialize, connections to different
//!   peers transmit concurrently.
//! * **Single consumer** — P3's worker/server consumer thread drains one
//!   priority queue with blocking sends: at most one message in flight per
//!   endpoint, always the most urgent ([§4.2]).
//!
//! [§4.2]: https://arxiv.org/abs/1905.03960

use p3_core::PrioQueue;
use p3_net::{MachineId, Priority};
use std::collections::VecDeque;

/// One message awaiting transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutMsg {
    /// Destination machine.
    pub dst: MachineId,
    /// Wire size in bytes.
    pub bytes: u64,
    /// Network priority class (lower = more urgent).
    pub priority: Priority,
    /// Opaque message id correlating with the owner's bookkeeping.
    pub msg_id: u64,
}

/// Transmit scheduler for one endpoint (a worker's or server's sender side).
#[derive(Debug)]
pub enum EgressUnit {
    /// A single consumer draining one priority queue. Admission is strictly
    /// priority-ordered, but up to `window` messages may be in flight at
    /// once: a blocking `send()` returns when the kernel buffers the
    /// message, so the wire carries a small pipeline of already-admitted
    /// messages (one per server connection in practice).
    Single {
        /// Pending messages across all destinations.
        queue: PrioQueue<OutMsg>,
        /// Messages currently in flight.
        in_flight: usize,
        /// Maximum messages in flight.
        window: usize,
    },
    /// One FIFO lane per destination machine, independently busy.
    PerDest {
        /// Pending messages per destination machine index.
        queues: Vec<VecDeque<OutMsg>>,
        /// Per-destination in-flight marker.
        busy: Vec<bool>,
    },
}

impl EgressUnit {
    /// Creates a single-consumer (P3-style) unit with an in-flight window
    /// of `window` messages (typically the number of server connections).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn single(window: usize) -> EgressUnit {
        assert!(window > 0, "zero send window");
        EgressUnit::Single {
            queue: PrioQueue::new(),
            in_flight: 0,
            window,
        }
    }

    /// Creates a per-destination FIFO (baseline-style) unit for a cluster of
    /// `machines` machines.
    pub fn per_dest(machines: usize) -> EgressUnit {
        EgressUnit::PerDest {
            queues: (0..machines).map(|_| VecDeque::new()).collect(),
            busy: vec![false; machines],
        }
    }

    /// Enqueues a message for transmission.
    pub fn enqueue(&mut self, msg: OutMsg) {
        match self {
            EgressUnit::Single { queue, .. } => queue.push(msg.priority.0, msg),
            EgressUnit::PerDest { queues, .. } => queues[msg.dst.0].push_back(msg),
        }
    }

    /// Admits the single most urgent message if the in-flight window has
    /// room (single-consumer units only; the consumer thread admits one
    /// message per serialization slot).
    ///
    /// # Panics
    ///
    /// Panics on a per-destination unit — its admission is per lane via
    /// [`EgressUnit::start_ready`].
    pub fn start_one(&mut self) -> Option<OutMsg> {
        match self {
            EgressUnit::Single {
                queue,
                in_flight,
                window,
            } => {
                if *in_flight < *window {
                    let m = queue.pop();
                    if m.is_some() {
                        *in_flight += 1;
                    }
                    m
                } else {
                    None
                }
            }
            EgressUnit::PerDest { .. } => {
                panic!("start_one on a per-destination unit")
            }
        }
    }

    /// Returns every message that may start transmitting right now, marking
    /// the corresponding lanes busy. For a single-consumer unit this is at
    /// most one message; for per-destination lanes, one per idle non-empty
    /// lane.
    pub fn start_ready(&mut self) -> Vec<OutMsg> {
        match self {
            EgressUnit::Single { .. } => self.start_one().into_iter().collect(),
            EgressUnit::PerDest { queues, busy } => {
                let mut out = Vec::new();
                for (d, q) in queues.iter_mut().enumerate() {
                    if !busy[d] {
                        if let Some(m) = q.pop_front() {
                            busy[d] = true;
                            out.push(m);
                        }
                    }
                }
                out
            }
        }
    }

    /// Marks a lane free again after the in-flight message to `dst`
    /// completed (or after the post-send per-message overhead elapsed).
    ///
    /// # Panics
    ///
    /// Panics if the lane was not busy — a completion without a send is a
    /// simulator logic error.
    pub fn complete(&mut self, dst: MachineId) {
        match self {
            EgressUnit::Single { in_flight, .. } => {
                assert!(*in_flight > 0, "single consumer completed while idle");
                *in_flight -= 1;
            }
            EgressUnit::PerDest { busy, .. } => {
                assert!(busy[dst.0], "lane to {dst} completed while idle");
                busy[dst.0] = false;
            }
        }
    }

    /// Number of messages currently in flight (admitted but not yet
    /// completed).
    pub fn in_flight(&self) -> usize {
        match self {
            EgressUnit::Single { in_flight, .. } => *in_flight,
            EgressUnit::PerDest { busy, .. } => busy.iter().filter(|b| **b).count(),
        }
    }

    /// Number of queued (not yet in-flight) messages.
    pub fn backlog(&self) -> usize {
        match self {
            EgressUnit::Single { queue, .. } => queue.len(),
            EgressUnit::PerDest { queues, .. } => queues.iter().map(VecDeque::len).sum(),
        }
    }

    /// Drops queued (not yet in-flight) messages for which `keep` returns
    /// false, preserving the relative order of the survivors. In-flight
    /// messages are untouched — they complete (or are cancelled) through
    /// the normal flow lifecycle.
    pub fn retain(&mut self, mut keep: impl FnMut(&OutMsg) -> bool) {
        match self {
            EgressUnit::Single { queue, .. } => queue.retain(&mut keep),
            EgressUnit::PerDest { queues, .. } => {
                for q in queues {
                    q.retain(&mut keep);
                }
            }
        }
    }

    /// True if nothing is queued and nothing is in flight.
    pub fn is_idle(&self) -> bool {
        match self {
            EgressUnit::Single {
                queue, in_flight, ..
            } => queue.is_empty() && *in_flight == 0,
            EgressUnit::PerDest { queues, busy } => {
                queues.iter().all(VecDeque::is_empty) && busy.iter().all(|b| !*b)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(dst: usize, prio: u32, id: u64) -> OutMsg {
        OutMsg {
            dst: MachineId(dst),
            bytes: 100,
            priority: Priority(prio),
            msg_id: id,
        }
    }

    #[test]
    fn single_sends_one_at_a_time_by_priority() {
        let mut e = EgressUnit::single(1);
        e.enqueue(msg(1, 5, 1));
        e.enqueue(msg(2, 0, 2));
        let first = e.start_ready();
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].msg_id, 2); // most urgent wins
        assert!(e.start_ready().is_empty()); // busy
        e.complete(MachineId(2));
        assert_eq!(e.start_ready()[0].msg_id, 1);
    }

    #[test]
    fn single_window_admits_one_at_a_time_in_priority_order() {
        let mut e = EgressUnit::single(2);
        e.enqueue(msg(1, 5, 1));
        e.enqueue(msg(2, 0, 2));
        e.enqueue(msg(3, 3, 3));
        assert_eq!(e.start_one().unwrap().msg_id, 2); // most urgent first
        assert_eq!(e.start_one().unwrap().msg_id, 3);
        assert!(e.start_one().is_none()); // window full
        e.complete(MachineId(2));
        assert_eq!(e.start_one().unwrap().msg_id, 1);
    }

    #[test]
    fn single_preemption_in_queue() {
        let mut e = EgressUnit::single(1);
        e.enqueue(msg(1, 3, 10));
        e.enqueue(msg(1, 3, 11));
        let _ = e.start_ready(); // 10 in flight
        e.enqueue(msg(1, 0, 12)); // urgent arrives mid-flight
        e.complete(MachineId(1));
        assert_eq!(e.start_ready()[0].msg_id, 12); // jumps ahead of 11
    }

    #[test]
    fn per_dest_lanes_are_concurrent() {
        let mut e = EgressUnit::per_dest(3);
        e.enqueue(msg(1, 0, 1));
        e.enqueue(msg(2, 0, 2));
        e.enqueue(msg(1, 0, 3));
        let started = e.start_ready();
        assert_eq!(started.len(), 2); // one per lane
        assert!(e.start_ready().is_empty());
        e.complete(MachineId(1));
        let next = e.start_ready();
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].msg_id, 3); // FIFO within the lane
    }

    #[test]
    fn per_dest_ignores_priority() {
        let mut e = EgressUnit::per_dest(2);
        e.enqueue(msg(1, 9, 1));
        e.enqueue(msg(1, 0, 2));
        assert_eq!(e.start_ready()[0].msg_id, 1); // arrival order, not prio
    }

    #[test]
    fn backlog_and_idle() {
        let mut e = EgressUnit::single(1);
        assert!(e.is_idle());
        e.enqueue(msg(0, 0, 1));
        e.enqueue(msg(0, 0, 2));
        assert_eq!(e.backlog(), 2);
        let _ = e.start_ready();
        assert_eq!(e.backlog(), 1);
        assert!(!e.is_idle());
        e.complete(MachineId(0));
        let _ = e.start_ready();
        e.complete(MachineId(0));
        assert!(e.is_idle());
    }

    #[test]
    #[should_panic(expected = "completed while idle")]
    fn spurious_completion_panics() {
        EgressUnit::single(1).complete(MachineId(0));
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    fn msg(dst: usize, prio: u32, id: u64) -> OutMsg {
        OutMsg {
            dst: MachineId(dst),
            bytes: 100,
            priority: Priority(prio),
            msg_id: id,
        }
    }

    proptest! {
        /// Under any interleaving of enqueue / admit / complete, a
        /// single-consumer unit never lets `in_flight` exceed its window.
        #[test]
        fn single_window_never_exceeded(
            window in 1usize..4,
            ops in prop::collection::vec(0u8..3, 1..80),
        ) {
            let mut e = EgressUnit::single(window);
            let mut next_id = 0u64;
            let mut inflight: Vec<MachineId> = Vec::new();
            for op in ops {
                match op {
                    0 => {
                        e.enqueue(msg((next_id % 3) as usize, (next_id % 5) as u32, next_id));
                        next_id += 1;
                    }
                    1 => {
                        if let Some(m) = e.start_one() {
                            inflight.push(m.dst);
                        }
                    }
                    _ => {
                        if let Some(d) = inflight.pop() {
                            e.complete(d);
                        }
                    }
                }
                prop_assert!(e.in_flight() <= window, "in_flight {} > window {}", e.in_flight(), window);
                prop_assert_eq!(e.in_flight(), inflight.len());
            }
        }

        /// A single-consumer unit drains strictly by priority class, FIFO
        /// within a class (ids are assigned in enqueue order).
        #[test]
        fn drain_order_is_priority_then_fifo(
            prios in prop::collection::vec(0u32..4, 1..40),
        ) {
            let mut e = EgressUnit::single(1);
            for (i, &p) in prios.iter().enumerate() {
                e.enqueue(msg(0, p, i as u64));
            }
            let mut drained = Vec::new();
            while let Some(m) = e.start_one() {
                drained.push((m.priority.0, m.msg_id));
                e.complete(m.dst);
            }
            prop_assert_eq!(drained.len(), prios.len());
            for w in drained.windows(2) {
                prop_assert!(
                    w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1),
                    "out of order: {:?} then {:?}", w[0], w[1]
                );
            }
        }
    }
}
