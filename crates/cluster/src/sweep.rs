//! Parameter-sweep helpers shared by the figure-regeneration benches and
//! the integration tests.

use crate::config::ClusterConfig;
use crate::engine::ClusterSim;
use p3_core::SyncStrategy;
use p3_models::ModelSpec;
use p3_net::Bandwidth;
use p3_topo::{Placement, Topology};

/// One point of a sweep: the x-value and the aggregate throughput of each
/// strategy at that point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Sweep variable (Gbps, cluster size, or slice parameters).
    pub x: f64,
    /// `(strategy name, aggregate samples/sec)` in input order.
    pub series: Vec<(String, f64)>,
}

/// Measured aggregate throughput of one configuration (samples/sec).
///
/// Returns `NaN` if the configuration fails to run (invalid setup or a
/// wedged simulation) so a sweep over many points survives one bad one;
/// plotting layers skip NaN points.
pub fn throughput_of(
    model: &ModelSpec,
    strategy: &SyncStrategy,
    machines: usize,
    bandwidth: Bandwidth,
    warmup: u64,
    measure: u64,
    seed: u64,
) -> f64 {
    let cfg = ClusterConfig::new(model.clone(), strategy.clone(), machines, bandwidth)
        .with_iters(warmup, measure)
        .with_seed(seed);
    ClusterSim::new(cfg)
        .try_run()
        .map_or(f64::NAN, |r| r.throughput)
}

/// Figure 7: throughput of each strategy across NIC bandwidths on a fixed
/// cluster.
pub fn bandwidth_sweep(
    model: &ModelSpec,
    strategies: &[SyncStrategy],
    machines: usize,
    gbps: &[f64],
    warmup: u64,
    measure: u64,
    seed: u64,
) -> Vec<SweepPoint> {
    gbps.iter()
        .map(|&g| SweepPoint {
            x: g,
            series: strategies
                .iter()
                .map(|s| {
                    let t = throughput_of(
                        model,
                        s,
                        machines,
                        Bandwidth::from_gbps(g),
                        warmup,
                        measure,
                        seed,
                    );
                    (s.name().to_string(), t)
                })
                .collect(),
        })
        .collect()
}

/// Figure 10: throughput across cluster sizes at fixed bandwidth.
pub fn scalability_sweep(
    model: &ModelSpec,
    strategies: &[SyncStrategy],
    sizes: &[usize],
    bandwidth: Bandwidth,
    warmup: u64,
    measure: u64,
    seed: u64,
) -> Vec<SweepPoint> {
    sizes
        .iter()
        .map(|&n| SweepPoint {
            x: n as f64,
            series: strategies
                .iter()
                .map(|s| {
                    let t = throughput_of(model, s, n, bandwidth, warmup, measure, seed);
                    (s.name().to_string(), t)
                })
                .collect(),
        })
        .collect()
}

/// Oversubscription sweep: throughput of each strategy as the core gets
/// more oversubscribed on a fixed rack layout. `oversubs` of 1.0 is the
/// full-bisection point (for a single rack, identical to the flat fabric);
/// larger factors shrink the shared rack uplinks.
#[allow(clippy::too_many_arguments)]
pub fn oversubscription_sweep(
    model: &ModelSpec,
    strategies: &[SyncStrategy],
    racks: usize,
    rack_size: usize,
    bandwidth: Bandwidth,
    placement: Placement,
    oversubs: &[f64],
    warmup: u64,
    measure: u64,
    seed: u64,
) -> Vec<SweepPoint> {
    let machines = racks * rack_size;
    oversubs
        .iter()
        .map(|&f| SweepPoint {
            x: f,
            series: strategies
                .iter()
                .map(|s| {
                    let cfg = ClusterConfig::new(model.clone(), s.clone(), machines, bandwidth)
                        .with_iters(warmup, measure)
                        .with_seed(seed)
                        .with_topology(Topology::new(racks, rack_size, f))
                        .with_placement(placement);
                    let t = ClusterSim::new(cfg)
                        .try_run()
                        .map_or(f64::NAN, |r| r.throughput);
                    (s.name().to_string(), t)
                })
                .collect(),
        })
        .collect()
}

/// Figure 12: P3 throughput across slice sizes.
pub fn slice_size_sweep(
    model: &ModelSpec,
    slice_params: &[u64],
    machines: usize,
    bandwidth: Bandwidth,
    warmup: u64,
    measure: u64,
    seed: u64,
) -> Vec<SweepPoint> {
    slice_params
        .iter()
        .map(|&sz| {
            let s = SyncStrategy::p3_with_slice_params(sz);
            let t = throughput_of(model, &s, machines, bandwidth, warmup, measure, seed);
            SweepPoint {
                x: sz as f64,
                series: vec![(s.name().to_string(), t)],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_points_carry_all_strategies() {
        let model = ModelSpec::resnet50();
        let strategies = [SyncStrategy::baseline(), SyncStrategy::p3()];
        let pts = bandwidth_sweep(&model, &strategies, 2, &[20.0], 1, 2, 7);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].series.len(), 2);
        assert_eq!(pts[0].series[0].0, "Baseline");
        assert!(pts[0].series.iter().all(|(_, t)| *t > 0.0));
    }

    #[test]
    fn oversubscription_sweep_degrades_monotonically() {
        let model = ModelSpec::resnet50();
        let strategies = [SyncStrategy::p3()];
        let pts = oversubscription_sweep(
            &model,
            &strategies,
            2,
            2,
            Bandwidth::from_gbps(8.0),
            Placement::Spread,
            &[1.0, 4.0],
            1,
            2,
            42,
        );
        assert_eq!(pts.len(), 2);
        let t = |i: usize| pts[i].series[0].1;
        assert!(t(0) > 0.0 && t(1) > 0.0);
        assert!(
            t(1) <= t(0),
            "more oversubscription sped things up: {} vs {}",
            t(1),
            t(0)
        );
    }
}
