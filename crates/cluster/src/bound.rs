//! Analytic lower bound on iteration time — the yardstick the scheduling
//! literature that followed P3 (ByteScheduler's Ω-bound, in particular)
//! measures against.
//!
//! No parameter-server schedule can beat the larger of (a) the compute
//! critical path and (b) the per-NIC volume bound: every machine must move
//! the remote share of the gradients out and the remote share of the
//! updated parameters in, at most at effective line rate and with perfect
//! overlap. The measured-vs-bound ratio quantifies how much headroom a
//! strategy leaves on the table.

use crate::config::ClusterConfig;
use p3_des::SimDuration;

/// The analytic bound and its components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationBound {
    /// Compute-only iteration time (forward + backward).
    pub compute: SimDuration,
    /// Time to transmit each machine's unavoidable outbound volume.
    pub tx: SimDuration,
    /// Time to receive each machine's unavoidable inbound volume.
    pub rx: SimDuration,
}

impl IterationBound {
    /// The binding constraint: no schedule can complete an iteration
    /// faster.
    pub fn limit(&self) -> SimDuration {
        self.compute.max(self.tx).max(self.rx)
    }

    /// The throughput this bound allows for the whole cluster
    /// (samples/sec).
    pub fn throughput_limit(&self, batch_per_worker: usize, machines: usize) -> f64 {
        (batch_per_worker * machines) as f64 / self.limit().as_secs_f64()
    }
}

/// Computes the bound for a configuration.
///
/// With worker `i` and server shard `i` colocated, machine `i` must send
/// its gradients to the `(N−1)/N` remote shards **and** broadcast its
/// shard's updated parameters to the `N−1` remote workers — in total
/// `2·S·(N−1)/N` bytes out (and, symmetrically, in) per iteration, where
/// `S` is the model's gradient volume.
///
/// # Panics
///
/// Panics if the configuration is degenerate.
pub fn iteration_bound(cfg: &ClusterConfig) -> IterationBound {
    assert!(cfg.machines > 0, "no machines");
    let compute = cfg.compute.iteration_time(&cfg.model, cfg.batch_per_worker);
    let n = cfg.machines as f64;
    let volume = cfg.model.total_bytes() as f64 * 2.0 * (n - 1.0) / n;
    let rate = cfg.bandwidth.bytes_per_sec() * cfg.net_efficiency;
    let dir = SimDuration::from_secs_f64(volume / rate);
    IterationBound {
        compute,
        tx: dir,
        rx: dir,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterConfig, ClusterSim};
    use p3_core::SyncStrategy;
    use p3_models::ModelSpec;
    use p3_net::Bandwidth;

    fn cfg(gbps: f64) -> ClusterConfig {
        ClusterConfig::new(
            ModelSpec::resnet50(),
            SyncStrategy::p3(),
            4,
            Bandwidth::from_gbps(gbps),
        )
        .with_iters(1, 3)
    }

    #[test]
    fn compute_binds_at_high_bandwidth() {
        let b = iteration_bound(&cfg(100.0));
        assert_eq!(b.limit(), b.compute);
    }

    #[test]
    fn network_binds_at_low_bandwidth() {
        let b = iteration_bound(&cfg(0.5));
        assert_eq!(b.limit(), b.tx);
        assert!(b.tx > b.compute);
    }

    #[test]
    fn no_strategy_beats_the_bound() {
        for gbps in [1.0, 4.0, 20.0] {
            let c = cfg(gbps);
            let bound = iteration_bound(&c);
            let allowed = bound.throughput_limit(c.batch_per_worker, c.machines);
            for strategy in [SyncStrategy::baseline(), SyncStrategy::p3()] {
                let mut c = c.clone();
                c.strategy = strategy;
                let name = c.strategy.name().to_string();
                let r = ClusterSim::new(c).run();
                assert!(
                    r.throughput <= allowed * 1.02,
                    "{name} at {gbps} Gbps: {} exceeds bound {allowed}",
                    r.throughput
                );
            }
        }
    }

    #[test]
    fn p3_approaches_the_bound_where_baseline_does_not() {
        // At the crossover point, P3 should realize most of the achievable
        // throughput while the baseline leaves headroom.
        let c = cfg(4.0);
        let allowed = iteration_bound(&c).throughput_limit(c.batch_per_worker, c.machines);
        let p3 = ClusterSim::new(c.clone()).run().throughput / allowed;
        let mut cb = c;
        cb.strategy = SyncStrategy::baseline();
        let base = ClusterSim::new(cb).run().throughput / allowed;
        assert!(p3 > 0.85, "P3 realizes {p3:.2} of the bound");
        assert!(p3 > base, "P3 {p3:.2} vs baseline {base:.2}");
    }

    #[test]
    fn bound_volume_formula() {
        // 4 machines: each NIC must move 2·S·3/4 bytes per direction.
        let c = cfg(1.0);
        let b = iteration_bound(&c);
        let s = c.model.total_bytes() as f64;
        let expect = 2.0 * s * 0.75 / (1e9 / 8.0 * c.net_efficiency);
        assert!((b.tx.as_secs_f64() - expect).abs() < 1e-9);
    }
}
