//! Deterministic fault injection: straggler episodes, degraded links,
//! message loss, and worker crashes.
//!
//! A [`FaultPlan`] is a *schedule*, not a random process: every episode has
//! explicit simulated start times, so the same seed and plan replay the
//! exact same run (the reproducibility property the test suite pins). The
//! only randomness is per-message loss, drawn from a dedicated RNG stream
//! seeded from the run seed — independent of the sharding/jitter streams,
//! so enabling loss never perturbs placement or compute timing.
//!
//! An empty plan is free: the simulator schedules no fault events, draws no
//! extra random numbers, and produces a bit-identical [`RunResult`] to a
//! build without the subsystem.
//!
//! [`RunResult`]: crate::RunResult

use p3_des::{SimDuration, SimTime};

/// One worker computing slower than its peers for a bounded interval —
/// thermal throttling, a noisy neighbour, a background daemon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerEpisode {
    /// Affected worker (machine index).
    pub worker: usize,
    /// When the slowdown begins.
    pub start: SimTime,
    /// How long it lasts.
    pub duration: SimDuration,
    /// Compute-time multiplier while active (`2.0` = half speed). Must be
    /// `>= 1`. Applies to blocks *scheduled* during the episode; a block
    /// already executing finishes at its original speed.
    pub slowdown: f64,
}

/// One machine's NIC running below nominal capacity for a bounded
/// interval — a flapping link, ECMP imbalance, an overloaded ToR port.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDegradation {
    /// Affected machine (both its transmit and receive directions).
    pub machine: usize,
    /// When the degradation begins.
    pub start: SimTime,
    /// How long it lasts.
    pub duration: SimDuration,
    /// Fraction of nominal port capacity available while active, in
    /// `(0, 1]`. Flows in flight are rescaled mid-transfer.
    pub capacity_factor: f64,
}

/// One worker process dying, optionally restarting later. The colocated
/// server shard survives (process-level failure, not machine loss), so no
/// parameter state is lost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerCrash {
    /// Affected worker (machine index).
    pub worker: usize,
    /// Instant the process dies: in-flight transmissions are cancelled and
    /// queued sends discarded.
    pub at: SimTime,
    /// Delay until the process restarts and re-syncs, or `None` for a
    /// permanent failure.
    pub rejoin_after: Option<SimDuration>,
}

/// A reproducible schedule of faults for one simulated run.
///
/// # Examples
///
/// ```
/// use p3_cluster::{FaultPlan, StragglerEpisode};
/// use p3_des::{SimDuration, SimTime};
///
/// let mut plan = FaultPlan::none();
/// assert!(plan.is_empty());
/// plan.stragglers.push(StragglerEpisode {
///     worker: 1,
///     start: SimTime::from_secs(2),
///     duration: SimDuration::from_secs(3),
///     slowdown: 4.0,
/// });
/// assert!(plan.validate(4).is_ok());
/// assert!(plan.validate(1).is_err()); // worker 1 does not exist
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Compute slowdown episodes.
    pub stragglers: Vec<StragglerEpisode>,
    /// Port capacity degradation episodes.
    pub link_degradations: Vec<LinkDegradation>,
    /// Probability that any one non-loopback message is dropped in the
    /// network, in `[0, 1)`. Non-zero loss arms the timeout/retransmit
    /// machinery ([`RetryPolicy`](p3_pserver::RetryPolicy)).
    pub loss_probability: f64,
    /// Worker process crashes (at most one per worker).
    pub crashes: Vec<WorkerCrash>,
}

impl FaultPlan {
    /// The empty plan: no faults, zero simulation overhead.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.stragglers.is_empty()
            && self.link_degradations.is_empty()
            && self.loss_probability == 0.0
            && self.crashes.is_empty()
    }

    /// True if messages can fail to arrive, requiring per-message retry
    /// timers (loss or crashes; stragglers and slow links only delay).
    pub fn needs_reliability(&self) -> bool {
        self.loss_probability > 0.0 || !self.crashes.is_empty()
    }

    /// Checks the plan against a cluster of `machines` machines.
    ///
    /// Rejects out-of-range machine indices, non-positive durations,
    /// slowdowns below 1, capacity factors outside `(0, 1]`, loss outside
    /// `[0, 1)`, more than one crash per worker, overlapping episodes on
    /// one worker/machine, and plans that permanently kill every worker.
    pub fn validate(&self, machines: usize) -> Result<(), String> {
        for s in &self.stragglers {
            if s.worker >= machines {
                return Err(format!("straggler worker {} out of range", s.worker));
            }
            if s.duration.is_zero() {
                return Err(format!(
                    "straggler on worker {} has zero duration",
                    s.worker
                ));
            }
            if s.slowdown.is_nan() || s.slowdown < 1.0 {
                return Err(format!("straggler slowdown {} must be >= 1", s.slowdown));
            }
        }
        check_disjoint(
            self.stragglers
                .iter()
                .map(|s| (s.worker, s.start, s.duration)),
            "straggler episodes",
        )?;
        for d in &self.link_degradations {
            if d.machine >= machines {
                return Err(format!("degraded machine {} out of range", d.machine));
            }
            if d.duration.is_zero() {
                return Err(format!(
                    "degradation on machine {} has zero duration",
                    d.machine
                ));
            }
            if !(d.capacity_factor > 0.0 && d.capacity_factor <= 1.0) {
                return Err(format!(
                    "capacity factor {} must be in (0, 1]",
                    d.capacity_factor
                ));
            }
        }
        check_disjoint(
            self.link_degradations
                .iter()
                .map(|d| (d.machine, d.start, d.duration)),
            "link degradations",
        )?;
        if !(0.0..1.0).contains(&self.loss_probability) {
            return Err(format!(
                "loss probability {} must be in [0, 1)",
                self.loss_probability
            ));
        }
        let mut crashed = vec![false; machines];
        let mut survivors = machines;
        for c in &self.crashes {
            if c.worker >= machines {
                return Err(format!("crashed worker {} out of range", c.worker));
            }
            if crashed[c.worker] {
                return Err(format!("worker {} crashes more than once", c.worker));
            }
            crashed[c.worker] = true;
            if c.rejoin_after.is_none() {
                survivors -= 1;
            }
        }
        if survivors == 0 {
            return Err("every worker crashes permanently; nothing can finish".into());
        }
        Ok(())
    }
}

/// Rejects overlapping `(index, start, duration)` intervals on one target.
fn check_disjoint(
    episodes: impl Iterator<Item = (usize, SimTime, SimDuration)>,
    what: &str,
) -> Result<(), String> {
    let mut spans: Vec<(usize, SimTime, SimTime)> =
        episodes.map(|(i, s, d)| (i, s, s + d)).collect();
    spans.sort_by_key(|&(i, s, _)| (i, s));
    for w in spans.windows(2) {
        let (i0, _, end0) = w[0];
        let (i1, start1, _) = w[1];
        if i0 == i1 && start1 < end0 {
            return Err(format!("overlapping {what} on index {i0}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straggler(worker: usize, start_s: u64, dur_s: u64) -> StragglerEpisode {
        StragglerEpisode {
            worker,
            start: SimTime::from_secs(start_s),
            duration: SimDuration::from_secs(dur_s),
            slowdown: 2.0,
        }
    }

    #[test]
    fn empty_plan_is_empty_and_valid() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(!p.needs_reliability());
        assert!(p.validate(1).is_ok());
    }

    #[test]
    fn loss_alone_needs_reliability() {
        let p = FaultPlan {
            loss_probability: 0.01,
            ..FaultPlan::none()
        };
        assert!(!p.is_empty());
        assert!(p.needs_reliability());
        assert!(p.validate(2).is_ok());
    }

    #[test]
    fn stragglers_do_not_need_reliability() {
        let p = FaultPlan {
            stragglers: vec![straggler(0, 1, 1)],
            ..FaultPlan::none()
        };
        assert!(!p.needs_reliability());
    }

    #[test]
    fn out_of_range_indices_rejected() {
        let p = FaultPlan {
            stragglers: vec![straggler(5, 0, 1)],
            ..FaultPlan::none()
        };
        assert!(p.validate(4).is_err());
        let p = FaultPlan {
            crashes: vec![WorkerCrash {
                worker: 9,
                at: SimTime::from_secs(1),
                rejoin_after: None,
            }],
            ..FaultPlan::none()
        };
        assert!(p.validate(4).is_err());
    }

    #[test]
    fn overlapping_stragglers_rejected() {
        let p = FaultPlan {
            stragglers: vec![straggler(2, 0, 5), straggler(2, 3, 5)],
            ..FaultPlan::none()
        };
        assert!(p.validate(4).is_err());
        // Same intervals on different workers are fine.
        let p = FaultPlan {
            stragglers: vec![straggler(1, 0, 5), straggler(2, 0, 5)],
            ..FaultPlan::none()
        };
        assert!(p.validate(4).is_ok());
    }

    #[test]
    fn bad_scalars_rejected() {
        let mut s = straggler(0, 0, 1);
        s.slowdown = 0.5;
        let p = FaultPlan {
            stragglers: vec![s],
            ..FaultPlan::none()
        };
        assert!(p.validate(1).is_err());
        let p = FaultPlan {
            loss_probability: 1.0,
            ..FaultPlan::none()
        };
        assert!(p.validate(1).is_err());
        let p = FaultPlan {
            link_degradations: vec![LinkDegradation {
                machine: 0,
                start: SimTime::ZERO,
                duration: SimDuration::from_secs(1),
                capacity_factor: 0.0,
            }],
            ..FaultPlan::none()
        };
        assert!(p.validate(1).is_err());
    }

    #[test]
    fn total_permanent_loss_rejected() {
        let crash = |w: usize| WorkerCrash {
            worker: w,
            at: SimTime::from_secs(1),
            rejoin_after: None,
        };
        let p = FaultPlan {
            crashes: vec![crash(0), crash(1)],
            ..FaultPlan::none()
        };
        assert!(p.validate(2).is_err());
        let p = FaultPlan {
            crashes: vec![crash(0)],
            ..FaultPlan::none()
        };
        assert!(p.validate(2).is_ok());
    }

    #[test]
    fn double_crash_rejected() {
        let crash = WorkerCrash {
            worker: 0,
            at: SimTime::from_secs(1),
            rejoin_after: Some(SimDuration::from_secs(1)),
        };
        let p = FaultPlan {
            crashes: vec![crash, crash],
            ..FaultPlan::none()
        };
        assert!(p.validate(2).is_err());
    }
}
