//! Analytic schedule models for the paper's motivating examples.
//!
//! Figure 4 (aggressive vs priority-based synchronization of a 3-layer DNN
//! over a single shared link) and Figure 6 (layer-level vs fine-grained
//! slices through the send → update → receive tandem pipeline) are abstract
//! unit-time illustrations, not cluster measurements. This module
//! reproduces them exactly — including the paper's headline numbers (the
//! inter-iteration delay halving from 4 to 2 time units, and the 30%
//! communication saving from slicing) — with small deterministic schedulers
//! over abstract time units.

/// Which execution resource a Gantt segment occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// GPU compute (forward or backward).
    Compute,
    /// The network/synchronization resource (Fig. 4), or the worker-send
    /// stage (Fig. 6).
    Send,
    /// Server update stage (Fig. 6).
    Update,
    /// Parameter-receive stage (Fig. 6).
    Receive,
}

/// One bar of a Gantt chart, in abstract time units.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Human-readable label, e.g. `"bwd L3"` or `"sync L2"`.
    pub label: String,
    /// Lane the segment occupies.
    pub lane: Lane,
    /// Start time.
    pub start: f64,
    /// End time.
    pub end: f64,
}

/// A computed schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// All segments, in start order.
    pub segments: Vec<Segment>,
    /// Gap between the end of backward propagation and the start of the
    /// next forward propagation — the "Delay" annotated in Figure 4.
    pub iteration_gap: f64,
    /// Time at which the last segment ends.
    pub makespan: f64,
}

/// How the shared synchronization resource serves layers (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncOrder {
    /// Aggressive/FIFO: layers are synchronized in gradient-generation
    /// order (final layer first), each to completion.
    Fifo,
    /// P3: preemptive priority in consumption order (first layer wins).
    PriorityPreemptive,
}

/// The 3-layer example of Figure 4: per-layer forward, backward and
/// synchronization durations, indexed in **forward order** (layer 1 first).
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSpec {
    /// Forward durations per layer.
    pub fwd: Vec<f64>,
    /// Backward durations per layer.
    pub bwd: Vec<f64>,
    /// Synchronization durations per layer on the shared link.
    pub sync: Vec<f64>,
}

impl PipelineSpec {
    /// The exact example of Figure 4: three layers, unit fwd/bwd, 2-unit
    /// synchronization.
    pub fn figure4() -> PipelineSpec {
        PipelineSpec {
            fwd: vec![1.0; 3],
            bwd: vec![1.0; 3],
            sync: vec![2.0; 3],
        }
    }

    fn validate(&self) {
        let n = self.fwd.len();
        assert!(n > 0, "empty pipeline");
        assert_eq!(self.bwd.len(), n, "bwd length mismatch");
        assert_eq!(self.sync.len(), n, "sync length mismatch");
        for v in self.fwd.iter().chain(&self.bwd).chain(&self.sync) {
            assert!(v.is_finite() && *v >= 0.0, "invalid duration {v}");
        }
    }
}

/// Schedules one backward pass followed by the next iteration's forward
/// pass, with synchronization on a single shared resource served in the
/// given order (reproducing Figure 4a/4b).
///
/// # Panics
///
/// Panics if the spec's vectors are empty, differ in length, or contain
/// invalid durations.
pub fn schedule_sync(spec: &PipelineSpec, order: SyncOrder) -> Schedule {
    spec.validate();
    let n = spec.fwd.len();
    let mut segments = Vec::new();

    // Backward propagation: layers n-1 .. 0 back-to-back from t = 0.
    let mut t = 0.0;
    let mut release = vec![0.0; n]; // sync job release times
    for i in (0..n).rev() {
        segments.push(Segment {
            label: format!("bwd L{}", i + 1),
            lane: Lane::Compute,
            start: t,
            end: t + spec.bwd[i],
        });
        t += spec.bwd[i];
        release[i] = t;
    }
    let bwd_end = t;

    // Serve sync jobs on the single link.
    let priority: Vec<usize> = match order {
        SyncOrder::Fifo => {
            // FIFO by release time == generation order; model as priority
            // equal to release rank (final layer most urgent), which with
            // non-preemption equals FIFO.
            (0..n).map(|i| n - 1 - i).collect()
        }
        SyncOrder::PriorityPreemptive => (0..n).collect(),
    };
    let preemptive = order == SyncOrder::PriorityPreemptive;
    let sync_done =
        serve_single_resource(&release, &spec.sync, &priority, preemptive, &mut segments);

    // Next iteration's forward pass.
    let mut f = f64::NEG_INFINITY;
    let mut fwd_start0 = 0.0;
    for i in 0..n {
        let ready = if i == 0 {
            sync_done[0]
        } else {
            f.max(sync_done[i])
        };
        let start = if i == 0 {
            sync_done[0].max(bwd_end)
        } else {
            ready
        };
        if i == 0 {
            fwd_start0 = start;
        }
        segments.push(Segment {
            label: format!("fwd L{}", i + 1),
            lane: Lane::Compute,
            start,
            end: start + spec.fwd[i],
        });
        f = start + spec.fwd[i];
    }

    segments.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite times"));
    let makespan = segments.iter().map(|s| s.end).fold(0.0, f64::max);
    Schedule {
        segments,
        iteration_gap: fwd_start0 - bwd_end,
        makespan,
    }
}

/// Serves jobs on one resource; returns per-job completion times and
/// appends the service segments. Lower `priority` value = more urgent.
fn serve_single_resource(
    release: &[f64],
    service: &[f64],
    priority: &[usize],
    preemptive: bool,
    segments: &mut Vec<Segment>,
) -> Vec<f64> {
    let n = release.len();
    let mut remaining: Vec<f64> = service.to_vec();
    let mut done = vec![0.0; n];
    let mut t = release.iter().copied().fold(f64::INFINITY, f64::min);
    let eps = 1e-12;
    let mut guard = 0;
    loop {
        guard += 1;
        assert!(guard < 10_000, "scheduler failed to converge");
        // Most urgent released unfinished job.
        let candidate = (0..n)
            .filter(|&i| release[i] <= t + eps && remaining[i] > eps)
            .min_by_key(|&i| priority[i]);
        let next_release = release
            .iter()
            .enumerate()
            .filter(|&(i, &r)| r > t + eps && remaining[i] > eps)
            .map(|(_, &r)| r)
            .fold(f64::INFINITY, f64::min);
        match candidate {
            None => {
                if next_release.is_finite() {
                    t = next_release;
                    continue;
                }
                break;
            }
            Some(i) => {
                let finish = t + remaining[i];
                let horizon = if preemptive {
                    finish.min(next_release)
                } else {
                    finish
                };
                if horizon > t + eps {
                    segments.push(Segment {
                        label: format!("sync L{}", i + 1),
                        lane: Lane::Send,
                        start: t,
                        end: horizon,
                    });
                }
                remaining[i] -= horizon - t;
                if remaining[i] <= eps {
                    remaining[i] = 0.0;
                    done[i] = horizon;
                }
                t = horizon;
            }
        }
    }
    done
}

/// One layer's slice jobs through the send → update → receive tandem
/// pipeline of Figure 6, in generation (backward) order.
#[derive(Debug, Clone, PartialEq)]
pub struct TandemJob {
    /// Label, e.g. `"L2.1"`.
    pub label: String,
    /// Gradient-propagation (send) duration.
    pub send: f64,
    /// Parameter-update duration.
    pub update: f64,
    /// Parameter-propagation (receive) duration.
    pub recv: f64,
}

impl TandemJob {
    /// A job with equal time in every stage.
    pub fn uniform(label: impl Into<String>, t: f64) -> TandemJob {
        TandemJob {
            label: label.into(),
            send: t,
            update: t,
            recv: t,
        }
    }
}

/// The Figure 6(a) workload: three layers at layer granularity, the middle
/// one 3× heavier.
pub fn figure6_layerwise() -> Vec<TandemJob> {
    vec![
        TandemJob::uniform("L3", 1.0),
        TandemJob::uniform("L2", 3.0),
        TandemJob::uniform("L1", 1.0),
    ]
}

/// The Figure 6(b) workload: the heavy layer sliced into three unit slices.
pub fn figure6_sliced() -> Vec<TandemJob> {
    vec![
        TandemJob::uniform("L3", 1.0),
        TandemJob::uniform("L2.1", 1.0),
        TandemJob::uniform("L2.2", 1.0),
        TandemJob::uniform("L2.3", 1.0),
        TandemJob::uniform("L1", 1.0),
    ]
}

/// Schedules jobs through the three-stage tandem pipeline: each stage is a
/// serial resource, jobs enter in the given order, and a job occupies stage
/// `k+1` only after finishing stage `k` (reproducing Figure 6).
///
/// # Panics
///
/// Panics if `jobs` is empty or contains invalid durations.
pub fn schedule_tandem(jobs: &[TandemJob]) -> Schedule {
    assert!(!jobs.is_empty(), "no jobs");
    for j in jobs {
        for v in [j.send, j.update, j.recv] {
            assert!(
                v.is_finite() && v >= 0.0,
                "invalid duration {v} in {}",
                j.label
            );
        }
    }
    let mut segments = Vec::new();
    let (mut send_free, mut upd_free, mut recv_free) = (0.0f64, 0.0f64, 0.0f64);
    let mut last_end = 0.0f64;
    for j in jobs {
        let s0 = send_free;
        let s1 = s0 + j.send;
        send_free = s1;
        let u0 = s1.max(upd_free);
        let u1 = u0 + j.update;
        upd_free = u1;
        let r0 = u1.max(recv_free);
        let r1 = r0 + j.recv;
        recv_free = r1;
        segments.push(Segment {
            label: format!("send {}", j.label),
            lane: Lane::Send,
            start: s0,
            end: s1,
        });
        segments.push(Segment {
            label: format!("update {}", j.label),
            lane: Lane::Update,
            start: u0,
            end: u1,
        });
        segments.push(Segment {
            label: format!("recv {}", j.label),
            lane: Lane::Receive,
            start: r0,
            end: r1,
        });
        last_end = last_end.max(r1);
    }
    Schedule {
        segments,
        iteration_gap: 0.0,
        makespan: last_end,
    }
}

/// Renders a schedule as a fixed-width ASCII Gantt chart (one row per
/// label), for the Figure 4/6 regeneration binaries.
pub fn ascii_gantt(schedule: &Schedule, unit: f64) -> String {
    assert!(unit > 0.0, "non-positive time unit");
    let mut rows: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for seg in &schedule.segments {
        match rows.iter_mut().find(|(l, _)| *l == seg.label) {
            Some((_, spans)) => spans.push((seg.start, seg.end)),
            None => rows.push((seg.label.clone(), vec![(seg.start, seg.end)])),
        }
    }
    let width = (schedule.makespan / unit).ceil() as usize;
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, spans) in rows {
        let mut cells = vec![' '; width];
        for (s, e) in spans {
            let a = (s / unit).round() as usize;
            let b = ((e / unit).round() as usize).min(width);
            for c in cells.iter_mut().take(b).skip(a) {
                *c = '#';
            }
        }
        out.push_str(&format!("{label:label_w$} |"));
        out.extend(cells);
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4a_aggressive_delay_is_four() {
        // The paper: "the total delay between the two iterations is twice
        // the time taken for synchronizing the first layer".
        let s = schedule_sync(&PipelineSpec::figure4(), SyncOrder::Fifo);
        assert_eq!(s.iteration_gap, 4.0);
        assert_eq!(s.makespan, 10.0);
    }

    #[test]
    fn figure4b_priority_halves_delay() {
        // "the delay between the two iterations has been reduced by half".
        let s = schedule_sync(&PipelineSpec::figure4(), SyncOrder::PriorityPreemptive);
        assert_eq!(s.iteration_gap, 2.0);
        assert_eq!(s.makespan, 8.0);
    }

    #[test]
    fn figure4b_sync_order_is_preemptive() {
        let s = schedule_sync(&PipelineSpec::figure4(), SyncOrder::PriorityPreemptive);
        // L1's sync runs as one uninterrupted segment 3..5.
        let l1: Vec<&Segment> = s.segments.iter().filter(|x| x.label == "sync L1").collect();
        assert_eq!(l1.len(), 1);
        assert_eq!((l1[0].start, l1[0].end), (3.0, 5.0));
        // L3 is preempted: two segments.
        let l3: Vec<&Segment> = s.segments.iter().filter(|x| x.label == "sync L3").collect();
        assert_eq!(l3.len(), 2);
    }

    #[test]
    fn figure4_fwd_order_follows_consumption() {
        let s = schedule_sync(&PipelineSpec::figure4(), SyncOrder::PriorityPreemptive);
        let fwd1 = s.segments.iter().find(|x| x.label == "fwd L1").unwrap();
        let fwd3 = s.segments.iter().find(|x| x.label == "fwd L3").unwrap();
        assert_eq!(fwd1.start, 5.0);
        assert_eq!(fwd3.end, 8.0);
    }

    #[test]
    fn figure6a_layerwise_makespan_is_eleven() {
        let s = schedule_tandem(&figure6_layerwise());
        assert_eq!(s.makespan, 11.0);
    }

    #[test]
    fn figure6b_slicing_saves_thirty_percent() {
        let a = schedule_tandem(&figure6_layerwise());
        let b = schedule_tandem(&figure6_sliced());
        // Perfect pipelining: five unit slices + two fill stages = 7 units.
        assert_eq!(b.makespan, 7.0);
        // "parameter slicing reduces the communication cost by 30%" — we
        // get 4/11 ≈ 36%, comfortably above the paper's headline.
        let saving = 1.0 - b.makespan / a.makespan;
        assert!(saving >= 0.30, "saving {saving}");
    }

    #[test]
    fn tandem_stages_never_overlap_within_a_stage() {
        let s = schedule_tandem(&figure6_sliced());
        for lane in [Lane::Send, Lane::Update, Lane::Receive] {
            let mut spans: Vec<(f64, f64)> = s
                .segments
                .iter()
                .filter(|x| x.lane == lane)
                .map(|x| (x.start, x.end))
                .collect();
            spans.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0 + 1e-12, "{lane:?} overlaps: {w:?}");
            }
        }
    }

    #[test]
    fn ascii_gantt_renders_all_rows() {
        let s = schedule_sync(&PipelineSpec::figure4(), SyncOrder::Fifo);
        let art = ascii_gantt(&s, 1.0);
        assert_eq!(art.lines().count(), 9); // 3 bwd + 3 sync + 3 fwd rows
        assert!(art.contains("sync L1"));
        assert!(art.contains('#'));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_spec_rejected() {
        let spec = PipelineSpec {
            fwd: vec![1.0],
            bwd: vec![1.0, 2.0],
            sync: vec![1.0],
        };
        schedule_sync(&spec, SyncOrder::Fifo);
    }
}
