//! The event-driven cluster simulator: workers computing forward/backward
//! passes, server shards aggregating and updating, all traffic flowing
//! through the fluid network under the configured synchronization strategy.
//!
//! An optional [`FaultPlan`](crate::FaultPlan) injects stragglers, degraded
//! links, message loss, and worker crashes. Loss and crashes arm a
//! timeout/retransmit layer ([`RetryPolicy`](p3_pserver::RetryPolicy)); a
//! worker silent past the liveness timeout is dropped from the membership
//! and rounds complete with the survivors' gradients (graceful
//! degradation). The empty plan schedules no fault events and draws no
//! extra randomness, so fault-free results stay bit-identical.

#[allow(unused_imports)]
use crate::config::WireCompression;
use crate::config::{
    ClusterConfig, FaultStats, LinkUtilization, MessageStats, RunError, RunResult, UtilizationTrace,
};
use crate::egress::{EgressUnit, OutMsg};
use p3_core::{Egress, PrioQueue, PullTiming, ResponseMode, ServerProcessing};
use p3_des::{quantile, EventQueue, SimDuration, SimTime, SplitMix64};
use p3_models::BlockTiming;
use p3_net::{FlowId, MachineId, Network, NetworkConfig, Priority};
use p3_pserver::{wire_bytes, RetryDecision, ShardPlan, HEADER_BYTES};
use p3_topo::Placement;
use p3_trace::{
    ComputePhase, EndpointRole, FaultKind, MsgClass, TraceEvent, TraceHandle, TraceLog,
};
use std::collections::BTreeMap;

/// Hard cap on processed events — a run that exceeds it is wedged.
const EVENT_CAP: u64 = 500_000_000;

/// Round-membership masks are `u128` bitsets, one bit per worker.
const MAX_MACHINES: usize = 128;

/// Index of a role in per-machine `[worker, server]` state arrays.
fn role_slot(role: Role) -> usize {
    match role {
        Role::Worker => 0,
        Role::Server => 1,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Fwd(usize),
    Bwd(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Worker,
    Server,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    StartWorker {
        worker: usize,
    },
    /// `inc` is the worker's incarnation at scheduling time; events from a
    /// pre-crash incarnation are stale and ignored.
    Compute {
        worker: usize,
        phase: Phase,
        inc: u32,
    },
    EgressReady {
        machine: usize,
        role: Role,
        dst: MachineId,
        inc: u32,
    },
    /// A single-consumer egress may admit its next message (the consumer
    /// thread finished serializing the previous one).
    AdmitKick {
        machine: usize,
        role: Role,
    },
    ProcDone {
        server: usize,
    },
    NetWake,
    /// A scheduled straggler episode begins/ends on its worker.
    StragglerStart {
        idx: usize,
    },
    StragglerEnd {
        idx: usize,
    },
    /// A scheduled link degradation begins/ends on its machine.
    LinkDegradeStart {
        idx: usize,
    },
    LinkDegradeEnd {
        idx: usize,
    },
    /// A scheduled worker-process crash / restart.
    Crash {
        idx: usize,
    },
    Rejoin {
        worker: usize,
    },
    /// Retry timeout for one transmission attempt of one message.
    RetryTimer {
        msg_id: u64,
        attempt: u32,
    },
    /// The membership grace period for a crashed worker expired.
    LivenessTimeout {
        worker: usize,
    },
}

/// What an in-flight message is, resolved when its flow is delivered.
#[derive(Debug, Clone, Copy)]
enum MsgKind {
    /// Worker → server gradients for one key of one round.
    Push { key: usize, round: u64 },
    /// Server → worker updated parameters.
    Response { key: usize, version: u64 },
    /// Server → worker update notification (baseline only).
    Notify { key: usize, version: u64 },
    /// Worker → server parameter request; answered once `version[key] >=
    /// round`.
    PullReq { key: usize, round: u64 },
    /// Worker → rack-aggregator partial gradient (rack-local placement):
    /// one rack member's contribution, combined in-rack before crossing
    /// the core.
    RackPush { key: usize, round: u64 },
    /// Rack-aggregator → home server combined gradient covering the
    /// workers in `members` (a bitmask). Sums have the same wire size as
    /// one push — that is the PHub-style core-bandwidth saving.
    CombinedPush {
        key: usize,
        round: u64,
        members: u128,
    },
}

/// True for message kinds originated by the worker process (destroyed when
/// it crashes) rather than the colocated server shard.
fn worker_originated(kind: MsgKind) -> bool {
    matches!(
        kind,
        MsgKind::Push { .. } | MsgKind::PullReq { .. } | MsgKind::RackPush { .. }
    )
}

fn sender_role_of(kind: MsgKind) -> Role {
    if worker_originated(kind) {
        Role::Worker
    } else {
        Role::Server
    }
}

/// Trace vocabulary for a message kind: protocol class, slice key, and
/// round (or version, for server→worker messages).
fn class_of(kind: MsgKind) -> (MsgClass, usize, u64) {
    match kind {
        MsgKind::Push { key, round } => (MsgClass::Push, key, round),
        MsgKind::Response { key, version } => (MsgClass::Response, key, version),
        MsgKind::Notify { key, version } => (MsgClass::Notify, key, version),
        MsgKind::PullReq { key, round } => (MsgClass::PullRequest, key, round),
        MsgKind::RackPush { key, round } => (MsgClass::RackPush, key, round),
        MsgKind::CombinedPush { key, round, .. } => (MsgClass::CombinedPush, key, round),
    }
}

/// Trace vocabulary for a compute phase.
fn trace_phase(phase: Phase) -> (ComputePhase, usize) {
    match phase {
        Phase::Fwd(b) => (ComputePhase::Forward, b),
        Phase::Bwd(b) => (ComputePhase::Backward, b),
    }
}

#[derive(Debug, Clone, Copy)]
struct MsgCtx {
    kind: MsgKind,
    src: usize,
    dst: usize,
    /// Wire size, kept for retransmission.
    bytes: u64,
    /// Network priority, kept so retransmissions re-enter the egress queue
    /// at their original urgency.
    priority: Priority,
    /// Transmission attempts so far (0 = first send).
    attempt: u32,
    /// True while a flow for this message is in the network.
    in_flight: bool,
}

#[derive(Debug)]
struct WorkerState {
    iter: u64,
    completed: u64,
    received_version: Vec<u64>,
    notified_version: Vec<u64>,
    waiting_block: Option<usize>,
    /// Instant the worker stalled waiting for parameters, if stalled.
    stalled_since: Option<SimTime>,
    /// Accumulated stall time.
    stalled_total: SimDuration,
    started: bool,
    measure_start: Option<SimTime>,
    measure_end: Option<SimTime>,
    jitter: f64,
    /// Compute-time multiplier from an active straggler episode (1.0 when
    /// healthy).
    slowdown: f64,
    /// True while the worker process is down.
    crashed: bool,
    /// True if the process will never restart.
    permanently_dead: bool,
    /// Bumped at every crash; events carrying an older incarnation are
    /// stale echoes of the dead process and are dropped.
    incarnation: u32,
    /// Iteration to restart from after a rejoin: the oldest round whose
    /// push the crash destroyed (re-pushes of already-counted keys are
    /// deduplicated server-side).
    resume_iter: u64,
    /// Start instant of the iteration in progress.
    iter_started: SimTime,
    /// Durations (seconds) of iterations completed inside the measurement
    /// window, for tail quantiles.
    measured_iters: Vec<f64>,
    egress: EgressUnit,
    rng: SplitMix64,
}

#[derive(Debug)]
struct ServerState {
    /// Pending received gradient messages awaiting processing.
    proc_queue: PrioQueue<ProcItem>,
    proc_busy: bool,
    /// Per-key bitmask of workers whose push was counted this round
    /// (indexed by key; bit per worker). A mask instead of a counter so a
    /// rejoining worker's replayed pushes deduplicate.
    received: Vec<u128>,
    /// Per-key completed rounds (indexed by key).
    version: Vec<u64>,
    /// Workers whose deferred pulls await each key's next version.
    pending_pulls: Vec<Vec<usize>>,
    /// The message currently occupying the processing unit.
    current: Option<ProcItem>,
    egress: EgressUnit,
}

#[derive(Debug, Clone, Copy)]
struct ProcItem {
    key: usize,
    round: u64,
    /// Representative sender, for tracing (the pushing worker, or the
    /// aggregator machine of a combined push).
    worker: usize,
    /// Workers whose gradients this message carries: a single bit for a
    /// direct push, a whole rack's mask for a combined push.
    members: u128,
}

/// One fully configured simulation, ready to [`ClusterSim::run`].
///
/// # Examples
///
/// ```
/// use p3_cluster::{ClusterConfig, ClusterSim};
/// use p3_core::SyncStrategy;
/// use p3_models::ModelSpec;
/// use p3_net::Bandwidth;
///
/// let cfg = ClusterConfig::new(
///     ModelSpec::resnet50(),
///     SyncStrategy::p3(),
///     4,
///     Bandwidth::from_gbps(10.0),
/// ).with_iters(1, 2);
/// let result = ClusterSim::new(cfg).run();
/// assert!(result.throughput > 0.0);
/// ```
#[derive(Debug)]
pub struct ClusterSim {
    cfg: ClusterConfig,
    queue: EventQueue<Ev>,
    net: Network,
    workers: Vec<WorkerState>,
    servers: Vec<ServerState>,
    plan: ShardPlan,
    prio: Vec<u32>,
    /// Forward/backward durations per compute block for a full batch.
    block_times: Vec<BlockTiming>,
    /// Key indices per compute block, in block order.
    keys_of_block: Vec<Vec<usize>>,
    msgs: BTreeMap<u64, MsgCtx>,
    flows: BTreeMap<FlowId, u64>,
    next_msg_id: u64,
    next_wake: Option<SimTime>,
    /// Per-(machine, role) earliest next admission instant for
    /// single-consumer egress (serial per-message serialization cost).
    admit_gate: Vec<[SimTime; 2]>,
    /// Deduplication of scheduled AdmitKick events.
    admit_kick_at: Vec<[Option<SimTime>; 2]>,
    events: u64,
    stats: MessageStats,
    /// Dedicated RNG stream for message-loss draws, independent of the
    /// placement/jitter streams so enabling loss perturbs nothing else.
    loss_rng: SplitMix64,
    /// Workers evicted from the aggregation membership after a liveness
    /// timeout; servers neither expect their pushes nor send to them.
    dead_members: Vec<bool>,
    /// Pushes required to complete a round (live membership size).
    expected_pushes: u32,
    faults: FaultStats,
    /// Slice-lifecycle event recorder, present only when
    /// [`ClusterConfig::slice_trace`] is set. Recording draws no
    /// randomness and schedules nothing, so results are bit-identical with
    /// it on or off.
    tracer: Option<TraceHandle>,
    /// Partial-sum state of rack-local aggregation: (aggregator machine,
    /// key, round) → mask of rack members whose gradient has arrived.
    rack_agg: BTreeMap<(usize, usize, u64), u128>,
    /// A configuration contradiction detected during construction,
    /// surfaced as [`RunError::InvalidConfig`] when the run starts
    /// (construction itself is infallible).
    config_error: Option<String>,
}

impl ClusterSim {
    /// Builds the simulation state for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero machines, zero
    /// batch).
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(cfg.machines > 0, "at least one machine required");
        assert!(cfg.batch_per_worker > 0, "zero batch");
        let mut config_error = None;
        let mut plan = cfg.strategy.plan(&cfg.model, cfg.machines, cfg.seed);
        let topology_ok = match &cfg.topology {
            Some(t) if t.machines() != cfg.machines => {
                config_error = Some(format!(
                    "topology covers {} machines but the cluster has {}",
                    t.machines(),
                    cfg.machines
                ));
                false
            }
            Some(_) => true,
            None => false,
        };
        if topology_ok {
            let topo = cfg.topology.as_ref().expect("checked above");
            plan.map_servers(|s| cfg.placement.place_server(s, topo));
        }
        let prio = cfg.strategy.priorities(&plan);
        let block_times = cfg.compute.block_times(&cfg.model, cfg.batch_per_worker);

        // Map arrays to compute blocks, then keys to blocks.
        let mut block_of_array = Vec::new();
        for (b, blk) in cfg.model.blocks().iter().enumerate() {
            for _ in &blk.arrays {
                block_of_array.push(b);
            }
        }
        let mut keys_of_block: Vec<Vec<usize>> = vec![Vec::new(); cfg.model.blocks().len()];
        for (k, s) in plan.slices().iter().enumerate() {
            keys_of_block[block_of_array[s.array]].push(k);
        }

        let net_cfg = {
            let mut c = NetworkConfig::new(cfg.machines, cfg.bandwidth)
                .with_latency(cfg.latency)
                .with_efficiency(cfg.net_efficiency)
                .with_flow_cap(cfg.flow_cap);
            if let Some(bin) = cfg.trace_bin {
                c = c.with_trace(bin);
            }
            if topology_ok {
                let topo = cfg.topology.as_ref().expect("checked above");
                c = c.with_link_graph(topo.compile(cfg.bandwidth));
            }
            c
        };

        let num_keys = plan.num_keys();
        let mk_worker_egress = || match cfg.strategy.egress {
            Egress::SingleConsumer => EgressUnit::single(cfg.machines),
            Egress::PerServerFifo => EgressUnit::per_dest(cfg.machines),
        };
        let mut rng = SplitMix64::new(cfg.seed ^ 0xC0FF_EE00);
        let workers = (0..cfg.machines)
            .map(|_| WorkerState {
                iter: 0,
                completed: 0,
                received_version: vec![0; num_keys],
                notified_version: vec![0; num_keys],
                waiting_block: None,
                stalled_since: None,
                stalled_total: SimDuration::ZERO,
                started: false,
                measure_start: None,
                measure_end: None,
                jitter: 1.0,
                slowdown: 1.0,
                crashed: false,
                permanently_dead: false,
                incarnation: 0,
                resume_iter: 0,
                iter_started: SimTime::ZERO,
                measured_iters: Vec::new(),
                egress: mk_worker_egress(),
                rng: rng.fork(),
            })
            .collect();
        let servers = (0..cfg.machines)
            .map(|_| ServerState {
                proc_queue: PrioQueue::new(),
                proc_busy: false,
                received: vec![0; num_keys],
                version: vec![0; num_keys],
                pending_pulls: vec![Vec::new(); num_keys],
                current: None,
                egress: mk_worker_egress(),
            })
            .collect();

        let tracer = cfg.slice_trace.then(TraceHandle::default);
        let mut net = Network::new(net_cfg);
        if let Some(t) = &tracer {
            net.set_tracer(t.clone());
        }

        ClusterSim {
            queue: EventQueue::new(),
            net,
            workers,
            servers,
            plan,
            prio,
            block_times,
            keys_of_block,
            msgs: BTreeMap::new(),
            flows: BTreeMap::new(),
            next_msg_id: 0,
            next_wake: None,
            admit_gate: vec![[SimTime::ZERO; 2]; cfg.machines],
            admit_kick_at: vec![[None; 2]; cfg.machines],
            events: 0,
            stats: MessageStats::default(),
            loss_rng: SplitMix64::new(cfg.seed ^ 0x10_55_10_55),
            dead_members: vec![false; cfg.machines],
            expected_pushes: cfg.machines as u32,
            faults: FaultStats::default(),
            tracer,
            rack_agg: BTreeMap::new(),
            config_error,
            cfg,
        }
    }

    /// Runs to completion and reports measured throughput.
    ///
    /// # Panics
    ///
    /// Panics on any [`RunError`]: an invalid fault plan, a deadlocked
    /// simulation, or an exceeded event cap. Sweeps over possibly-bad
    /// configurations should prefer [`ClusterSim::try_run`].
    pub fn run(self) -> RunResult {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs to completion, returning a structured error instead of
    /// panicking when the configuration is invalid or the run wedges.
    pub fn try_run(self) -> Result<RunResult, RunError> {
        self.try_run_traced().map(|(result, _)| result)
    }

    /// Runs to completion, returning the measured result together with the
    /// recorded slice-lifecycle trace (present when
    /// [`ClusterConfig::slice_trace`] is set).
    ///
    /// # Panics
    ///
    /// Panics on any [`RunError`], like [`ClusterSim::run`].
    pub fn run_traced(self) -> (RunResult, Option<TraceLog>) {
        self.try_run_traced().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`ClusterSim::try_run`], additionally returning the recorded
    /// trace when tracing is enabled.
    pub fn try_run_traced(mut self) -> Result<(RunResult, Option<TraceLog>), RunError> {
        if self.cfg.machines > MAX_MACHINES {
            return Err(RunError::InvalidConfig(format!(
                "{} machines exceeds the {MAX_MACHINES}-machine membership mask",
                self.cfg.machines
            )));
        }
        if let Some(why) = self.config_error.take() {
            return Err(RunError::InvalidConfig(why));
        }
        self.cfg
            .faults
            .validate(self.cfg.machines)
            .map_err(RunError::InvalidConfig)?;
        if self.cfg.topology.is_some()
            && self.cfg.placement == Placement::RackLocal
            && (self.cfg.faults.loss_probability > 0.0 || !self.cfg.faults.crashes.is_empty())
        {
            return Err(RunError::InvalidConfig(
                "rack-local aggregation does not support message loss or worker crashes".into(),
            ));
        }

        let target = self.cfg.warmup_iters + self.cfg.measure_iters;
        // Staggered worker starts model real cluster skew.
        let mut rng = SplitMix64::new(self.cfg.seed ^ 0x051A_66E2);
        for w in 0..self.cfg.machines {
            let off = SimDuration::from_nanos(
                (rng.next_f64() * self.cfg.start_stagger.as_nanos() as f64) as u64,
            );
            self.queue
                .schedule_at(SimTime::ZERO + off, Ev::StartWorker { worker: w });
        }
        self.schedule_fault_plan();

        while self
            .workers
            .iter()
            .any(|w| !w.permanently_dead && w.completed < target)
        {
            let Some((_, ev)) = self.queue.pop() else {
                return Err(RunError::Deadlock {
                    progress: self.workers.iter().map(|w| w.completed).collect(),
                });
            };
            self.events += 1;
            if self.events >= EVENT_CAP {
                return Err(RunError::EventCapExceeded { cap: EVENT_CAP });
            }
            self.dispatch(ev);
        }

        let log = self.tracer.as_ref().map(|t| t.drain());
        if self.cfg.audit {
            let Some(log) = &log else {
                return Err(RunError::InvalidConfig(
                    "audit requested but slice tracing is off (use with_audit)".into(),
                ));
            };
            let opts = p3_audit::AuditOptions::from_meta(&self.cfg.trace_meta());
            let report = p3_audit::check_with(log, &opts);
            if !report.is_clean() {
                return Err(RunError::AuditFailed(report.to_string()));
            }
        }
        Ok((self.finish(target), log))
    }

    /// Schedules every episode of the fault plan. An empty plan schedules
    /// nothing at all — fault-free runs pay zero overhead.
    fn schedule_fault_plan(&mut self) {
        for (i, s) in self.cfg.faults.stragglers.iter().enumerate() {
            self.queue
                .schedule_at(s.start, Ev::StragglerStart { idx: i });
            self.queue
                .schedule_at(s.start + s.duration, Ev::StragglerEnd { idx: i });
        }
        for (i, d) in self.cfg.faults.link_degradations.iter().enumerate() {
            self.queue
                .schedule_at(d.start, Ev::LinkDegradeStart { idx: i });
            self.queue
                .schedule_at(d.start + d.duration, Ev::LinkDegradeEnd { idx: i });
        }
        for (i, c) in self.cfg.faults.crashes.iter().enumerate() {
            self.queue.schedule_at(c.at, Ev::Crash { idx: i });
        }
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::StartWorker { worker } => {
                let now = self.queue.now();
                if self.workers[worker].crashed {
                    // Crashed before ever starting; Rejoin boots it.
                    return;
                }
                let w = &mut self.workers[worker];
                w.started = true;
                w.iter_started = now;
                if self.cfg.warmup_iters == 0 {
                    w.measure_start = Some(now);
                }
                self.resample_jitter(worker);
                self.try_start_fwd(worker, 0);
            }
            Ev::Compute { worker, phase, inc } => {
                if self.workers[worker].incarnation != inc {
                    return; // echo of a crashed incarnation
                }
                let (tp, block) = trace_phase(phase);
                self.trace(TraceEvent::ComputeEnd {
                    worker,
                    phase: tp,
                    block,
                });
                match phase {
                    Phase::Fwd(b) => self.on_fwd_done(worker, b),
                    Phase::Bwd(b) => self.on_bwd_done(worker, b),
                }
            }
            Ev::EgressReady {
                machine,
                role,
                dst,
                inc,
            } => {
                if role == Role::Worker && self.workers[machine].incarnation != inc {
                    return; // the egress unit this completion refers to is gone
                }
                match role {
                    Role::Worker => self.workers[machine].egress.complete(dst),
                    Role::Server => self.servers[machine].egress.complete(dst),
                }
                self.kick_egress(machine, role);
            }
            Ev::AdmitKick { machine, role } => {
                let now = self.queue.now();
                let slot = role_slot(role);
                if self.admit_kick_at[machine][slot] == Some(now) {
                    self.admit_kick_at[machine][slot] = None;
                }
                self.kick_egress(machine, role);
            }
            Ev::ProcDone { server } => self.on_proc_done(server),
            Ev::NetWake => {
                let now = self.queue.now();
                if self.next_wake == Some(now) {
                    self.next_wake = None;
                }
                let done = self.net.poll(now);
                for flow in done {
                    let msg_id = self
                        .flows
                        .remove(&flow.id)
                        .expect("completed flow without a registered message");
                    self.on_delivered(msg_id);
                }
                self.schedule_net_wake();
            }
            Ev::StragglerStart { idx } => {
                let s = self.cfg.faults.stragglers[idx];
                self.workers[s.worker].slowdown = s.slowdown;
            }
            Ev::StragglerEnd { idx } => {
                let s = self.cfg.faults.stragglers[idx];
                self.workers[s.worker].slowdown = 1.0;
            }
            Ev::LinkDegradeStart { idx } => {
                let d = self.cfg.faults.link_degradations[idx];
                let now = self.queue.now();
                self.net.set_port_scale(
                    now,
                    MachineId(d.machine),
                    d.capacity_factor,
                    d.capacity_factor,
                );
                self.schedule_net_wake();
            }
            Ev::LinkDegradeEnd { idx } => {
                let d = self.cfg.faults.link_degradations[idx];
                let now = self.queue.now();
                self.net.set_port_scale(now, MachineId(d.machine), 1.0, 1.0);
                self.schedule_net_wake();
            }
            Ev::Crash { idx } => self.on_crash(idx),
            Ev::Rejoin { worker } => self.on_rejoin(worker),
            Ev::RetryTimer { msg_id, attempt } => self.on_retry_timer(msg_id, attempt),
            Ev::LivenessTimeout { worker } => self.on_liveness_timeout(worker),
        }
    }

    // ------------------------------------------------------------------
    // Tracing.

    /// Records one event at the current simulated time. With tracing off
    /// this is a single branch; recording draws no randomness and
    /// schedules nothing, preserving determinism either way.
    #[inline]
    fn trace(&self, event: TraceEvent) {
        if let Some(t) = &self.tracer {
            t.record(self.queue.now(), event);
        }
    }

    /// Records one fault event.
    fn trace_fault(&self, kind: FaultKind, machine: usize, msg_id: Option<u64>) {
        self.trace(TraceEvent::Fault {
            kind,
            machine,
            msg_id,
        });
    }

    /// Enqueues `msg` on an endpoint's egress, recording the enqueue (with
    /// the post-enqueue queue depth and priority) when tracing.
    fn enqueue_traced(
        &mut self,
        machine: usize,
        role: Role,
        msg: OutMsg,
        class: MsgClass,
        key: usize,
        round: u64,
    ) {
        match role {
            Role::Worker => self.workers[machine].egress.enqueue(msg),
            Role::Server => self.servers[machine].egress.enqueue(msg),
        }
        if self.tracer.is_some() {
            let queue_depth = match role {
                Role::Worker => self.workers[machine].egress.backlog(),
                Role::Server => self.servers[machine].egress.backlog(),
            };
            let erole = match role {
                Role::Worker => EndpointRole::Worker,
                Role::Server => EndpointRole::Server,
            };
            self.trace(TraceEvent::EgressEnqueue {
                machine,
                role: erole,
                msg_id: msg.msg_id,
                class,
                key,
                round,
                priority: msg.priority.0,
                queue_depth,
            });
        }
    }

    // ------------------------------------------------------------------
    // Worker compute.

    /// Combined compute-time multiplier: calibrated jitter times any active
    /// straggler slowdown.
    fn compute_scale(&self, worker: usize) -> f64 {
        self.workers[worker].jitter * self.workers[worker].slowdown
    }

    fn schedule_compute(&mut self, worker: usize, dur: SimDuration, phase: Phase) {
        let (tp, block) = trace_phase(phase);
        self.trace(TraceEvent::ComputeStart {
            worker,
            phase: tp,
            block,
        });
        let inc = self.workers[worker].incarnation;
        self.queue
            .schedule_in(dur, Ev::Compute { worker, phase, inc });
    }

    fn fwd_ready(&self, worker: usize, block: usize) -> bool {
        let need = self.workers[worker].iter;
        self.keys_of_block[block]
            .iter()
            .all(|&k| self.workers[worker].received_version[k] >= need)
    }

    fn try_start_fwd(&mut self, worker: usize, block: usize) {
        let now = self.queue.now();
        if self.fwd_ready(worker, block) {
            let was_stalled = {
                let w = &mut self.workers[worker];
                w.waiting_block = None;
                match w.stalled_since.take() {
                    Some(since) => {
                        w.stalled_total += now - since;
                        true
                    }
                    None => false,
                }
            };
            if was_stalled {
                self.trace(TraceEvent::StallEnd { worker, block });
            }
            if self.tracer.is_some() {
                let round = self.workers[worker].iter;
                for k in self.keys_of_block[block].clone() {
                    self.trace(TraceEvent::SliceConsumed {
                        worker,
                        key: k,
                        round,
                    });
                }
            }
            let dur = self.block_times[block]
                .fwd
                .mul_f64(self.compute_scale(worker));
            self.schedule_compute(worker, dur, Phase::Fwd(block));
        } else {
            let newly_stalled = {
                let w = &mut self.workers[worker];
                w.waiting_block = Some(block);
                if w.stalled_since.is_none() {
                    w.stalled_since = Some(now);
                    true
                } else {
                    false
                }
            };
            if newly_stalled {
                self.trace(TraceEvent::StallStart { worker, block });
            }
        }
    }

    fn on_fwd_done(&mut self, worker: usize, block: usize) {
        let last = self.block_times.len() - 1;
        if block < last {
            self.try_start_fwd(worker, block + 1);
        } else {
            let dur = self.block_times[last]
                .bwd
                .mul_f64(self.compute_scale(worker));
            self.schedule_compute(worker, dur, Phase::Bwd(last));
        }
    }

    fn on_bwd_done(&mut self, worker: usize, block: usize) {
        // Gradients for every array of this block are now ready: hand their
        // slices to the synchronization strategy (enqueue pushes).
        let round = self.workers[worker].iter;
        let keys: Vec<usize> = self.keys_of_block[block].clone();
        for k in keys {
            let slice = self.plan.slice(p3_pserver::Key(k as u64));
            let server = slice.server.0;
            let bytes = self.push_wire(slice.params);
            let priority = Priority(self.prio[k]);
            self.trace(TraceEvent::GradReady {
                worker,
                key: k,
                round,
                priority: priority.0,
            });
            let (dst, kind, class) = match self.rack_push_target(worker, server) {
                Some(agg) => (agg, MsgKind::RackPush { key: k, round }, MsgClass::RackPush),
                None => (server, MsgKind::Push { key: k, round }, MsgClass::Push),
            };
            let msg = OutMsg {
                dst: MachineId(dst),
                bytes,
                priority,
                msg_id: self.register_msg(kind, worker, dst, bytes, priority),
            };
            self.enqueue_traced(worker, Role::Worker, msg, class, k, round);
        }
        self.kick_egress(worker, Role::Worker);

        if block > 0 {
            let dur = self.block_times[block - 1]
                .bwd
                .mul_f64(self.compute_scale(worker));
            self.schedule_compute(worker, dur, Phase::Bwd(block - 1));
        } else {
            self.on_iteration_complete(worker);
        }
    }

    fn on_iteration_complete(&mut self, worker: usize) {
        let now = self.queue.now();
        let warmup = self.cfg.warmup_iters;
        let target = warmup + self.cfg.measure_iters;
        let w = &mut self.workers[worker];
        w.completed += 1;
        w.iter += 1;
        let dur = (now - w.iter_started).as_secs_f64();
        w.iter_started = now;
        if w.completed > warmup && w.completed <= target {
            w.measured_iters.push(dur);
        }
        if w.completed == warmup && w.measure_start.is_none() {
            w.measure_start = Some(now);
        }
        if w.completed == target && w.measure_end.is_none() {
            w.measure_end = Some(now);
        }
        let completed = w.completed;
        self.trace(TraceEvent::IterationEnd {
            worker,
            iter: completed,
        });
        self.resample_jitter(worker);

        // TensorFlow-style: the next graph execution issues recv ops for
        // every parameter now.
        if self.cfg.strategy.pull_timing == PullTiming::NextIterationStart {
            let round = self.workers[worker].iter;
            for k in 0..self.plan.num_keys() {
                if self.workers[worker].received_version[k] < round {
                    self.send_pull_request(worker, k, round);
                }
            }
            self.kick_egress(worker, Role::Worker);
        }
        self.try_start_fwd(worker, 0);
    }

    fn resample_jitter(&mut self, worker: usize) {
        let frac = self.cfg.model.iteration_jitter();
        let w = &mut self.workers[worker];
        w.jitter = if frac > 0.0 {
            (1.0 + w.rng.normal() * frac).clamp(0.5, 2.0)
        } else {
            1.0
        };
    }

    // ------------------------------------------------------------------
    // Messaging.

    /// Wire size of a gradient push for `params` parameters, after any
    /// configured compression.
    fn push_wire(&self, params: u64) -> u64 {
        match self.cfg.wire_compression {
            Some(c) => HEADER_BYTES as u64 + ((4 * params) as f64 / c.push_ratio).ceil() as u64,
            None => wire_bytes(params),
        }
    }

    /// Wire size of a parameter response, after any configured compression.
    fn response_wire(&self, params: u64) -> u64 {
        match self.cfg.wire_compression {
            Some(c) => HEADER_BYTES as u64 + ((4 * params) as f64 / c.response_ratio).ceil() as u64,
            None => wire_bytes(params),
        }
    }

    /// The rack aggregator a worker's push detours through under
    /// rack-local placement: set only when the key's home server is in a
    /// different rack, so the rack's combined gradient crosses the core
    /// once instead of once per member. Pushes within the home rack (and
    /// everything outside rack-local placement) go direct.
    fn rack_push_target(&self, worker: usize, server: usize) -> Option<usize> {
        let topo = self.cfg.topology.as_ref()?;
        if self.cfg.placement != Placement::RackLocal || topo.machines() != self.cfg.machines {
            return None;
        }
        let rack = topo.rack_of(worker);
        (topo.rack_of(server) != rack).then(|| topo.aggregator_of(rack))
    }

    /// One rack member's partial gradient arrived at its rack aggregator.
    /// Combining is treated as free (it overlaps the remaining members'
    /// transfers); once the whole rack has contributed, the combined
    /// gradient is forwarded to the key's home server through the
    /// aggregator machine's server-role egress.
    fn on_rack_push(&mut self, agg: usize, key: usize, round: u64, from: usize) {
        let topo = self
            .cfg
            .topology
            .as_ref()
            .expect("rack push without a topology");
        let rack = topo.rack_of(agg);
        let full: u128 = topo.rack_members(rack).fold(0, |m, w| m | (1u128 << w));
        let entry = self.rack_agg.entry((agg, key, round)).or_insert(0);
        *entry |= 1u128 << from;
        if *entry != full {
            return;
        }
        let members = self
            .rack_agg
            .remove(&(agg, key, round))
            .expect("rack entry just updated");
        let slice = self.plan.slice(p3_pserver::Key(key as u64));
        let server = slice.server.0;
        let bytes = self.push_wire(slice.params);
        let priority = Priority(self.prio[key]);
        let msg = OutMsg {
            dst: MachineId(server),
            bytes,
            priority,
            msg_id: self.register_msg(
                MsgKind::CombinedPush {
                    key,
                    round,
                    members,
                },
                agg,
                server,
                bytes,
                priority,
            ),
        };
        self.enqueue_traced(agg, Role::Server, msg, MsgClass::CombinedPush, key, round);
        self.kick_egress(agg, Role::Server);
    }

    fn register_msg(
        &mut self,
        kind: MsgKind,
        src: usize,
        dst: usize,
        bytes: u64,
        priority: Priority,
    ) -> u64 {
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        self.msgs.insert(
            id,
            MsgCtx {
                kind,
                src,
                dst,
                bytes,
                priority,
                attempt: 0,
                in_flight: false,
            },
        );
        id
    }

    fn send_pull_request(&mut self, worker: usize, key: usize, round: u64) {
        let slice = self.plan.slice(p3_pserver::Key(key as u64));
        let bytes = HEADER_BYTES as u64;
        let priority = Priority(self.prio[key]);
        let msg = OutMsg {
            dst: MachineId(slice.server.0),
            bytes,
            priority,
            msg_id: self.register_msg(
                MsgKind::PullReq { key, round },
                worker,
                slice.server.0,
                bytes,
                priority,
            ),
        };
        self.enqueue_traced(worker, Role::Worker, msg, MsgClass::PullRequest, key, round);
    }

    /// Arms the retry timer for a just-admitted message. Only called when
    /// the fault plan can lose messages; fault-free runs never schedule
    /// retry events.
    fn note_admitted(&mut self, msg_id: u64, now: SimTime) {
        if !self.cfg.faults.needs_reliability() {
            return;
        }
        let Some(ctx) = self.msgs.get_mut(&msg_id) else {
            return;
        };
        ctx.in_flight = true;
        let attempt = ctx.attempt;
        let timeout = self.cfg.retry.timeout_for(attempt);
        self.queue
            .schedule_at(now + timeout, Ev::RetryTimer { msg_id, attempt });
    }

    /// Starts any transmissions an endpoint's scheduler allows.
    ///
    /// Per-destination (baseline) lanes transmit whenever idle — each
    /// connection has its own sender thread in MXNet. A single-consumer
    /// (P3) endpoint serializes per-message work on one thread: it admits
    /// at most one message per `msg_overhead`, modelling the consumer's
    /// serialization/syscall cost — the source of Figure 12's small-slice
    /// falloff.
    fn kick_egress(&mut self, machine: usize, role: Role) {
        if role == Role::Worker && self.workers[machine].crashed {
            return; // a dead process transmits nothing
        }
        let now = self.queue.now();
        let single = {
            let unit = match role {
                Role::Worker => &self.workers[machine].egress,
                Role::Server => &self.servers[machine].egress,
            };
            matches!(unit, EgressUnit::Single { .. })
        };
        if single {
            let slot = role_slot(role);
            let gate = self.admit_gate[machine][slot];
            if now < gate {
                self.schedule_admit_kick(machine, role, gate);
            } else {
                let admitted = match role {
                    Role::Worker => self.workers[machine].egress.start_one(),
                    Role::Server => self.servers[machine].egress.start_one(),
                };
                if let Some(m) = admitted {
                    let flow = self.net.start_flow(
                        now,
                        MachineId(machine),
                        m.dst,
                        m.bytes,
                        m.priority,
                        m.msg_id,
                    );
                    self.flows.insert(flow, m.msg_id);
                    self.note_admitted(m.msg_id, now);
                    let next = now + self.cfg.msg_overhead;
                    self.admit_gate[machine][slot] = next;
                    let backlog = match role {
                        Role::Worker => self.workers[machine].egress.backlog(),
                        Role::Server => self.servers[machine].egress.backlog(),
                    };
                    if backlog > 0 {
                        self.schedule_admit_kick(machine, role, next);
                    }
                }
            }
        } else {
            let ready = match role {
                Role::Worker => self.workers[machine].egress.start_ready(),
                Role::Server => self.servers[machine].egress.start_ready(),
            };
            for m in ready {
                let flow = self.net.start_flow(
                    now,
                    MachineId(machine),
                    m.dst,
                    m.bytes,
                    m.priority,
                    m.msg_id,
                );
                self.flows.insert(flow, m.msg_id);
                self.note_admitted(m.msg_id, now);
            }
        }
        self.schedule_net_wake();
    }

    fn schedule_admit_kick(&mut self, machine: usize, role: Role, at: SimTime) {
        let slot = role_slot(role);
        if self.admit_kick_at[machine][slot].is_none_or(|t| at < t) {
            self.queue.schedule_at(at, Ev::AdmitKick { machine, role });
            self.admit_kick_at[machine][slot] = Some(at);
        }
    }

    fn schedule_net_wake(&mut self) {
        if let Some(t) = self.net.next_event_time() {
            if self.next_wake.is_none_or(|w| t < w) {
                self.queue.schedule_at(t, Ev::NetWake);
                self.next_wake = Some(t);
            }
        }
    }

    fn on_delivered(&mut self, msg_id: u64) {
        let ctx = *self
            .msgs
            .get(&msg_id)
            .expect("delivery for unknown message");
        let now = self.queue.now();

        // Free the sender: its NIC finished transmitting whether or not the
        // message survives the network or finds its receiver alive.
        // Single-consumer units release their window slot immediately
        // (their per-message cost was charged at admission);
        // per-destination lanes pay the endpoint overhead before reuse.
        let sender_role = sender_role_of(ctx.kind);
        let sender_single = {
            let unit = match sender_role {
                Role::Worker => &self.workers[ctx.src].egress,
                Role::Server => &self.servers[ctx.src].egress,
            };
            matches!(unit, EgressUnit::Single { .. })
        };
        if sender_single {
            match sender_role {
                Role::Worker => self.workers[ctx.src].egress.complete(MachineId(ctx.dst)),
                Role::Server => self.servers[ctx.src].egress.complete(MachineId(ctx.dst)),
            }
            self.kick_egress(ctx.src, sender_role);
        } else {
            let inc = match sender_role {
                Role::Worker => self.workers[ctx.src].incarnation,
                Role::Server => 0,
            };
            self.queue.schedule_at(
                now + self.cfg.msg_overhead,
                Ev::EgressReady {
                    machine: ctx.src,
                    role: sender_role,
                    dst: MachineId(ctx.dst),
                    inc,
                },
            );
        }

        // Lossy network: the message died in the fabric. Keep its context
        // (marked not-in-flight) so the retry timer retransmits it.
        // Loopback traffic never touches the fabric and cannot be lost.
        if self.cfg.faults.loss_probability > 0.0
            && ctx.src != ctx.dst
            && self.loss_rng.next_f64() < self.cfg.faults.loss_probability
        {
            self.faults.messages_lost += 1;
            self.trace_fault(FaultKind::Loss, ctx.src, Some(msg_id));
            self.msgs
                .get_mut(&msg_id)
                .expect("lost message context vanished")
                .in_flight = false;
            return;
        }
        self.msgs.remove(&msg_id);

        // Deliveries to a crashed worker vanish at the dead endpoint. (The
        // colocated server shard stays alive, so server-bound messages
        // always land.)
        let worker_bound = matches!(ctx.kind, MsgKind::Response { .. } | MsgKind::Notify { .. });
        if worker_bound && self.workers[ctx.dst].crashed {
            return;
        }

        match ctx.kind {
            MsgKind::Push { key, round } => {
                self.stats.pushes += 1;
                self.enqueue_proc(ctx.dst, key, round, ctx.src, 1u128 << ctx.src);
            }
            MsgKind::RackPush { key, round } => {
                self.stats.rack_pushes += 1;
                self.on_rack_push(ctx.dst, key, round, ctx.src);
            }
            MsgKind::CombinedPush {
                key,
                round,
                members,
            } => {
                self.stats.combined_pushes += 1;
                self.enqueue_proc(ctx.dst, key, round, ctx.src, members);
            }
            MsgKind::PullReq { key, round } => {
                self.stats.pull_requests += 1;
                let server = ctx.dst;
                if self.servers[server].version[key] >= round {
                    self.send_response(server, key, ctx.src);
                    self.kick_egress(server, Role::Server);
                } else {
                    self.servers[server].pending_pulls[key].push(ctx.src);
                }
            }
            MsgKind::Response { key, version } => {
                self.stats.responses += 1;
                let w = &mut self.workers[ctx.dst];
                if version > w.received_version[key] {
                    w.received_version[key] = version;
                }
                self.recheck_waiting(ctx.dst);
            }
            MsgKind::Notify { key, version } => {
                self.stats.notifies += 1;
                self.on_notify(ctx.dst, key, version);
            }
        }
    }

    /// Queues a received gradient message (direct or combined) on a
    /// server's processing unit at the strategy's processing priority.
    fn enqueue_proc(&mut self, server: usize, key: usize, round: u64, from: usize, members: u128) {
        let prio = match self.cfg.strategy.server_processing {
            ServerProcessing::Priority => self.prio[key],
            ServerProcessing::Fifo => 0,
        };
        self.servers[server].proc_queue.push(
            prio,
            ProcItem {
                key,
                round,
                worker: from,
                members,
            },
        );
        self.kick_proc(server);
    }

    fn on_notify(&mut self, worker: usize, key: usize, version: u64) {
        {
            let w = &mut self.workers[worker];
            if version > w.notified_version[key] {
                w.notified_version[key] = version;
            }
        }
        // MXNet pulls a layer only once every one of its parts has
        // notified (§4.2 explains why P3 removes this).
        let array = self.plan.slice(p3_pserver::Key(key as u64)).array;
        let keys = self.plan.slices_of_array(array).to_vec();
        let all_notified = keys
            .iter()
            .all(|&k| self.workers[worker].notified_version[k] >= version);
        if all_notified && self.cfg.strategy.pull_timing == PullTiming::Eager {
            for &k in &keys {
                if self.workers[worker].received_version[k] < version
                    && self.workers[worker].notified_version[k] >= version
                {
                    self.send_pull_request(worker, k, version);
                }
            }
            self.kick_egress(worker, Role::Worker);
        }
    }

    fn recheck_waiting(&mut self, worker: usize) {
        if let Some(b) = self.workers[worker].waiting_block {
            if self.fwd_ready(worker, b) {
                self.try_start_fwd(worker, b);
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault handling.

    fn on_retry_timer(&mut self, msg_id: u64, attempt: u32) {
        let now = self.queue.now();
        let Some(ctx) = self.msgs.get(&msg_id) else {
            return; // delivered or discarded in the meantime
        };
        if ctx.attempt != attempt {
            return; // an older attempt's timer; a newer one is armed
        }
        if ctx.in_flight {
            // Still transiting a slow network: spurious timeout, wait more.
            let timeout = self.cfg.retry.timeout_for(attempt);
            self.queue
                .schedule_at(now + timeout, Ev::RetryTimer { msg_id, attempt });
            return;
        }
        // The message was lost. The policy decides: retransmit, or abandon
        // it once the retry budget is spent. Either way the decision is
        // mirrored into the trace so aggregate fault counters can be
        // cross-checked against per-event counts.
        let sender = ctx.src;
        let decision = self.cfg.retry.decide(attempt);
        if let Some(t) = &self.tracer {
            decision.record(&mut t.clone(), now, sender, msg_id);
        }
        match decision {
            RetryDecision::GiveUp => {
                self.msgs.remove(&msg_id);
                self.faults.gave_up += 1;
            }
            RetryDecision::Retransmit { .. } => {
                let (src, dst, bytes, priority, kind) = {
                    let ctx = self.msgs.get_mut(&msg_id).expect("retry context vanished");
                    ctx.attempt += 1;
                    (ctx.src, ctx.dst, ctx.bytes, ctx.priority, ctx.kind)
                };
                self.faults.retransmits += 1;
                let role = sender_role_of(kind);
                let (class, key, round) = class_of(kind);
                // Re-entering the egress queue at the original priority
                // keeps the single consumer's strict priority order intact.
                let msg = OutMsg {
                    dst: MachineId(dst),
                    bytes,
                    priority,
                    msg_id,
                };
                self.enqueue_traced(src, role, msg, class, key, round);
                self.kick_egress(src, role);
            }
        }
    }

    fn fresh_worker_egress(&self) -> EgressUnit {
        match self.cfg.strategy.egress {
            Egress::SingleConsumer => EgressUnit::single(self.cfg.machines),
            Egress::PerServerFifo => EgressUnit::per_dest(self.cfg.machines),
        }
    }

    fn on_crash(&mut self, idx: usize) {
        let c = self.cfg.faults.crashes[idx];
        let now = self.queue.now();
        let w = c.worker;

        // Cancel the dead process's in-network transmissions and reclaim
        // their bandwidth.
        let doomed: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|&(_, mid)| {
                let ctx = &self.msgs[mid];
                ctx.src == w && worker_originated(ctx.kind)
            })
            .map(|(&f, _)| f)
            .collect();
        self.trace_fault(FaultKind::Crash, w, None);
        for flow in doomed {
            let cancelled = self.net.cancel_flow(now, flow);
            debug_assert!(cancelled, "registered flow unknown to the network");
            let mid = self.flows.remove(&flow);
            self.faults.flows_cancelled += 1;
            self.trace_fault(FaultKind::FlowCancelled, w, mid);
        }

        // Discard every worker-originated message (queued or formerly in
        // flight) and roll the restart point back to the oldest round whose
        // push was destroyed — on rejoin that iteration is redone, and
        // servers deduplicate the replayed keys they already counted.
        let mut resume = self.workers[w].iter;
        self.msgs.retain(|_, ctx| {
            if ctx.src == w && worker_originated(ctx.kind) {
                if let MsgKind::Push { round, .. } = ctx.kind {
                    resume = resume.min(round);
                }
                false
            } else {
                true
            }
        });

        let fresh = self.fresh_worker_egress();
        let stall_ended = {
            let ws = &mut self.workers[w];
            ws.crashed = true;
            ws.incarnation += 1;
            ws.resume_iter = resume;
            let blk = ws.waiting_block.take();
            let stalled = ws.stalled_since.take().map(|since| {
                ws.stalled_total += now - since;
            });
            ws.egress = fresh;
            stalled.and(blk)
        };
        if let Some(b) = stall_ended {
            self.trace(TraceEvent::StallEnd {
                worker: w,
                block: b,
            });
        }
        self.admit_gate[w][role_slot(Role::Worker)] = SimTime::ZERO;
        self.admit_kick_at[w][role_slot(Role::Worker)] = None;

        match c.rejoin_after {
            None => self.workers[w].permanently_dead = true,
            Some(after) => self
                .queue
                .schedule_at(now + after, Ev::Rejoin { worker: w }),
        }
        self.queue.schedule_at(
            now + self.cfg.liveness_timeout,
            Ev::LivenessTimeout { worker: w },
        );
        self.schedule_net_wake();
    }

    fn on_rejoin(&mut self, worker: usize) {
        let now = self.queue.now();
        self.trace_fault(FaultKind::Rejoin, worker, None);
        if self.dead_members[worker] {
            // Re-admit to the membership; rounds require its pushes again.
            self.dead_members[worker] = false;
            self.expected_pushes += 1;
        }
        let w = &mut self.workers[worker];
        let resume = w.resume_iter;
        w.crashed = false;
        w.iter = resume;
        w.completed = resume;
        w.waiting_block = None;
        w.stalled_since = None;
        w.iter_started = now;
        if !w.started {
            w.started = true;
            if self.cfg.warmup_iters == 0 && w.measure_start.is_none() {
                w.measure_start = Some(now);
            }
        }
        self.resample_jitter(worker);
        // Re-sync: the restarted process pulls the current state of every
        // key (servers answer immediately with their latest version, or
        // defer until the resumed round completes).
        for k in 0..self.plan.num_keys() {
            self.send_pull_request(worker, k, resume);
        }
        self.kick_egress(worker, Role::Worker);
        self.try_start_fwd(worker, 0);
    }

    fn on_liveness_timeout(&mut self, worker: usize) {
        if !self.workers[worker].crashed || self.dead_members[worker] {
            return; // rejoined in time, or already evicted
        }
        self.dead_members[worker] = true;
        self.expected_pushes -= 1;
        self.trace_fault(FaultKind::Eviction, worker, None);
        // Graceful degradation: complete every round now satisfiable by the
        // survivors alone. (The server averages over the gradients it has —
        // the effective batch shrinks, convergence is unaffected in
        // expectation.)
        for s in 0..self.servers.len() {
            let keys: Vec<usize> = (0..self.plan.num_keys())
                .filter(|&k| {
                    let mask = self.servers[s].received[k];
                    mask != 0 && mask.count_ones() >= self.expected_pushes
                })
                .collect();
            let any = !keys.is_empty();
            for k in keys {
                self.complete_round(s, k);
            }
            if any {
                self.kick_egress(s, Role::Server);
            }
        }
    }

    // ------------------------------------------------------------------
    // Server processing.

    fn kick_proc(&mut self, server: usize) {
        if self.servers[server].proc_busy {
            return;
        }
        loop {
            let Some(item) = self.servers[server].proc_queue.pop() else {
                return;
            };
            let version = self.servers[server].version[item.key];
            if item.round < version {
                // The round completed without this push (degraded
                // completion, or a rejoined worker replaying old work).
                self.faults.stale_pushes_dropped += 1;
                self.trace_fault(FaultKind::StalePush, server, None);
                continue;
            }
            assert_eq!(
                version, item.round,
                "push for round {} processed while key {} is at version {}",
                item.round, item.key, version
            );
            if self.servers[server].received[item.key] & item.members != 0 {
                self.faults.duplicate_pushes_dropped += 1;
                self.trace_fault(FaultKind::DuplicatePush, server, None);
                continue;
            }
            let params = self.plan.slice(p3_pserver::Key(item.key as u64)).params;
            let completing = (self.servers[server].received[item.key] | item.members).count_ones()
                >= self.expected_pushes;
            let mut nanos =
                self.cfg.proc_fixed.as_nanos() as f64 + self.cfg.agg_ns_per_param * params as f64;
            if completing {
                nanos += self.cfg.upd_ns_per_param * params as f64;
            }
            self.servers[server].proc_busy = true;
            self.servers[server].current = Some(item);
            self.trace(TraceEvent::AggStart {
                server,
                key: item.key,
                round: item.round,
                worker: item.worker,
            });
            self.queue.schedule_in(
                SimDuration::from_nanos(nanos as u64),
                Ev::ProcDone { server },
            );
            return;
        }
    }

    fn on_proc_done(&mut self, server: usize) {
        let item = self.servers[server]
            .current
            .take()
            .expect("ProcDone without an item in flight");
        self.servers[server].proc_busy = false;
        self.trace(TraceEvent::AggEnd {
            server,
            key: item.key,
            round: item.round,
            worker: item.worker,
        });
        // Re-validate: the round may have completed (degraded) while this
        // push was in the processing unit.
        if item.round < self.servers[server].version[item.key] {
            self.faults.stale_pushes_dropped += 1;
            self.trace_fault(FaultKind::StalePush, server, None);
        } else if self.servers[server].received[item.key] & item.members != 0 {
            self.faults.duplicate_pushes_dropped += 1;
            self.trace_fault(FaultKind::DuplicatePush, server, None);
        } else {
            self.servers[server].received[item.key] |= item.members;
            if self.servers[server].received[item.key].count_ones() >= self.expected_pushes {
                self.complete_round(server, item.key);
                self.kick_egress(server, Role::Server);
            }
        }
        self.kick_proc(server);
    }

    /// Finishes one key's aggregation round: bumps the version and sends
    /// the update out (broadcast or notify, per strategy), skipping evicted
    /// workers. Called from normal processing and from degraded completion
    /// after a membership change.
    fn complete_round(&mut self, server: usize, key: usize) {
        let mask = self.servers[server].received[key];
        let degraded = (mask.count_ones() as usize) < self.cfg.machines;
        if degraded {
            self.faults.degraded_rounds += 1;
            self.trace_fault(FaultKind::DegradedRound, server, None);
        }
        self.servers[server].received[key] = 0;
        self.servers[server].version[key] += 1;
        let version = self.servers[server].version[key];
        self.trace(TraceEvent::RoundComplete {
            server,
            key,
            version,
            degraded,
        });
        match self.cfg.strategy.response {
            ResponseMode::ImmediateBroadcast => {
                for w in 0..self.cfg.machines {
                    if self.dead_members[w] {
                        continue;
                    }
                    self.send_response_versioned(server, key, w, version);
                }
            }
            ResponseMode::NotifyThenPull => {
                if self.cfg.strategy.pull_timing == PullTiming::Eager {
                    let bytes = HEADER_BYTES as u64;
                    let priority = Priority(self.prio[key]);
                    for w in 0..self.cfg.machines {
                        if self.dead_members[w] {
                            continue;
                        }
                        let msg = OutMsg {
                            dst: MachineId(w),
                            bytes,
                            priority,
                            msg_id: self.register_msg(
                                MsgKind::Notify { key, version },
                                server,
                                w,
                                bytes,
                                priority,
                            ),
                        };
                        self.enqueue_traced(
                            server,
                            Role::Server,
                            msg,
                            MsgClass::Notify,
                            key,
                            version,
                        );
                    }
                }
                // Deferred (TF-style) pulls waiting on this version:
                let waiting = std::mem::take(&mut self.servers[server].pending_pulls[key]);
                for w in waiting {
                    if self.dead_members[w] {
                        continue;
                    }
                    self.send_response_versioned(server, key, w, version);
                }
            }
        }
    }

    fn send_response(&mut self, server: usize, key: usize, worker: usize) {
        let version = self.servers[server].version[key];
        self.send_response_versioned(server, key, worker, version);
    }

    fn send_response_versioned(&mut self, server: usize, key: usize, worker: usize, version: u64) {
        let params = self.plan.slice(p3_pserver::Key(key as u64)).params;
        let bytes = self.response_wire(params);
        let priority = Priority(self.prio[key]);
        let msg = OutMsg {
            dst: MachineId(worker),
            bytes,
            priority,
            msg_id: self.register_msg(
                MsgKind::Response { key, version },
                server,
                worker,
                bytes,
                priority,
            ),
        };
        self.enqueue_traced(server, Role::Server, msg, MsgClass::Response, key, version);
    }

    // ------------------------------------------------------------------
    // Results.

    fn finish(self, target: u64) -> RunResult {
        let batch = self.cfg.batch_per_worker as f64;
        let measure_iters = self.cfg.measure_iters as f64;
        let mut total = 0.0;
        let mut iter_sum = 0.0;
        let mut stall_sum = 0.0;
        let mut finished_at = SimTime::ZERO;
        let mut survivors = 0.0;
        let mut pooled: Vec<f64> = Vec::new();
        for w in &self.workers {
            pooled.extend_from_slice(&w.measured_iters);
            if w.permanently_dead {
                continue; // its partial iterations still count in the tail
            }
            let start = w.measure_start.expect("worker never started measuring");
            let end = w.measure_end.expect("worker never finished measuring");
            assert!(w.completed >= target);
            let secs = (end - start).as_secs_f64();
            total += measure_iters * batch / secs;
            iter_sum += secs / measure_iters;
            stall_sum += w.stalled_total.as_secs_f64() / end.as_secs_f64();
            finished_at = finished_at.max(end);
            survivors += 1.0;
        }
        let p50 = quantile(&pooled, 0.50).map_or(SimDuration::ZERO, SimDuration::from_secs_f64);
        let p99 = quantile(&pooled, 0.99).map_or(SimDuration::ZERO, SimDuration::from_secs_f64);
        let trace = self.cfg.trace_bin.map(|bin| UtilizationTrace {
            bin,
            tx_gbps: self
                .net
                .tx_trace(MachineId(0))
                .expect("trace enabled")
                .gbps_series(),
            rx_gbps: self
                .net
                .rx_trace(MachineId(0))
                .expect("trace enabled")
                .gbps_series(),
        });
        let stalled_per_worker = self.workers.iter().map(|w| w.stalled_total).collect();
        // Per-link totals of the compiled topology (empty on the flat
        // fabric). Busy fractions are relative to when the run ended.
        let end_secs = self.queue.now().as_secs_f64();
        let links = self
            .net
            .link_usage()
            .into_iter()
            .map(|l| LinkUtilization {
                name: l.name,
                busy_fraction: if end_secs > 0.0 {
                    l.busy_secs / end_secs
                } else {
                    0.0
                },
                bytes: l.bytes,
                transit: l.transit,
            })
            .collect();
        RunResult {
            throughput: total,
            per_worker_throughput: total / survivors,
            unit: self.cfg.model.unit(),
            mean_iteration: SimDuration::from_secs_f64(iter_sum / survivors),
            p50_iteration: p50,
            p99_iteration: p99,
            mean_stall_fraction: stall_sum / survivors,
            stalled_per_worker,
            finished_at,
            events: self.events,
            messages: self.stats,
            faults: self.faults,
            trace,
            links,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3_core::SyncStrategy;
    use p3_models::ModelSpec;
    use p3_net::Bandwidth;

    fn cfg(strategy: SyncStrategy, gbps: f64) -> ClusterConfig {
        ClusterConfig::new(
            ModelSpec::resnet50(),
            strategy,
            4,
            Bandwidth::from_gbps(gbps),
        )
        .with_iters(1, 2)
        .with_seed(7)
    }

    #[test]
    fn every_strategy_terminates_and_reports() {
        for strategy in [
            SyncStrategy::baseline(),
            SyncStrategy::slicing_only(),
            SyncStrategy::p3(),
            SyncStrategy::tf_style(),
            SyncStrategy::poseidon_wfbp(),
            SyncStrategy::p3_generation_order(),
            SyncStrategy::p3_random_order(3),
            SyncStrategy::p3_notify_pull(),
        ] {
            let name = strategy.name().to_string();
            let r = ClusterSim::new(cfg(strategy, 8.0)).run();
            assert!(r.throughput > 0.0, "{name} produced no throughput");
            assert!(r.events > 0);
            assert!(!r.mean_iteration.is_zero());
        }
    }

    #[test]
    fn single_machine_cluster_works() {
        // Degenerate deployment: worker and its only server share one
        // machine; all traffic is loopback.
        let c = ClusterConfig::new(
            ModelSpec::resnet50(),
            SyncStrategy::p3(),
            1,
            Bandwidth::from_gbps(1.0),
        )
        .with_iters(1, 2);
        let r = ClusterSim::new(c).run();
        // Loopback never binds: throughput equals the compute plateau.
        let plateau = ModelSpec::resnet50().reference_throughput();
        assert!(
            (r.throughput - plateau).abs() / plateau < 0.05,
            "got {}",
            r.throughput
        );
    }

    #[test]
    fn starved_network_still_completes() {
        // 50 Mbps: brutally communication-bound but must terminate.
        let r = ClusterSim::new(cfg(SyncStrategy::p3(), 0.05)).run();
        assert!(r.throughput > 0.0);
        assert!(
            r.throughput < 20.0,
            "50 Mbps cannot be compute-bound: {}",
            r.throughput
        );
    }

    #[test]
    fn tf_style_is_no_faster_than_eager_baseline() {
        // Deferring pulls to the next iteration start removes overlap.
        let tf = ClusterSim::new(cfg(SyncStrategy::tf_style(), 3.0)).run();
        let eager = ClusterSim::new(cfg(SyncStrategy::baseline(), 3.0)).run();
        assert!(
            tf.throughput <= eager.throughput * 1.02,
            "tf {} vs eager {}",
            tf.throughput,
            eager.throughput
        );
    }

    #[test]
    fn immediate_broadcast_helps_p3() {
        // Ablation §5: removing the notify+pull round trip is part of P3's
        // win.
        let with = ClusterSim::new(cfg(SyncStrategy::p3(), 3.0)).run();
        let without = ClusterSim::new(cfg(SyncStrategy::p3_notify_pull(), 3.0)).run();
        assert!(
            with.throughput >= without.throughput * 0.98,
            "broadcast {} vs notify-pull {}",
            with.throughput,
            without.throughput
        );
    }

    #[test]
    fn sockeye_jitter_produces_unequal_iterations() {
        let c = ClusterConfig::new(
            ModelSpec::sockeye(),
            SyncStrategy::p3(),
            2,
            Bandwidth::from_gbps(20.0),
        )
        .with_iters(1, 6);
        let r = ClusterSim::new(c).run();
        // With ±12% compute jitter and a sync barrier, the mean iteration
        // must exceed the jitter-free compute time (max of workers).
        let jitter_free = ModelSpec::sockeye().default_batch() as f64
            / ModelSpec::sockeye().reference_throughput();
        assert!(
            r.mean_iteration.as_secs_f64() > jitter_free * 1.005,
            "barrier should amplify stragglers: {} vs {}",
            r.mean_iteration.as_secs_f64(),
            jitter_free
        );
    }

    #[test]
    fn traces_cover_the_whole_run() {
        let c = cfg(SyncStrategy::p3(), 4.0).with_trace(SimDuration::from_millis(10));
        let r = ClusterSim::new(c).run();
        let t = r.trace.expect("tracing enabled");
        assert!(!t.tx_gbps.is_empty());
        assert!(!t.rx_gbps.is_empty());
        // Something was actually transmitted and received.
        assert!(t.tx_gbps.iter().sum::<f64>() > 0.0);
        assert!(t.rx_gbps.iter().sum::<f64>() > 0.0);
        // And never above the nominal NIC rate.
        assert!(t.tx_gbps.iter().all(|&g| g <= 4.0 + 1e-9));
    }

    #[test]
    fn seeds_change_details_not_regime() {
        let a = ClusterSim::new(cfg(SyncStrategy::p3(), 4.0).with_seed(1)).run();
        let b = ClusterSim::new(cfg(SyncStrategy::p3(), 4.0).with_seed(2)).run();
        // KVStore's random placement and stagger differ, but throughput
        // stays in the same regime.
        assert!((a.throughput / b.throughput - 1.0).abs() < 0.15);
    }

    #[test]
    fn inception_runs_under_all_fig7_strategies() {
        for strategy in SyncStrategy::fig7_series() {
            let c = ClusterConfig::new(
                ModelSpec::inception_v3(),
                strategy,
                4,
                Bandwidth::from_gbps(4.0),
            )
            .with_iters(1, 2);
            assert!(ClusterSim::new(c).run().throughput > 0.0);
        }
    }

    #[test]
    fn tail_quantiles_are_ordered() {
        let r = ClusterSim::new(cfg(SyncStrategy::p3(), 4.0)).run();
        assert!(!r.p50_iteration.is_zero());
        assert!(r.p50_iteration <= r.p99_iteration);
    }
}

#[cfg(test)]
mod stall_tests {
    use super::*;
    use p3_core::SyncStrategy;
    use p3_models::ModelSpec;
    use p3_net::Bandwidth;

    #[test]
    fn p3_stalls_less_than_baseline_when_constrained() {
        let run = |s: SyncStrategy| {
            ClusterSim::new(
                ClusterConfig::new(ModelSpec::resnet50(), s, 4, Bandwidth::from_gbps(3.0))
                    .with_iters(1, 3),
            )
            .run()
        };
        let base = run(SyncStrategy::baseline());
        let p3 = run(SyncStrategy::p3());
        assert!(
            p3.mean_stall_fraction < base.mean_stall_fraction,
            "P3 stall {:.3} vs baseline {:.3}",
            p3.mean_stall_fraction,
            base.mean_stall_fraction
        );
    }

    #[test]
    fn compute_bound_runs_barely_stall() {
        let r = ClusterSim::new(
            ClusterConfig::new(
                ModelSpec::resnet50(),
                SyncStrategy::p3(),
                4,
                Bandwidth::from_gbps(50.0),
            )
            .with_iters(1, 3),
        )
        .run();
        assert!(
            r.mean_stall_fraction < 0.05,
            "stall {:.3}",
            r.mean_stall_fraction
        );
    }

    #[test]
    fn per_worker_stall_nonzero_under_straggler() {
        use crate::faults::{FaultPlan, StragglerEpisode};
        let plan = FaultPlan {
            stragglers: vec![StragglerEpisode {
                worker: 1,
                start: SimTime::ZERO,
                duration: SimDuration::from_secs(1_000),
                slowdown: 3.0,
            }],
            ..FaultPlan::none()
        };
        let r = ClusterSim::new(
            ClusterConfig::new(
                ModelSpec::resnet50(),
                SyncStrategy::p3(),
                4,
                Bandwidth::from_gbps(8.0),
            )
            .with_iters(1, 3)
            .with_seed(7)
            .with_faults(plan),
        )
        .run();
        assert_eq!(r.stalled_per_worker.len(), 4);
        // The healthy workers wait at the synchronization barrier for the
        // 3×-slow straggler's gradients.
        let healthy_stall = r
            .stalled_per_worker
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 1)
            .map(|(_, &d)| d)
            .fold(SimDuration::ZERO, |a, b| a + b);
        assert!(!healthy_stall.is_zero(), "nobody waited for the straggler");
    }

    #[test]
    fn per_worker_stall_near_zero_when_compute_bound() {
        let r = ClusterSim::new(
            ClusterConfig::new(
                ModelSpec::resnet50(),
                SyncStrategy::p3(),
                4,
                Bandwidth::from_gbps(50.0),
            )
            .with_iters(1, 3),
        )
        .run();
        assert_eq!(r.stalled_per_worker.len(), 4);
        let total = r.finished_at.as_secs_f64();
        for (i, d) in r.stalled_per_worker.iter().enumerate() {
            let frac = d.as_secs_f64() / total;
            assert!(frac < 0.05, "worker {i} stalled {frac:.3} of the run");
        }
    }
}

#[cfg(test)]
mod message_accounting_tests {
    use super::*;
    use p3_core::SyncStrategy;
    use p3_models::ModelSpec;
    use p3_net::Bandwidth;

    /// Runs `iters` total iterations and returns (stats, keys, machines).
    fn run_counted(strategy: SyncStrategy, iters: u64) -> (MessageStats, u64, u64) {
        let model = ModelSpec::resnet50();
        let machines = 3usize;
        let keys = strategy.plan(&model, machines, 0x9e3779b9).num_keys() as u64;
        let cfg = ClusterConfig::new(model, strategy, machines, Bandwidth::from_gbps(50.0))
            .with_iters(0, iters);
        let r = ClusterSim::new(cfg).run();
        (r.messages, keys, machines as u64)
    }

    #[test]
    fn p3_message_budget_is_exact() {
        // ImmediateBroadcast: per round, every key is pushed by every
        // worker and broadcast back to every worker; nothing else.
        let (m, keys, w) = run_counted(SyncStrategy::p3(), 3);
        let rounds = 3;
        // The run halts the instant the last worker finishes its backward
        // pass; the final round's tail messages may still be in flight.
        let full = keys * w * rounds;
        assert!(
            m.pushes <= full && m.pushes >= full - keys * w,
            "pushes {}",
            m.pushes
        );
        assert_eq!(m.notifies, 0);
        assert_eq!(m.pull_requests, 0);
        // Responses: the final round's broadcasts may still be in flight
        // when the run stops, so allow the tail to be missing.
        let full = keys * w * rounds;
        assert!(
            m.responses <= full && m.responses >= full - keys * w,
            "responses {} vs expected ~{}",
            m.responses,
            full
        );
    }

    #[test]
    fn baseline_message_budget_is_exact() {
        // NotifyThenPull: per round and key, W pushes, W notifies, W pull
        // requests, W responses.
        let (m, keys, w) = run_counted(SyncStrategy::baseline(), 3);
        let rounds = 3;
        let full = keys * w * rounds;
        assert!(
            m.pushes <= full && m.pushes >= full - keys * w,
            "pushes {}",
            m.pushes
        );
        assert!(m.notifies <= full && m.notifies >= full - keys * w);
        assert!(m.pull_requests <= m.notifies);
        assert!(m.responses <= m.pull_requests);
        // All but the in-flight tail must complete for training to advance:
        // round r+1 pushes require round r responses.
        assert!(m.responses >= keys * w * (rounds - 1));
    }

    #[test]
    fn tf_style_pulls_everything_every_iteration() {
        let (m, keys, w) = run_counted(SyncStrategy::tf_style(), 2);
        // No notifies in the TF model; pulls are issued per key per
        // iteration boundary.
        assert_eq!(m.notifies, 0);
        assert!(m.pull_requests >= keys * w, "pulls {}", m.pull_requests);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::faults::{FaultPlan, LinkDegradation, StragglerEpisode, WorkerCrash};
    use p3_core::SyncStrategy;
    use p3_models::ModelSpec;
    use p3_net::Bandwidth;
    use p3_pserver::RetryPolicy;

    fn base_cfg() -> ClusterConfig {
        ClusterConfig::new(
            ModelSpec::resnet50(),
            SyncStrategy::p3(),
            4,
            Bandwidth::from_gbps(8.0),
        )
        .with_iters(1, 3)
        .with_seed(7)
    }

    #[test]
    fn empty_plan_is_bit_identical_to_no_plan() {
        // The pay-for-what-you-use guarantee: installing an empty plan must
        // not shift a single event or random draw.
        let clean = ClusterSim::new(base_cfg()).run();
        let with_plan = ClusterSim::new(base_cfg().with_faults(FaultPlan::none())).run();
        assert_eq!(clean, with_plan);
        assert_eq!(clean.events, with_plan.events);
        assert_eq!(clean.faults, FaultStats::default());
    }

    #[test]
    fn straggler_stretches_the_tail() {
        let plan = FaultPlan {
            stragglers: vec![StragglerEpisode {
                worker: 1,
                start: SimTime::ZERO,
                duration: SimDuration::from_secs(1_000),
                slowdown: 3.0,
            }],
            ..FaultPlan::none()
        };
        let clean = ClusterSim::new(base_cfg()).run();
        let slow = ClusterSim::new(base_cfg().with_faults(plan)).run();
        assert!(
            slow.throughput < clean.throughput,
            "straggler did not hurt: {} vs {}",
            slow.throughput,
            clean.throughput
        );
        assert!(
            slow.p99_iteration > clean.p99_iteration,
            "straggler did not stretch p99: {:?} vs {:?}",
            slow.p99_iteration,
            clean.p99_iteration
        );
    }

    #[test]
    fn degraded_link_slows_the_run() {
        let plan = FaultPlan {
            link_degradations: vec![LinkDegradation {
                machine: 0,
                start: SimTime::ZERO,
                duration: SimDuration::from_secs(1_000),
                capacity_factor: 0.1,
            }],
            ..FaultPlan::none()
        };
        let clean = ClusterSim::new(base_cfg()).run();
        let degraded = ClusterSim::new(base_cfg().with_faults(plan)).run();
        assert!(
            degraded.throughput < clean.throughput * 0.95,
            "10% link capacity barely hurt: {} vs {}",
            degraded.throughput,
            clean.throughput
        );
    }

    #[test]
    fn lossy_network_retransmits_and_completes() {
        let plan = FaultPlan {
            loss_probability: 0.05,
            ..FaultPlan::none()
        };
        let cfg = base_cfg().with_faults(plan).with_retry(RetryPolicy::new(
            SimDuration::from_millis(20),
            2.0,
            16,
        ));
        let r = ClusterSim::new(cfg).run();
        assert!(r.throughput > 0.0);
        assert!(r.faults.messages_lost > 0, "5% loss lost nothing");
        assert!(r.faults.retransmits > 0, "losses were never retransmitted");
        assert_eq!(r.faults.gave_up, 0, "p=0.05^17 give-up should not occur");
    }

    #[test]
    fn permanent_crash_degrades_and_survivors_finish() {
        let mut cfg = base_cfg().with_faults(FaultPlan {
            crashes: vec![WorkerCrash {
                worker: 2,
                at: SimTime::from_millis(400),
                rejoin_after: None,
            }],
            ..FaultPlan::none()
        });
        cfg.liveness_timeout = SimDuration::from_millis(100);
        let r = ClusterSim::new(cfg).run();
        assert!(r.throughput > 0.0, "survivors failed to finish");
        assert!(
            r.faults.degraded_rounds > 0,
            "no round completed without the dead worker"
        );
    }

    #[test]
    fn crash_with_rejoin_completes_all_workers() {
        let mut cfg = base_cfg().with_faults(FaultPlan {
            crashes: vec![WorkerCrash {
                worker: 1,
                at: SimTime::from_millis(400),
                rejoin_after: Some(SimDuration::from_millis(300)),
            }],
            ..FaultPlan::none()
        });
        // Generous liveness: membership never shrinks; peers simply wait.
        cfg.liveness_timeout = SimDuration::from_secs(30);
        let r = ClusterSim::new(cfg).run();
        assert!(r.throughput > 0.0);
        assert_eq!(
            r.faults.degraded_rounds, 0,
            "membership should not have shrunk"
        );
        // The rejoin re-synced state via pull requests — a message class P3
        // never uses in healthy runs, so any count proves the restart path
        // executed.
        assert!(
            r.messages.pull_requests > 0,
            "rejoin resync must pull state"
        );
    }

    #[test]
    fn crash_then_rejoin_after_eviction_catches_up() {
        let mut cfg = base_cfg().with_faults(FaultPlan {
            crashes: vec![WorkerCrash {
                worker: 3,
                at: SimTime::from_millis(400),
                rejoin_after: Some(SimDuration::from_millis(500)),
            }],
            ..FaultPlan::none()
        });
        // Tight liveness: the worker is evicted, rounds degrade, then it
        // rejoins and must re-sync and still reach its iteration target.
        cfg.liveness_timeout = SimDuration::from_millis(50);
        let r = ClusterSim::new(cfg).run();
        assert!(r.throughput > 0.0);
        assert!(r.faults.degraded_rounds > 0);
    }

    #[test]
    fn invalid_plan_is_a_structured_error() {
        let cfg = base_cfg().with_faults(FaultPlan {
            stragglers: vec![StragglerEpisode {
                worker: 99,
                start: SimTime::ZERO,
                duration: SimDuration::from_secs(1),
                slowdown: 2.0,
            }],
            ..FaultPlan::none()
        });
        match ClusterSim::new(cfg).try_run() {
            Err(RunError::InvalidConfig(why)) => assert!(why.contains("out of range")),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn faults_work_under_baseline_strategy_too() {
        // The per-destination egress and notify/pull protocol take the same
        // fault paths.
        let mut cfg = ClusterConfig::new(
            ModelSpec::resnet50(),
            SyncStrategy::baseline(),
            4,
            Bandwidth::from_gbps(8.0),
        )
        .with_iters(1, 3)
        .with_seed(7)
        .with_faults(FaultPlan {
            loss_probability: 0.02,
            crashes: vec![WorkerCrash {
                worker: 0,
                at: SimTime::from_millis(400),
                rejoin_after: Some(SimDuration::from_millis(200)),
            }],
            ..FaultPlan::none()
        });
        cfg.liveness_timeout = SimDuration::from_secs(30);
        cfg.retry = RetryPolicy::new(SimDuration::from_millis(20), 2.0, 16);
        let r = ClusterSim::new(cfg).run();
        assert!(r.throughput > 0.0);
        assert!(r.faults.messages_lost > 0);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::timeline::ascii_timeline;
    use p3_core::SyncStrategy;
    use p3_models::ModelSpec;
    use p3_net::Bandwidth;
    use p3_pserver::RetryPolicy;
    use p3_trace::{chrome_trace_json, validate_chrome_trace};

    /// Two workers training VGG-19 (the paper's flagship model) for two
    /// iterations — small enough for tests, long enough that every round-1
    /// push → aggregate → pull chain must complete (iteration 2's forward
    /// passes consume round-1 parameters).
    fn vgg_cfg() -> ClusterConfig {
        ClusterConfig::new(
            ModelSpec::vgg19(),
            SyncStrategy::p3(),
            2,
            Bandwidth::from_gbps(10.0),
        )
        .with_iters(0, 2)
        .with_seed(7)
    }

    #[test]
    fn tracing_is_bit_identical_to_untraced() {
        // The zero-overhead guarantee: recording draws no randomness and
        // schedules nothing, so enabling the trace must not shift a single
        // event.
        let plain = ClusterSim::new(vgg_cfg()).run();
        let (traced, log) = ClusterSim::new(vgg_cfg().with_slice_trace()).run_traced();
        assert_eq!(plain, traced);
        assert!(!log.expect("tracing enabled").is_empty());
    }

    #[test]
    fn untraced_runs_return_no_log() {
        let (_, log) = ClusterSim::new(vgg_cfg()).run_traced();
        assert!(log.is_none());
    }

    #[test]
    fn chrome_export_contains_full_slice_chains() {
        let cfg = vgg_cfg().with_slice_trace();
        let machines = cfg.machines;
        let keys = cfg.strategy.plan(&cfg.model, machines, cfg.seed).num_keys();
        let (_, log) = ClusterSim::new(cfg).run_traced();
        let doc = chrome_trace_json(&log.expect("tracing enabled"), machines);
        let spans = validate_chrome_trace(&doc).expect("schema-valid Chrome trace");
        // Every slice shows at least one complete push → aggregate → pull
        // chain from the first iteration.
        for k in 0..keys {
            for name in [
                format!("push k{k}"),
                format!("agg k{k}"),
                format!("pull k{k}"),
            ] {
                assert!(
                    spans.iter().any(|s| s.name == name),
                    "no complete '{name}' span among {} spans",
                    spans.len()
                );
            }
        }
    }

    #[test]
    fn timeline_renders_nonempty_gantt() {
        let (_, log) = ClusterSim::new(vgg_cfg().with_slice_trace()).run_traced();
        let art = ascii_timeline(&log.expect("tracing enabled"), 2, 1, 60);
        assert_ne!(art, "(empty trace)\n");
        assert!(art.contains("w0 compute"));
        assert!(art.contains('#'));
    }

    #[test]
    fn fault_stats_match_traced_fault_events() {
        use crate::faults::WorkerCrash;
        use p3_trace::{FaultKind, TraceEvent};

        let mut cfg = ClusterConfig::new(
            ModelSpec::resnet50(),
            SyncStrategy::p3(),
            4,
            Bandwidth::from_gbps(8.0),
        )
        .with_iters(1, 3)
        .with_seed(7)
        .with_faults(FaultPlan {
            loss_probability: 0.05,
            crashes: vec![WorkerCrash {
                worker: 2,
                at: SimTime::from_millis(400),
                rejoin_after: Some(SimDuration::from_millis(200)),
            }],
            ..FaultPlan::none()
        })
        .with_retry(RetryPolicy::new(SimDuration::from_millis(20), 2.0, 16))
        .with_slice_trace();
        cfg.liveness_timeout = SimDuration::from_secs(30);
        let (r, log) = ClusterSim::new(cfg).run_traced();
        let log = log.expect("tracing enabled");
        let count = |kind: FaultKind| {
            log.events()
                .iter()
                .filter(|te| matches!(te.event, TraceEvent::Fault { kind: k, .. } if k == kind))
                .count() as u64
        };
        // Every aggregate counter equals its per-event count — the trace
        // is a faithful journal of the fault machinery.
        assert!(r.faults.messages_lost > 0, "5% loss lost nothing");
        assert_eq!(r.faults.messages_lost, count(FaultKind::Loss));
        assert_eq!(r.faults.retransmits, count(FaultKind::Retransmit));
        assert_eq!(r.faults.gave_up, count(FaultKind::GiveUp));
        assert_eq!(r.faults.stale_pushes_dropped, count(FaultKind::StalePush));
        assert_eq!(
            r.faults.duplicate_pushes_dropped,
            count(FaultKind::DuplicatePush)
        );
        assert_eq!(r.faults.degraded_rounds, count(FaultKind::DegradedRound));
        assert_eq!(r.faults.flows_cancelled, count(FaultKind::FlowCancelled));
        assert_eq!(count(FaultKind::Crash), 1);
        assert_eq!(count(FaultKind::Rejoin), 1);
    }
}

#[cfg(test)]
mod topology_tests {
    use super::*;
    use p3_core::SyncStrategy;
    use p3_models::ModelSpec;
    use p3_net::Bandwidth;
    use p3_topo::Topology;

    fn base(strategy: SyncStrategy) -> ClusterConfig {
        ClusterConfig::new(
            ModelSpec::resnet50(),
            strategy,
            4,
            Bandwidth::from_gbps(8.0),
        )
        .with_iters(1, 2)
        .with_seed(7)
    }

    #[test]
    fn single_rack_topology_is_result_identical_to_flat() {
        // The degenerate case: one rack, oversub 1. The graph allocator
        // mirrors the flat water-fill operand for operand, so even a
        // traced run must not shift a single event — only the link report
        // (absent on the flat fabric) may differ.
        let flat = ClusterSim::new(base(SyncStrategy::p3()).with_slice_trace()).run();
        let mut topo = ClusterSim::new(
            base(SyncStrategy::p3())
                .with_slice_trace()
                .with_topology(Topology::new(1, 4, 1.0)),
        )
        .run();
        assert!(
            !topo.links.is_empty(),
            "topology runs must report link usage"
        );
        topo.links.clear();
        assert_eq!(flat, topo);
    }

    #[test]
    fn degenerate_equivalence_holds_for_baseline_strategy_too() {
        let flat = ClusterSim::new(base(SyncStrategy::baseline())).run();
        let mut topo =
            ClusterSim::new(base(SyncStrategy::baseline()).with_topology(Topology::new(1, 4, 1.0)))
                .run();
        topo.links.clear();
        assert_eq!(flat, topo);
    }

    #[test]
    fn oversubscribed_core_slows_training() {
        let flat = ClusterSim::new(base(SyncStrategy::p3())).run();
        let topo =
            ClusterSim::new(base(SyncStrategy::p3()).with_topology(Topology::new(2, 2, 8.0))).run();
        assert!(
            topo.throughput < flat.throughput,
            "8:1 oversubscription did not hurt: {} vs {}",
            topo.throughput,
            flat.throughput
        );
    }

    #[test]
    fn topology_runs_are_deterministic() {
        let run = || {
            ClusterSim::new(base(SyncStrategy::p3()).with_topology(Topology::new(2, 2, 4.0))).run()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn machine_count_mismatch_is_invalid_config() {
        let cfg = base(SyncStrategy::p3()).with_topology(Topology::new(2, 4, 2.0));
        match ClusterSim::new(cfg).try_run() {
            Err(RunError::InvalidConfig(why)) => {
                assert!(why.contains("8 machines"), "unexpected message: {why}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn link_report_covers_ports_and_uplinks() {
        let r =
            ClusterSim::new(base(SyncStrategy::p3()).with_topology(Topology::new(2, 2, 4.0))).run();
        // 4 tx + 4 rx ports, 2 uplinks, 2 downlinks.
        assert_eq!(r.links.len(), 12);
        assert_eq!(r.links.iter().filter(|l| l.transit).count(), 4);
        for l in &r.links {
            assert!(
                (0.0..=1.0).contains(&l.busy_fraction),
                "{} busy {}",
                l.name,
                l.busy_fraction
            );
        }
        // The oversubscribed core actually carried traffic.
        let core_bytes: f64 = r.links.iter().filter(|l| l.transit).map(|l| l.bytes).sum();
        assert!(core_bytes > 0.0, "no cross-rack traffic recorded");
    }

    #[test]
    fn packed_placement_concentrates_servers_in_rack_zero() {
        // With every shard packed into rack 0, rack-1 machines originate
        // pushes only (their server shards hold no keys and send no
        // responses), so their tx ports carry clearly less than rack-0's,
        // which add the full response fan-out on top of their pushes.
        let r = ClusterSim::new(
            base(SyncStrategy::p3())
                .with_topology(Topology::new(2, 2, 4.0))
                .with_placement(Placement::Packed),
        )
        .run();
        let tx = |m: usize| {
            let name = format!("m{m}.tx");
            r.links
                .iter()
                .find(|l| l.name == name)
                .expect("port reported")
                .bytes
        };
        assert!(
            tx(0) > tx(2) * 1.2 && tx(1) > tx(3) * 1.2,
            "PS-rack ports not busier: tx {:?}",
            [tx(0), tx(1), tx(2), tx(3)]
        );
    }

    #[test]
    fn rack_local_aggregation_reduces_core_traffic() {
        let run = |placement: Placement| {
            ClusterSim::new(
                ClusterConfig::new(
                    ModelSpec::resnet50(),
                    SyncStrategy::p3(),
                    8,
                    Bandwidth::from_gbps(8.0),
                )
                .with_iters(1, 2)
                .with_seed(7)
                .with_topology(Topology::new(2, 4, 4.0))
                .with_placement(placement),
            )
            .run()
        };
        let spread = run(Placement::Spread);
        let local = run(Placement::RackLocal);
        assert!(local.messages.rack_pushes > 0, "no rack pushes happened");
        assert!(
            local.messages.combined_pushes > 0,
            "no combined pushes happened"
        );
        assert_eq!(spread.messages.rack_pushes, 0);
        let core = |r: &RunResult| {
            r.links
                .iter()
                .filter(|l| l.transit)
                .map(|l| l.bytes)
                .sum::<f64>()
        };
        // 4 workers per remote rack collapse into 1 combined push per key:
        // the core carries strictly less push traffic.
        assert!(
            core(&local) < core(&spread),
            "rack-local {} vs spread {} core bytes",
            core(&local),
            core(&spread)
        );
        assert!(local.throughput > 0.0);
    }

    #[test]
    fn rack_local_with_loss_is_rejected() {
        use crate::faults::FaultPlan;
        let cfg = base(SyncStrategy::p3())
            .with_topology(Topology::new(2, 2, 2.0))
            .with_placement(Placement::RackLocal)
            .with_faults(FaultPlan {
                loss_probability: 0.01,
                ..FaultPlan::none()
            });
        match ClusterSim::new(cfg).try_run() {
            Err(RunError::InvalidConfig(why)) => {
                assert!(why.contains("rack-local"), "unexpected message: {why}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn heterogeneous_nics_throttle_the_slow_machine() {
        // Machine 3 gets a 10× slower NIC; its port should be the busiest.
        let topo = Topology::new(2, 2, 1.0).with_nic(3, Bandwidth::from_gbps(0.8));
        let r = ClusterSim::new(base(SyncStrategy::p3()).with_topology(topo)).run();
        let busy = |name: &str| {
            r.links
                .iter()
                .find(|l| l.name == name)
                .expect("port reported")
                .busy_fraction
        };
        assert!(
            busy("m3.tx") > busy("m0.tx"),
            "slow NIC not saturated: m3 {} vs m0 {}",
            busy("m3.tx"),
            busy("m0.tx")
        );
    }
}

#[cfg(test)]
mod fault_properties {
    use super::*;
    use crate::faults::{FaultPlan, StragglerEpisode, WorkerCrash};
    use p3_core::SyncStrategy;
    use p3_models::ModelSpec;
    use p3_net::Bandwidth;
    use p3_pserver::RetryPolicy;
    use proptest::prelude::*;

    fn run_with(seed: u64, loss_bp: u32, straggle: bool, crash: bool) -> RunResult {
        let mut plan = FaultPlan::none();
        plan.loss_probability = loss_bp as f64 / 10_000.0;
        if straggle {
            plan.stragglers.push(StragglerEpisode {
                worker: 1,
                start: SimTime::from_millis(100),
                duration: SimDuration::from_secs(2),
                slowdown: 2.5,
            });
        }
        if crash {
            plan.crashes.push(WorkerCrash {
                worker: 2,
                at: SimTime::from_millis(300),
                rejoin_after: Some(SimDuration::from_millis(200)),
            });
        }
        let mut cfg = ClusterConfig::new(
            ModelSpec::resnet50(),
            SyncStrategy::p3(),
            4,
            Bandwidth::from_gbps(10.0),
        )
        .with_iters(1, 2)
        .with_seed(seed)
        .with_faults(plan);
        cfg.liveness_timeout = SimDuration::from_secs(30);
        cfg.retry = RetryPolicy::new(SimDuration::from_millis(20), 2.0, 16);
        ClusterSim::new(cfg).run()
    }

    proptest! {
        /// Same seed + same fault plan ⇒ bit-identical results. The entire
        /// fault subsystem is replayable.
        #[test]
        fn same_seed_same_plan_is_deterministic(
            seed in 0u64..1_000,
            loss_sel in 0u32..3,
            straggle_sel in 0u32..2,
            crash_sel in 0u32..2,
        ) {
            let loss_bp = [0u32, 100, 500][loss_sel as usize];
            let (straggle, crash) = (straggle_sel == 1, crash_sel == 1);
            let a = run_with(seed, loss_bp, straggle, crash);
            let b = run_with(seed, loss_bp, straggle, crash);
            prop_assert_eq!(a, b);
        }
    }
}
