//! The event-driven cluster simulator: workers computing forward/backward
//! passes, server shards aggregating and updating, all traffic flowing
//! through the fluid network under the configured synchronization strategy.

use crate::config::{ClusterConfig, MessageStats, RunResult, UtilizationTrace};
#[allow(unused_imports)]
use crate::config::WireCompression;
use crate::egress::{EgressUnit, OutMsg};
use p3_core::{Egress, PrioQueue, PullTiming, ResponseMode, ServerProcessing};
use p3_des::{EventQueue, SimDuration, SimTime, SplitMix64};
use p3_models::BlockTiming;
use p3_net::{FlowId, MachineId, Network, NetworkConfig, Priority};
use p3_pserver::{wire_bytes, ShardPlan, HEADER_BYTES};
use std::collections::HashMap;

/// Hard cap on processed events — a run that exceeds it is wedged.
const EVENT_CAP: u64 = 500_000_000;

/// Index of a role in per-machine `[worker, server]` state arrays.
fn role_slot(role: Role) -> usize {
    match role {
        Role::Worker => 0,
        Role::Server => 1,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Fwd(usize),
    Bwd(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Worker,
    Server,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    StartWorker { worker: usize },
    Compute { worker: usize, phase: Phase },
    EgressReady { machine: usize, role: Role, dst: MachineId },
    /// A single-consumer egress may admit its next message (the consumer
    /// thread finished serializing the previous one).
    AdmitKick { machine: usize, role: Role },
    ProcDone { server: usize },
    NetWake,
}

/// What an in-flight message is, resolved when its flow is delivered.
#[derive(Debug, Clone, Copy)]
enum MsgKind {
    /// Worker → server gradients for one key of one round.
    Push { key: usize, round: u64 },
    /// Server → worker updated parameters.
    Response { key: usize, version: u64 },
    /// Server → worker update notification (baseline only).
    Notify { key: usize, version: u64 },
    /// Worker → server parameter request; answered once `version[key] >=
    /// round`.
    PullReq { key: usize, round: u64 },
}

#[derive(Debug, Clone, Copy)]
struct MsgCtx {
    kind: MsgKind,
    src: usize,
    dst: usize,
}

#[derive(Debug)]
struct WorkerState {
    iter: u64,
    completed: u64,
    received_version: Vec<u64>,
    notified_version: Vec<u64>,
    waiting_block: Option<usize>,
    /// Instant the worker stalled waiting for parameters, if stalled.
    stalled_since: Option<SimTime>,
    /// Accumulated stall time.
    stalled_total: SimDuration,
    started: bool,
    measure_start: Option<SimTime>,
    measure_end: Option<SimTime>,
    jitter: f64,
    egress: EgressUnit,
    rng: SplitMix64,
}

#[derive(Debug)]
struct ServerState {
    /// Pending received gradient messages awaiting processing.
    proc_queue: PrioQueue<ProcItem>,
    proc_busy: bool,
    /// Per-key pushes received in the current round (indexed by key).
    received: Vec<u32>,
    /// Per-key completed rounds (indexed by key).
    version: Vec<u64>,
    /// Workers whose deferred pulls await each key's next version.
    pending_pulls: Vec<Vec<usize>>,
    /// The message currently occupying the processing unit.
    current: Option<ProcItem>,
    egress: EgressUnit,
}

#[derive(Debug, Clone, Copy)]
struct ProcItem {
    key: usize,
    round: u64,
}

/// One fully configured simulation, ready to [`ClusterSim::run`].
///
/// # Examples
///
/// ```
/// use p3_cluster::{ClusterConfig, ClusterSim};
/// use p3_core::SyncStrategy;
/// use p3_models::ModelSpec;
/// use p3_net::Bandwidth;
///
/// let cfg = ClusterConfig::new(
///     ModelSpec::resnet50(),
///     SyncStrategy::p3(),
///     4,
///     Bandwidth::from_gbps(10.0),
/// ).with_iters(1, 2);
/// let result = ClusterSim::new(cfg).run();
/// assert!(result.throughput > 0.0);
/// ```
#[derive(Debug)]
pub struct ClusterSim {
    cfg: ClusterConfig,
    queue: EventQueue<Ev>,
    net: Network,
    workers: Vec<WorkerState>,
    servers: Vec<ServerState>,
    plan: ShardPlan,
    prio: Vec<u32>,
    /// Forward/backward durations per compute block for a full batch.
    block_times: Vec<BlockTiming>,
    /// Key indices per compute block, in block order.
    keys_of_block: Vec<Vec<usize>>,
    msgs: HashMap<u64, MsgCtx>,
    flows: HashMap<FlowId, u64>,
    next_msg_id: u64,
    next_wake: Option<SimTime>,
    /// Per-(machine, role) earliest next admission instant for
    /// single-consumer egress (serial per-message serialization cost).
    admit_gate: Vec<[SimTime; 2]>,
    /// Deduplication of scheduled AdmitKick events.
    admit_kick_at: Vec<[Option<SimTime>; 2]>,
    events: u64,
    stats: MessageStats,
}

impl ClusterSim {
    /// Builds the simulation state for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero machines, zero
    /// batch).
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(cfg.machines > 0, "at least one machine required");
        assert!(cfg.batch_per_worker > 0, "zero batch");
        let plan = cfg.strategy.plan(&cfg.model, cfg.machines, cfg.seed);
        let prio = cfg.strategy.priorities(&plan);
        let block_times = cfg.compute.block_times(&cfg.model, cfg.batch_per_worker);

        // Map arrays to compute blocks, then keys to blocks.
        let mut block_of_array = Vec::new();
        for (b, blk) in cfg.model.blocks().iter().enumerate() {
            for _ in &blk.arrays {
                block_of_array.push(b);
            }
        }
        let mut keys_of_block: Vec<Vec<usize>> = vec![Vec::new(); cfg.model.blocks().len()];
        for (k, s) in plan.slices().iter().enumerate() {
            keys_of_block[block_of_array[s.array]].push(k);
        }

        let net_cfg = {
            let mut c = NetworkConfig::new(cfg.machines, cfg.bandwidth)
                .with_latency(cfg.latency)
                .with_efficiency(cfg.net_efficiency)
                .with_flow_cap(cfg.flow_cap);
            if let Some(bin) = cfg.trace_bin {
                c = c.with_trace(bin);
            }
            c
        };

        let num_keys = plan.num_keys();
        let mk_worker_egress = || match cfg.strategy.egress {
            Egress::SingleConsumer => EgressUnit::single(cfg.machines),
            Egress::PerServerFifo => EgressUnit::per_dest(cfg.machines),
        };
        let mut rng = SplitMix64::new(cfg.seed ^ 0xC0FF_EE00);
        let workers = (0..cfg.machines)
            .map(|_| WorkerState {
                iter: 0,
                completed: 0,
                received_version: vec![0; num_keys],
                notified_version: vec![0; num_keys],
                waiting_block: None,
                stalled_since: None,
                stalled_total: SimDuration::ZERO,
                started: false,
                measure_start: None,
                measure_end: None,
                jitter: 1.0,
                egress: mk_worker_egress(),
                rng: rng.fork(),
            })
            .collect();
        let servers = (0..cfg.machines)
            .map(|_| ServerState {
                proc_queue: PrioQueue::new(),
                proc_busy: false,
                received: vec![0; num_keys],
                version: vec![0; num_keys],
                pending_pulls: vec![Vec::new(); num_keys],
                current: None,
                egress: mk_worker_egress(),
            })
            .collect();

        ClusterSim {
            queue: EventQueue::new(),
            net: Network::new(net_cfg),
            workers,
            servers,
            plan,
            prio,
            block_times,
            keys_of_block,
            msgs: HashMap::new(),
            flows: HashMap::new(),
            next_msg_id: 0,
            next_wake: None,
            admit_gate: vec![[SimTime::ZERO; 2]; cfg.machines],
            admit_kick_at: vec![[None; 2]; cfg.machines],
            events: 0,
            stats: MessageStats::default(),
            cfg,
        }
    }

    /// Runs to completion and reports measured throughput.
    ///
    /// # Panics
    ///
    /// Panics if the simulation deadlocks (event queue drains before all
    /// workers finish) or exceeds the event cap.
    pub fn run(mut self) -> RunResult {
        let target = self.cfg.warmup_iters + self.cfg.measure_iters;
        // Staggered worker starts model real cluster skew.
        let mut rng = SplitMix64::new(self.cfg.seed ^ 0x51A6_6E2);
        for w in 0..self.cfg.machines {
            let off = SimDuration::from_nanos(
                (rng.next_f64() * self.cfg.start_stagger.as_nanos() as f64) as u64,
            );
            self.queue.schedule_at(SimTime::ZERO + off, Ev::StartWorker { worker: w });
        }

        while self.workers.iter().any(|w| w.completed < target) {
            let Some((_, ev)) = self.queue.pop() else {
                panic!(
                    "simulation deadlocked: no events left, progress {:?}",
                    self.workers.iter().map(|w| w.completed).collect::<Vec<_>>()
                );
            };
            self.events += 1;
            assert!(self.events < EVENT_CAP, "event cap exceeded — wedged simulation");
            self.dispatch(ev);
        }

        self.finish(target)
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::StartWorker { worker } => {
                let now = self.queue.now();
                let w = &mut self.workers[worker];
                w.started = true;
                if self.cfg.warmup_iters == 0 {
                    w.measure_start = Some(now);
                }
                self.resample_jitter(worker);
                self.try_start_fwd(worker, 0);
            }
            Ev::Compute { worker, phase } => match phase {
                Phase::Fwd(b) => self.on_fwd_done(worker, b),
                Phase::Bwd(b) => self.on_bwd_done(worker, b),
            },
            Ev::EgressReady { machine, role, dst } => {
                match role {
                    Role::Worker => self.workers[machine].egress.complete(dst),
                    Role::Server => self.servers[machine].egress.complete(dst),
                }
                self.kick_egress(machine, role);
            }
            Ev::AdmitKick { machine, role } => {
                let now = self.queue.now();
                let slot = role_slot(role);
                if self.admit_kick_at[machine][slot] == Some(now) {
                    self.admit_kick_at[machine][slot] = None;
                }
                self.kick_egress(machine, role);
            }
            Ev::ProcDone { server } => self.on_proc_done(server),
            Ev::NetWake => {
                let now = self.queue.now();
                if self.next_wake == Some(now) {
                    self.next_wake = None;
                }
                let done = self.net.poll(now);
                for flow in done {
                    let msg_id = self
                        .flows
                        .remove(&flow.id)
                        .expect("completed flow without a registered message");
                    self.on_delivered(msg_id);
                }
                self.schedule_net_wake();
            }
        }
    }

    // ------------------------------------------------------------------
    // Worker compute.

    fn fwd_ready(&self, worker: usize, block: usize) -> bool {
        let need = self.workers[worker].iter;
        self.keys_of_block[block]
            .iter()
            .all(|&k| self.workers[worker].received_version[k] >= need)
    }

    fn try_start_fwd(&mut self, worker: usize, block: usize) {
        let now = self.queue.now();
        if self.fwd_ready(worker, block) {
            let w = &mut self.workers[worker];
            w.waiting_block = None;
            if let Some(since) = w.stalled_since.take() {
                w.stalled_total += now - since;
            }
            let dur = self.block_times[block].fwd.mul_f64(self.workers[worker].jitter);
            self.queue.schedule_in(dur, Ev::Compute { worker, phase: Phase::Fwd(block) });
        } else {
            let w = &mut self.workers[worker];
            w.waiting_block = Some(block);
            if w.stalled_since.is_none() {
                w.stalled_since = Some(now);
            }
        }
    }

    fn on_fwd_done(&mut self, worker: usize, block: usize) {
        let last = self.block_times.len() - 1;
        if block < last {
            self.try_start_fwd(worker, block + 1);
        } else {
            let dur = self.block_times[last].bwd.mul_f64(self.workers[worker].jitter);
            self.queue.schedule_in(dur, Ev::Compute { worker, phase: Phase::Bwd(last) });
        }
    }

    fn on_bwd_done(&mut self, worker: usize, block: usize) {
        // Gradients for every array of this block are now ready: hand their
        // slices to the synchronization strategy (enqueue pushes).
        let round = self.workers[worker].iter;
        let keys: Vec<usize> = self.keys_of_block[block].clone();
        for k in keys {
            let slice = self.plan.slice(p3_pserver::Key(k as u64));
            let msg = OutMsg {
                dst: MachineId(slice.server.0),
                bytes: self.push_wire(slice.params),
                priority: Priority(self.prio[k]),
                msg_id: self.register_msg(MsgCtx {
                    kind: MsgKind::Push { key: k, round },
                    src: worker,
                    dst: slice.server.0,
                }),
            };
            self.workers[worker].egress.enqueue(msg);
        }
        self.kick_egress(worker, Role::Worker);

        if block > 0 {
            let dur = self.block_times[block - 1].bwd.mul_f64(self.workers[worker].jitter);
            self.queue
                .schedule_in(dur, Ev::Compute { worker, phase: Phase::Bwd(block - 1) });
        } else {
            self.on_iteration_complete(worker);
        }
    }

    fn on_iteration_complete(&mut self, worker: usize) {
        let now = self.queue.now();
        let w = &mut self.workers[worker];
        w.completed += 1;
        w.iter += 1;
        if w.completed == self.cfg.warmup_iters {
            w.measure_start = Some(now);
        }
        if w.completed == self.cfg.warmup_iters + self.cfg.measure_iters
            && w.measure_end.is_none()
        {
            w.measure_end = Some(now);
        }
        self.resample_jitter(worker);

        // TensorFlow-style: the next graph execution issues recv ops for
        // every parameter now.
        if self.cfg.strategy.pull_timing == PullTiming::NextIterationStart {
            let round = self.workers[worker].iter;
            for k in 0..self.plan.num_keys() {
                if self.workers[worker].received_version[k] < round {
                    self.send_pull_request(worker, k, round);
                }
            }
            self.kick_egress(worker, Role::Worker);
        }
        self.try_start_fwd(worker, 0);
    }

    fn resample_jitter(&mut self, worker: usize) {
        let frac = self.cfg.model.iteration_jitter();
        let w = &mut self.workers[worker];
        w.jitter = if frac > 0.0 {
            (1.0 + w.rng.normal() * frac).clamp(0.5, 2.0)
        } else {
            1.0
        };
    }

    // ------------------------------------------------------------------
    // Messaging.

    /// Wire size of a gradient push for `params` parameters, after any
    /// configured compression.
    fn push_wire(&self, params: u64) -> u64 {
        match self.cfg.wire_compression {
            Some(c) => HEADER_BYTES as u64 + ((4 * params) as f64 / c.push_ratio).ceil() as u64,
            None => wire_bytes(params),
        }
    }

    /// Wire size of a parameter response, after any configured compression.
    fn response_wire(&self, params: u64) -> u64 {
        match self.cfg.wire_compression {
            Some(c) => {
                HEADER_BYTES as u64 + ((4 * params) as f64 / c.response_ratio).ceil() as u64
            }
            None => wire_bytes(params),
        }
    }

    fn register_msg(&mut self, ctx: MsgCtx) -> u64 {
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        self.msgs.insert(id, ctx);
        id
    }

    fn send_pull_request(&mut self, worker: usize, key: usize, round: u64) {
        let slice = self.plan.slice(p3_pserver::Key(key as u64));
        let msg = OutMsg {
            dst: MachineId(slice.server.0),
            bytes: HEADER_BYTES as u64,
            priority: Priority(self.prio[key]),
            msg_id: self.register_msg(MsgCtx {
                kind: MsgKind::PullReq { key, round },
                src: worker,
                dst: slice.server.0,
            }),
        };
        self.workers[worker].egress.enqueue(msg);
    }

    /// Starts any transmissions an endpoint's scheduler allows.
    ///
    /// Per-destination (baseline) lanes transmit whenever idle — each
    /// connection has its own sender thread in MXNet. A single-consumer
    /// (P3) endpoint serializes per-message work on one thread: it admits
    /// at most one message per `msg_overhead`, modelling the consumer's
    /// serialization/syscall cost — the source of Figure 12's small-slice
    /// falloff.
    fn kick_egress(&mut self, machine: usize, role: Role) {
        let now = self.queue.now();
        let single = {
            let unit = match role {
                Role::Worker => &self.workers[machine].egress,
                Role::Server => &self.servers[machine].egress,
            };
            matches!(unit, EgressUnit::Single { .. })
        };
        if single {
            let slot = role_slot(role);
            let gate = self.admit_gate[machine][slot];
            if now < gate {
                self.schedule_admit_kick(machine, role, gate);
            } else {
                let admitted = match role {
                    Role::Worker => self.workers[machine].egress.start_one(),
                    Role::Server => self.servers[machine].egress.start_one(),
                };
                if let Some(m) = admitted {
                    let flow = self.net.start_flow(
                        now,
                        MachineId(machine),
                        m.dst,
                        m.bytes,
                        m.priority,
                        m.msg_id,
                    );
                    self.flows.insert(flow, m.msg_id);
                    let next = now + self.cfg.msg_overhead;
                    self.admit_gate[machine][slot] = next;
                    let backlog = match role {
                        Role::Worker => self.workers[machine].egress.backlog(),
                        Role::Server => self.servers[machine].egress.backlog(),
                    };
                    if backlog > 0 {
                        self.schedule_admit_kick(machine, role, next);
                    }
                }
            }
        } else {
            let ready = match role {
                Role::Worker => self.workers[machine].egress.start_ready(),
                Role::Server => self.servers[machine].egress.start_ready(),
            };
            for m in ready {
                let flow = self.net.start_flow(
                    now,
                    MachineId(machine),
                    m.dst,
                    m.bytes,
                    m.priority,
                    m.msg_id,
                );
                self.flows.insert(flow, m.msg_id);
            }
        }
        self.schedule_net_wake();
    }

    fn schedule_admit_kick(&mut self, machine: usize, role: Role, at: SimTime) {
        let slot = role_slot(role);
        if self.admit_kick_at[machine][slot].map_or(true, |t| at < t) {
            self.queue.schedule_at(at, Ev::AdmitKick { machine, role });
            self.admit_kick_at[machine][slot] = Some(at);
        }
    }

    fn schedule_net_wake(&mut self) {
        if let Some(t) = self.net.next_event_time() {
            if self.next_wake.map_or(true, |w| t < w) {
                self.queue.schedule_at(t, Ev::NetWake);
                self.next_wake = Some(t);
            }
        }
    }

    fn on_delivered(&mut self, msg_id: u64) {
        let ctx = self.msgs.remove(&msg_id).expect("delivery for unknown message");
        let now = self.queue.now();

        // Free the sender: single-consumer units release their window slot
        // immediately (their per-message cost was charged at admission);
        // per-destination lanes pay the endpoint overhead before reuse.
        let sender_role = match ctx.kind {
            MsgKind::Push { .. } | MsgKind::PullReq { .. } => Role::Worker,
            MsgKind::Response { .. } | MsgKind::Notify { .. } => Role::Server,
        };
        let sender_single = {
            let unit = match sender_role {
                Role::Worker => &self.workers[ctx.src].egress,
                Role::Server => &self.servers[ctx.src].egress,
            };
            matches!(unit, EgressUnit::Single { .. })
        };
        if sender_single {
            match sender_role {
                Role::Worker => self.workers[ctx.src].egress.complete(MachineId(ctx.dst)),
                Role::Server => self.servers[ctx.src].egress.complete(MachineId(ctx.dst)),
            }
            self.kick_egress(ctx.src, sender_role);
        } else {
            self.queue.schedule_at(
                now + self.cfg.msg_overhead,
                Ev::EgressReady { machine: ctx.src, role: sender_role, dst: MachineId(ctx.dst) },
            );
        }

        match ctx.kind {
            MsgKind::Push { key, round } => {
                self.stats.pushes += 1;
                let prio = match self.cfg.strategy.server_processing {
                    ServerProcessing::Priority => self.prio[key],
                    ServerProcessing::Fifo => 0,
                };
                self.servers[ctx.dst].proc_queue.push(prio, ProcItem { key, round });
                self.kick_proc(ctx.dst);
            }
            MsgKind::PullReq { key, round } => {
                self.stats.pull_requests += 1;
                let server = ctx.dst;
                if self.servers[server].version[key] >= round {
                    self.send_response(server, key, ctx.src);
                    self.kick_egress(server, Role::Server);
                } else {
                    self.servers[server].pending_pulls[key].push(ctx.src);
                }
            }
            MsgKind::Response { key, version } => {
                self.stats.responses += 1;
                let w = &mut self.workers[ctx.dst];
                if version > w.received_version[key] {
                    w.received_version[key] = version;
                }
                self.recheck_waiting(ctx.dst);
            }
            MsgKind::Notify { key, version } => {
                self.stats.notifies += 1;
                self.on_notify(ctx.dst, key, version);
            }
        }
    }

    fn on_notify(&mut self, worker: usize, key: usize, version: u64) {
        {
            let w = &mut self.workers[worker];
            if version > w.notified_version[key] {
                w.notified_version[key] = version;
            }
        }
        // MXNet pulls a layer only once every one of its parts has
        // notified (§4.2 explains why P3 removes this).
        let array = self.plan.slice(p3_pserver::Key(key as u64)).array;
        let keys = self.plan.slices_of_array(array).to_vec();
        let all_notified =
            keys.iter().all(|&k| self.workers[worker].notified_version[k] >= version);
        if all_notified && self.cfg.strategy.pull_timing == PullTiming::Eager {
            for &k in &keys {
                if self.workers[worker].received_version[k] < version
                    && self.workers[worker].notified_version[k] >= version
                {
                    self.send_pull_request(worker, k, version);
                }
            }
            self.kick_egress(worker, Role::Worker);
        }
    }

    fn recheck_waiting(&mut self, worker: usize) {
        if let Some(b) = self.workers[worker].waiting_block {
            if self.fwd_ready(worker, b) {
                self.try_start_fwd(worker, b);
            }
        }
    }

    // ------------------------------------------------------------------
    // Server processing.

    fn kick_proc(&mut self, server: usize) {
        if self.servers[server].proc_busy {
            return;
        }
        let Some(item) = self.servers[server].proc_queue.pop() else {
            return;
        };
        let params = self.plan.slice(p3_pserver::Key(item.key as u64)).params;
        let s = &self.servers[server];
        assert_eq!(
            s.version[item.key], item.round,
            "push for round {} processed while key {} is at version {}",
            item.round, item.key, s.version[item.key]
        );
        let completing = s.received[item.key] + 1 == self.cfg.machines as u32;
        let mut nanos = self.cfg.proc_fixed.as_nanos() as f64
            + self.cfg.agg_ns_per_param * params as f64;
        if completing {
            nanos += self.cfg.upd_ns_per_param * params as f64;
        }
        self.servers[server].proc_busy = true;
        self.servers[server].current = Some(item);
        self.queue
            .schedule_in(SimDuration::from_nanos(nanos as u64), Ev::ProcDone { server });
    }

    fn on_proc_done(&mut self, server: usize) {
        let item = self.servers[server]
            .current
            .take()
            .expect("ProcDone without an item in flight");
        self.servers[server].proc_busy = false;
        self.servers[server].received[item.key] += 1;
        if self.servers[server].received[item.key] == self.cfg.machines as u32 {
            self.servers[server].received[item.key] = 0;
            self.servers[server].version[item.key] += 1;
            let version = self.servers[server].version[item.key];
            match self.cfg.strategy.response {
                ResponseMode::ImmediateBroadcast => {
                    for w in 0..self.cfg.machines {
                        self.send_response_versioned(server, item.key, w, version);
                    }
                }
                ResponseMode::NotifyThenPull => {
                    if self.cfg.strategy.pull_timing == PullTiming::Eager {
                        let bytes = HEADER_BYTES as u64;
                        for w in 0..self.cfg.machines {
                            let msg = OutMsg {
                                dst: MachineId(w),
                                bytes,
                                priority: Priority(self.prio[item.key]),
                                msg_id: self.register_msg(MsgCtx {
                                    kind: MsgKind::Notify { key: item.key, version },
                                    src: server,
                                    dst: w,
                                }),
                            };
                            self.servers[server].egress.enqueue(msg);
                        }
                    }
                    // Deferred (TF-style) pulls waiting on this version:
                    let waiting = std::mem::take(&mut self.servers[server].pending_pulls[item.key]);
                    for w in waiting {
                        self.send_response_versioned(server, item.key, w, version);
                    }
                }
            }
            self.kick_egress(server, Role::Server);
        }
        self.kick_proc(server);
    }

    fn send_response(&mut self, server: usize, key: usize, worker: usize) {
        let version = self.servers[server].version[key];
        self.send_response_versioned(server, key, worker, version);
    }

    fn send_response_versioned(&mut self, server: usize, key: usize, worker: usize, version: u64) {
        let params = self.plan.slice(p3_pserver::Key(key as u64)).params;
        let msg = OutMsg {
            dst: MachineId(worker),
            bytes: self.response_wire(params),
            priority: Priority(self.prio[key]),
            msg_id: self.register_msg(MsgCtx {
                kind: MsgKind::Response { key, version },
                src: server,
                dst: worker,
            }),
        };
        self.servers[server].egress.enqueue(msg);
    }

    // ------------------------------------------------------------------
    // Results.

    fn finish(self, target: u64) -> RunResult {
        let batch = self.cfg.batch_per_worker as f64;
        let measure_iters = self.cfg.measure_iters as f64;
        let mut total = 0.0;
        let mut iter_sum = 0.0;
        let mut stall_sum = 0.0;
        let mut finished_at = SimTime::ZERO;
        for w in &self.workers {
            let start = w.measure_start.expect("worker never started measuring");
            let end = w.measure_end.expect("worker never finished measuring");
            assert!(w.completed >= target);
            let secs = (end - start).as_secs_f64();
            total += measure_iters * batch / secs;
            iter_sum += secs / measure_iters;
            stall_sum += w.stalled_total.as_secs_f64() / end.as_secs_f64();
            finished_at = finished_at.max(end);
        }
        let n = self.workers.len() as f64;
        let trace = self.cfg.trace_bin.map(|bin| UtilizationTrace {
            bin,
            tx_gbps: self.net.tx_trace(MachineId(0)).expect("trace enabled").gbps_series(),
            rx_gbps: self.net.rx_trace(MachineId(0)).expect("trace enabled").gbps_series(),
        });
        RunResult {
            throughput: total,
            per_worker_throughput: total / n,
            unit: self.cfg.model.unit(),
            mean_iteration: SimDuration::from_secs_f64(iter_sum / n),
            mean_stall_fraction: stall_sum / n,
            finished_at,
            events: self.events,
            messages: self.stats,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3_core::SyncStrategy;
    use p3_models::ModelSpec;
    use p3_net::Bandwidth;

    fn cfg(strategy: SyncStrategy, gbps: f64) -> ClusterConfig {
        ClusterConfig::new(ModelSpec::resnet50(), strategy, 4, Bandwidth::from_gbps(gbps))
            .with_iters(1, 2)
            .with_seed(7)
    }

    #[test]
    fn every_strategy_terminates_and_reports() {
        for strategy in [
            SyncStrategy::baseline(),
            SyncStrategy::slicing_only(),
            SyncStrategy::p3(),
            SyncStrategy::tf_style(),
            SyncStrategy::poseidon_wfbp(),
            SyncStrategy::p3_generation_order(),
            SyncStrategy::p3_random_order(3),
            SyncStrategy::p3_notify_pull(),
        ] {
            let name = strategy.name().to_string();
            let r = ClusterSim::new(cfg(strategy, 8.0)).run();
            assert!(r.throughput > 0.0, "{name} produced no throughput");
            assert!(r.events > 0);
            assert!(!r.mean_iteration.is_zero());
        }
    }

    #[test]
    fn single_machine_cluster_works() {
        // Degenerate deployment: worker and its only server share one
        // machine; all traffic is loopback.
        let c = ClusterConfig::new(
            ModelSpec::resnet50(),
            SyncStrategy::p3(),
            1,
            Bandwidth::from_gbps(1.0),
        )
        .with_iters(1, 2);
        let r = ClusterSim::new(c).run();
        // Loopback never binds: throughput equals the compute plateau.
        let plateau = ModelSpec::resnet50().reference_throughput();
        assert!((r.throughput - plateau).abs() / plateau < 0.05, "got {}", r.throughput);
    }

    #[test]
    fn starved_network_still_completes() {
        // 50 Mbps: brutally communication-bound but must terminate.
        let r = ClusterSim::new(cfg(SyncStrategy::p3(), 0.05)).run();
        assert!(r.throughput > 0.0);
        assert!(r.throughput < 20.0, "50 Mbps cannot be compute-bound: {}", r.throughput);
    }

    #[test]
    fn tf_style_is_no_faster_than_eager_baseline() {
        // Deferring pulls to the next iteration start removes overlap.
        let tf = ClusterSim::new(cfg(SyncStrategy::tf_style(), 3.0)).run();
        let eager = ClusterSim::new(cfg(SyncStrategy::baseline(), 3.0)).run();
        assert!(
            tf.throughput <= eager.throughput * 1.02,
            "tf {} vs eager {}",
            tf.throughput,
            eager.throughput
        );
    }

    #[test]
    fn immediate_broadcast_helps_p3() {
        // Ablation §5: removing the notify+pull round trip is part of P3's
        // win.
        let with = ClusterSim::new(cfg(SyncStrategy::p3(), 3.0)).run();
        let without = ClusterSim::new(cfg(SyncStrategy::p3_notify_pull(), 3.0)).run();
        assert!(
            with.throughput >= without.throughput * 0.98,
            "broadcast {} vs notify-pull {}",
            with.throughput,
            without.throughput
        );
    }

    #[test]
    fn sockeye_jitter_produces_unequal_iterations() {
        let c = ClusterConfig::new(
            ModelSpec::sockeye(),
            SyncStrategy::p3(),
            2,
            Bandwidth::from_gbps(20.0),
        )
        .with_iters(1, 6);
        let r = ClusterSim::new(c).run();
        // With ±12% compute jitter and a sync barrier, the mean iteration
        // must exceed the jitter-free compute time (max of workers).
        let jitter_free = ModelSpec::sockeye().default_batch() as f64
            / ModelSpec::sockeye().reference_throughput();
        assert!(
            r.mean_iteration.as_secs_f64() > jitter_free * 1.005,
            "barrier should amplify stragglers: {} vs {}",
            r.mean_iteration.as_secs_f64(),
            jitter_free
        );
    }

    #[test]
    fn traces_cover_the_whole_run() {
        let c = cfg(SyncStrategy::p3(), 4.0).with_trace(SimDuration::from_millis(10));
        let r = ClusterSim::new(c).run();
        let t = r.trace.expect("tracing enabled");
        assert!(!t.tx_gbps.is_empty());
        assert!(!t.rx_gbps.is_empty());
        // Something was actually transmitted and received.
        assert!(t.tx_gbps.iter().sum::<f64>() > 0.0);
        assert!(t.rx_gbps.iter().sum::<f64>() > 0.0);
        // And never above the nominal NIC rate.
        assert!(t.tx_gbps.iter().all(|&g| g <= 4.0 + 1e-9));
    }

    #[test]
    fn seeds_change_details_not_regime() {
        let a = ClusterSim::new(cfg(SyncStrategy::p3(), 4.0).with_seed(1)).run();
        let b = ClusterSim::new(cfg(SyncStrategy::p3(), 4.0).with_seed(2)).run();
        // KVStore's random placement and stagger differ, but throughput
        // stays in the same regime.
        assert!((a.throughput / b.throughput - 1.0).abs() < 0.15);
    }

    #[test]
    fn inception_runs_under_all_fig7_strategies() {
        for strategy in SyncStrategy::fig7_series() {
            let c = ClusterConfig::new(
                ModelSpec::inception_v3(),
                strategy,
                4,
                Bandwidth::from_gbps(4.0),
            )
            .with_iters(1, 2);
            assert!(ClusterSim::new(c).run().throughput > 0.0);
        }
    }
}

#[cfg(test)]
mod stall_tests {
    use super::*;
    use p3_core::SyncStrategy;
    use p3_models::ModelSpec;
    use p3_net::Bandwidth;

    #[test]
    fn p3_stalls_less_than_baseline_when_constrained() {
        let run = |s: SyncStrategy| {
            ClusterSim::new(
                ClusterConfig::new(
                    ModelSpec::resnet50(),
                    s,
                    4,
                    Bandwidth::from_gbps(3.0),
                )
                .with_iters(1, 3),
            )
            .run()
        };
        let base = run(SyncStrategy::baseline());
        let p3 = run(SyncStrategy::p3());
        assert!(
            p3.mean_stall_fraction < base.mean_stall_fraction,
            "P3 stall {:.3} vs baseline {:.3}",
            p3.mean_stall_fraction,
            base.mean_stall_fraction
        );
    }

    #[test]
    fn compute_bound_runs_barely_stall() {
        let r = ClusterSim::new(
            ClusterConfig::new(
                ModelSpec::resnet50(),
                SyncStrategy::p3(),
                4,
                Bandwidth::from_gbps(50.0),
            )
            .with_iters(1, 3),
        )
        .run();
        assert!(r.mean_stall_fraction < 0.05, "stall {:.3}", r.mean_stall_fraction);
    }
}

#[cfg(test)]
mod message_accounting_tests {
    use super::*;
    use p3_core::SyncStrategy;
    use p3_models::ModelSpec;
    use p3_net::Bandwidth;

    /// Runs `iters` total iterations and returns (stats, keys, machines).
    fn run_counted(strategy: SyncStrategy, iters: u64) -> (MessageStats, u64, u64) {
        let model = ModelSpec::resnet50();
        let machines = 3usize;
        let keys = strategy.plan(&model, machines, 0x9e3779b9).num_keys() as u64;
        let cfg = ClusterConfig::new(model, strategy, machines, Bandwidth::from_gbps(50.0))
            .with_iters(0, iters);
        let r = ClusterSim::new(cfg).run();
        (r.messages, keys, machines as u64)
    }

    #[test]
    fn p3_message_budget_is_exact() {
        // ImmediateBroadcast: per round, every key is pushed by every
        // worker and broadcast back to every worker; nothing else.
        let (m, keys, w) = run_counted(SyncStrategy::p3(), 3);
        let rounds = 3;
        // The run halts the instant the last worker finishes its backward
        // pass; the final round's tail messages may still be in flight.
        let full = keys * w * rounds;
        assert!(m.pushes <= full && m.pushes >= full - keys * w, "pushes {}", m.pushes);
        assert_eq!(m.notifies, 0);
        assert_eq!(m.pull_requests, 0);
        // Responses: the final round's broadcasts may still be in flight
        // when the run stops, so allow the tail to be missing.
        let full = keys * w * rounds;
        assert!(
            m.responses <= full && m.responses >= full - keys * w,
            "responses {} vs expected ~{}",
            m.responses,
            full
        );
    }

    #[test]
    fn baseline_message_budget_is_exact() {
        // NotifyThenPull: per round and key, W pushes, W notifies, W pull
        // requests, W responses.
        let (m, keys, w) = run_counted(SyncStrategy::baseline(), 3);
        let rounds = 3;
        let full = keys * w * rounds;
        assert!(m.pushes <= full && m.pushes >= full - keys * w, "pushes {}", m.pushes);
        assert!(m.notifies <= full && m.notifies >= full - keys * w);
        assert!(m.pull_requests <= m.notifies);
        assert!(m.responses <= m.pull_requests);
        // All but the in-flight tail must complete for training to advance:
        // round r+1 pushes require round r responses.
        assert!(m.responses >= keys * w * (rounds - 1));
    }

    #[test]
    fn tf_style_pulls_everything_every_iteration() {
        let (m, keys, w) = run_counted(SyncStrategy::tf_style(), 2);
        // No notifies in the TF model; pulls are issued per key per
        // iteration boundary.
        assert_eq!(m.notifies, 0);
        assert!(m.pull_requests >= keys * w, "pulls {}", m.pull_requests);
    }
}
