//! Offline drop-in subset of the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of the criterion API its benches use:
//! [`Criterion::benchmark_group`]/[`Criterion::bench_function`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`BenchmarkId`],
//! [`BatchSize`], and the `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery it takes a median of
//! per-iteration wall times over a short measurement window and prints one
//! line per benchmark. Like the real crate, running under `cargo test`
//! (no `--bench` argument) executes each routine once as a smoke test.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How expensive a batched setup's output is to hold in memory; the stub
/// only uses it to pick batch granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Many inputs per measurement batch.
    SmallInput,
    /// One input per measurement batch.
    LargeInput,
}

/// A benchmark label with a parameter, printed as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// Opaque-value identity function, mirroring `criterion::black_box`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    /// `cargo bench`: measure and report.
    Measure,
    /// `cargo test` on a harness=false bench: run each routine once.
    Smoke,
}

/// Measures one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    /// Median nanoseconds per iteration, filled in by `iter*`.
    reported: Option<f64>,
}

/// Per-iteration budget: enough samples for a stable median without the
/// multi-second runs of the real harness.
const MAX_SAMPLES: usize = 30;
const TIME_BUDGET: Duration = Duration::from_millis(300);

impl Bencher {
    /// Times `routine` repeatedly and records the median iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if matches!(self.mode, Mode::Smoke) {
            black_box(routine());
            return;
        }
        black_box(routine()); // warm-up
        let mut samples = Vec::with_capacity(MAX_SAMPLES);
        let window = Instant::now();
        while samples.len() < MAX_SAMPLES && window.elapsed() < TIME_BUDGET {
            let t = Instant::now();
            black_box(routine());
            samples.push(t.elapsed().as_nanos() as f64);
        }
        self.record(samples);
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if matches!(self.mode, Mode::Smoke) {
            black_box(routine(setup()));
            return;
        }
        black_box(routine(setup())); // warm-up
        let mut samples = Vec::with_capacity(MAX_SAMPLES);
        let window = Instant::now();
        while samples.len() < MAX_SAMPLES && window.elapsed() < TIME_BUDGET {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            samples.push(t.elapsed().as_nanos() as f64);
        }
        self.record(samples);
    }

    fn record(&mut self, mut samples: Vec<f64>) {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timings"));
        self.reported = Some(samples[samples.len() / 2]);
    }
}

/// The top-level harness handle passed to every benchmark function.
#[derive(Debug)]
pub struct Criterion {
    mode: Mode,
}

impl Criterion {
    fn run_one(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            mode: self.mode,
            reported: None,
        };
        f(&mut b);
        match self.mode {
            Mode::Smoke => println!("bench {id} ... ok (smoke)"),
            Mode::Measure => match b.reported {
                Some(ns) => println!("bench {id:<50} {}", fmt_ns(ns)),
                None => println!("bench {id:<50} (no measurement)"),
            },
        }
    }

    /// A named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.run_one(&id.to_string(), f);
        self
    }
}

/// See [`Criterion::benchmark_group`].
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes its own sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark over one prepared input.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        self.c.run_one(&full, |b| f(b, input));
        self
    }

    /// Runs a single named benchmark inside this group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        self.c.run_one(&full, f);
        self
    }

    /// Ends the group (a no-op here; kept for API compatibility).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:>10.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:>10.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:>10.3} µs", ns / 1e3)
    } else {
        format!("{ns:>10.0} ns")
    }
}

/// Entry point used by `criterion_main!`; runs every registered group.
pub fn runner(groups: &[fn(&mut Criterion)]) {
    // `cargo bench` passes `--bench`; `cargo test` does not. Mirror the
    // real crate: without it, just smoke-test each routine once.
    let measure = std::env::args().any(|a| a == "--bench");
    let mut c = Criterion {
        mode: if measure { Mode::Measure } else { Mode::Smoke },
    };
    for g in groups {
        g(&mut c);
    }
}

/// Bundles benchmark functions under one name for `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() -> &'static [fn(&mut $crate::Criterion)] {
            &[$($target),+]
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($crate::runner($group());)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_routines_once() {
        let mut c = Criterion { mode: Mode::Smoke };
        let mut calls = 0;
        c.bench_function("counted", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn measure_mode_reports_a_median() {
        let mut c = Criterion {
            mode: Mode::Measure,
        };
        let mut g = c.benchmark_group("grp");
        g.sample_size(10)
            .bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| b.iter(|| x * 2));
        g.finish();
        let mut b = Bencher {
            mode: Mode::Measure,
            reported: None,
        };
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.reported.is_some());
    }

    #[test]
    fn formatting_picks_sane_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2.5e9).ends_with('s'));
    }
}
