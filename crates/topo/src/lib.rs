//! # p3-topo — cluster topology model
//!
//! The paper's testbed (and every simulation in `p3-cluster` so far) is a
//! single flat switch: each machine's NIC ports are the only capacity
//! constraints. Production parameter-server traffic dies somewhere else —
//! at the oversubscribed rack uplinks (Parameter Hub, Luo et al., SoCC
//! 2018). This crate models that: a [`Topology`] groups machines into
//! racks behind top-of-rack switches whose core uplinks carry only
//! `1/oversub` of the rack's aggregate NIC capacity, and
//! [`Topology::compile`] lowers it to the [`p3_net::LinkGraph`] the
//! multi-constraint allocator water-fills over.
//!
//! [`Placement`] captures the second production lever — *where* workers
//! and PS shards sit relative to the rack structure (Park et al. 2019) —
//! as policies the cluster simulator applies to its shard plan.
//!
//! # Examples
//!
//! ```
//! use p3_net::Bandwidth;
//! use p3_topo::Topology;
//!
//! // 4 racks × 4 machines behind a 4:1-oversubscribed core.
//! let topo = Topology::new(4, 4, 4.0);
//! assert_eq!(topo.machines(), 16);
//! assert_eq!(topo.rack_of(5), 1);
//! let g = topo.compile(Bandwidth::from_gbps(10.0));
//! // Cross-rack paths take four hops: src tx, rack up, rack down, dst rx.
//! assert_eq!(g.path(0, 15).len(), 4);
//! // Uplink capacity = 4 NICs / 4 oversub = one NIC's worth.
//! let up = g.path(0, 15)[1];
//! assert_eq!(g.link_cap(up), Bandwidth::from_gbps(10.0).bytes_per_sec());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use p3_net::{Bandwidth, LinkGraph, LinkId};

/// A cluster of machines grouped into racks behind an oversubscribed core.
///
/// Machines are numbered rack-major: rack `r` holds machines
/// `r*rack_size .. (r+1)*rack_size`. Every machine has a full-duplex NIC
/// (a default speed supplied at [`Topology::compile`] time, overridable
/// per machine); every rack has one uplink and one downlink to the core,
/// each of capacity `sum(rack NIC speeds) / oversub`. Intra-rack traffic
/// switches locally at the ToR and only crosses the endpoint ports;
/// cross-rack traffic additionally crosses the source rack's uplink and
/// the destination rack's downlink — the fixed path per machine pair that
/// [`Topology::compile`] installs in the [`LinkGraph`].
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    racks: usize,
    rack_size: usize,
    oversub: f64,
    /// Per-machine NIC speed overrides (heterogeneous clusters); `None`
    /// entries use the default NIC speed given to `compile`.
    nic_overrides: Vec<Option<Bandwidth>>,
}

impl Topology {
    /// `racks` racks of `rack_size` machines each behind a core
    /// oversubscribed by `oversub` (1.0 = full bisection bandwidth).
    ///
    /// # Panics
    ///
    /// Panics if `racks` or `rack_size` is zero, or if `oversub` is not
    /// finite and ≥ 1.
    pub fn new(racks: usize, rack_size: usize, oversub: f64) -> Self {
        assert!(racks > 0, "a topology needs at least one rack");
        assert!(rack_size > 0, "a rack needs at least one machine");
        assert!(
            oversub.is_finite() && oversub >= 1.0,
            "oversubscription factor {oversub} must be finite and >= 1"
        );
        Topology {
            racks,
            rack_size,
            oversub,
            nic_overrides: vec![None; racks * rack_size],
        }
    }

    /// Overrides one machine's NIC speed (both directions) — heterogeneous
    /// clusters mixing, say, 10 and 25 Gbps nodes.
    ///
    /// # Panics
    ///
    /// Panics if `machine` is out of range.
    pub fn with_nic(mut self, machine: usize, nic: Bandwidth) -> Self {
        assert!(machine < self.machines(), "unknown machine {machine}");
        self.nic_overrides[machine] = Some(nic);
        self
    }

    /// Parses the CLI spec `racks=R,size=S,oversub=F` (fields in any
    /// order; `oversub` optional, defaulting to 1).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field on malformed input.
    ///
    /// # Examples
    ///
    /// ```
    /// use p3_topo::Topology;
    /// let t = Topology::parse_spec("racks=2,size=4,oversub=8").unwrap();
    /// assert_eq!((t.racks(), t.rack_size(), t.oversub()), (2, 4, 8.0));
    /// assert!(Topology::parse_spec("racks=0,size=4").is_err());
    /// ```
    pub fn parse_spec(spec: &str) -> Result<Topology, String> {
        let mut racks: Option<usize> = None;
        let mut size: Option<usize> = None;
        let mut oversub = 1.0f64;
        for field in spec.split(',') {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("topology field '{field}' is not key=value"))?;
            match key.trim() {
                "racks" => {
                    racks = Some(
                        value
                            .trim()
                            .parse()
                            .map_err(|_| format!("bad racks '{value}'"))?,
                    );
                }
                "size" => {
                    size = Some(
                        value
                            .trim()
                            .parse()
                            .map_err(|_| format!("bad size '{value}'"))?,
                    );
                }
                "oversub" => {
                    oversub = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad oversub '{value}'"))?;
                }
                other => return Err(format!("unknown topology field '{other}'")),
            }
        }
        let racks = racks.ok_or("topology spec missing racks=R")?;
        let size = size.ok_or("topology spec missing size=S")?;
        if racks == 0 || size == 0 {
            return Err("racks and size must be positive".into());
        }
        if !(oversub.is_finite() && oversub >= 1.0) {
            return Err(format!("oversub {oversub} must be finite and >= 1"));
        }
        Ok(Topology::new(racks, size, oversub))
    }

    /// Number of racks.
    pub fn racks(&self) -> usize {
        self.racks
    }

    /// Machines per rack.
    pub fn rack_size(&self) -> usize {
        self.rack_size
    }

    /// Core oversubscription factor.
    pub fn oversub(&self) -> f64 {
        self.oversub
    }

    /// Total machine count (`racks * rack_size`).
    pub fn machines(&self) -> usize {
        self.racks * self.rack_size
    }

    /// The rack holding `machine`.
    ///
    /// # Panics
    ///
    /// Panics if `machine` is out of range.
    pub fn rack_of(&self, machine: usize) -> usize {
        assert!(machine < self.machines(), "unknown machine {machine}");
        machine / self.rack_size
    }

    /// The machines of rack `r`, in index order.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn rack_members(&self, r: usize) -> std::ops::Range<usize> {
        assert!(r < self.racks, "unknown rack {r}");
        r * self.rack_size..(r + 1) * self.rack_size
    }

    /// The designated rack-local aggregator machine of rack `r` (its
    /// lowest machine index), used by the PHub-style placement policy.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn aggregator_of(&self, r: usize) -> usize {
        self.rack_members(r).start
    }

    /// True when the topology is a single rack — cross-rack links exist
    /// on no path, so the fabric degenerates to the flat switch model.
    pub fn is_single_rack(&self) -> bool {
        self.racks == 1
    }

    /// The NIC speed of one machine given the cluster default.
    ///
    /// # Panics
    ///
    /// Panics if `machine` is out of range.
    pub fn nic_of(&self, machine: usize, default_nic: Bandwidth) -> Bandwidth {
        assert!(machine < self.machines(), "unknown machine {machine}");
        self.nic_overrides[machine].unwrap_or(default_nic)
    }

    /// Lowers the topology to the link graph the allocator runs on:
    /// per-machine tx/rx ports at NIC speed, one uplink + one downlink
    /// per rack at `sum(rack NICs) / oversub` (named `rack{r}.up` /
    /// `rack{r}.down`), and the fixed path per machine pair. Single-rack
    /// topologies produce an endpoint-only graph — bit-compatible with
    /// the flat allocator.
    pub fn compile(&self, default_nic: Bandwidth) -> LinkGraph {
        let nics: Vec<f64> = (0..self.machines())
            .map(|m| self.nic_of(m, default_nic).bytes_per_sec())
            .collect();
        let mut g = LinkGraph::new(&nics);
        if self.racks == 1 {
            return g;
        }
        let mut ups: Vec<LinkId> = Vec::with_capacity(self.racks);
        let mut downs: Vec<LinkId> = Vec::with_capacity(self.racks);
        for r in 0..self.racks {
            let rack_sum: f64 = self.rack_members(r).map(|m| nics[m]).sum();
            let core = rack_sum / self.oversub;
            ups.push(g.add_link(&format!("rack{r}.up"), core));
            downs.push(g.add_link(&format!("rack{r}.down"), core));
        }
        for src in 0..self.machines() {
            for dst in 0..self.machines() {
                if src == dst {
                    continue;
                }
                let (rs, rd) = (self.rack_of(src), self.rack_of(dst));
                if rs != rd {
                    g.set_transit(src, dst, &[ups[rs], downs[rd]]);
                }
            }
        }
        g
    }

    /// One-line human description, e.g. `2 racks x 8 @ 4:1 oversub`.
    pub fn describe(&self) -> String {
        format!(
            "{} racks x {} @ {}:1 oversub",
            self.racks, self.rack_size, self.oversub
        )
    }
}

/// Where workers and parameter-server shards sit relative to the racks.
///
/// Every machine always hosts a worker and a colocated PS shard process
/// (the paper's setup); placement decides which shard *keys* land where.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Shards spread across all machines — the flat default; key `k`'s
    /// home server is wherever the MXNet-KVStore heuristic put it.
    #[default]
    Spread,
    /// All shards packed into rack 0's machines (a dedicated PS rack):
    /// every remote worker's push and pull crosses the core.
    Packed,
    /// Shards spread as in [`Placement::Spread`], plus PHub-style
    /// rack-local aggregation: cross-rack gradient pushes are first
    /// combined at a per-rack aggregator machine and forwarded as one
    /// message per rack, cutting core push traffic by the rack size.
    RackLocal,
}

impl Placement {
    /// Parses a CLI name: `spread`, `packed`, or `rack-local`.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names on unknown input.
    pub fn parse(name: &str) -> Result<Placement, String> {
        match name {
            "spread" => Ok(Placement::Spread),
            "packed" => Ok(Placement::Packed),
            "rack-local" => Ok(Placement::RackLocal),
            other => Err(format!(
                "unknown placement '{other}' (expected spread, packed, or rack-local)"
            )),
        }
    }

    /// The CLI name of this policy.
    pub fn name(self) -> &'static str {
        match self {
            Placement::Spread => "spread",
            Placement::Packed => "packed",
            Placement::RackLocal => "rack-local",
        }
    }

    /// Maps a flat-plan home server to this policy's home server for a
    /// `topo`-shaped cluster: identity for spread/rack-local, modulo into
    /// rack 0 for packed.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range for the topology.
    pub fn place_server(self, server: usize, topo: &Topology) -> usize {
        assert!(server < topo.machines(), "unknown server {server}");
        match self {
            Placement::Spread | Placement::RackLocal => server,
            Placement::Packed => server % topo.rack_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_numbering_is_rack_major() {
        let t = Topology::new(3, 4, 2.0);
        assert_eq!(t.machines(), 12);
        assert_eq!(t.rack_of(0), 0);
        assert_eq!(t.rack_of(3), 0);
        assert_eq!(t.rack_of(4), 1);
        assert_eq!(t.rack_of(11), 2);
        assert_eq!(t.rack_members(1), 4..8);
        assert_eq!(t.aggregator_of(2), 8);
    }

    #[test]
    fn single_rack_compiles_to_endpoint_only_graph() {
        let t = Topology::new(1, 4, 1.0);
        assert!(t.is_single_rack());
        let g = t.compile(Bandwidth::from_gbps(10.0));
        assert_eq!(g.num_links(), 8, "4 tx + 4 rx ports, no transit links");
        for src in 0..4 {
            for dst in 0..4 {
                if src != dst {
                    assert_eq!(g.path(src, dst).len(), 2);
                }
            }
        }
    }

    #[test]
    fn cross_rack_paths_take_up_and_down_links() {
        let t = Topology::new(2, 2, 4.0);
        let g = t.compile(Bandwidth::from_gbps(8.0));
        let nic = Bandwidth::from_gbps(8.0).bytes_per_sec();
        // Intra-rack: 2 hops. Cross-rack: 4 hops through up/down.
        assert_eq!(g.path(0, 1).len(), 2);
        let p = g.path(0, 3);
        assert_eq!(p.len(), 4);
        assert_eq!(g.link_name(p[1]), "rack0.up");
        assert_eq!(g.link_name(p[2]), "rack1.down");
        // Uplink = 2 NICs / 4 = half a NIC.
        assert!((g.link_cap(p[1]) - nic / 2.0).abs() < 1e-6);
        // Reverse direction uses the other rack's uplink.
        let q = g.path(3, 0);
        assert_eq!(g.link_name(q[1]), "rack1.up");
        assert_eq!(g.link_name(q[2]), "rack0.down");
    }

    #[test]
    fn heterogeneous_nics_change_ports_and_core() {
        let fast = Bandwidth::from_gbps(25.0);
        let slow = Bandwidth::from_gbps(10.0);
        let t = Topology::new(2, 2, 1.0).with_nic(0, fast);
        let g = t.compile(slow);
        assert!((g.link_cap(g.tx_link(0)) - fast.bytes_per_sec()).abs() < 1e-6);
        assert!((g.link_cap(g.rx_link(1)) - slow.bytes_per_sec()).abs() < 1e-6);
        // Rack 0's core links carry (25 + 10) Gbps worth at oversub 1.
        let up = g.path(0, 2)[1];
        assert!((g.link_cap(up) - (fast.bytes_per_sec() + slow.bytes_per_sec())).abs() < 1e-6);
    }

    #[test]
    fn spec_parsing_round_trips_and_rejects_garbage() {
        let t = Topology::parse_spec("size=8, racks=3").unwrap();
        assert_eq!((t.racks(), t.rack_size(), t.oversub()), (3, 8, 1.0));
        assert!(Topology::parse_spec("racks=2").is_err());
        assert!(Topology::parse_spec("racks=2,size=4,oversub=0.5").is_err());
        assert!(Topology::parse_spec("racks=2,size=4,bogus=1").is_err());
        assert!(Topology::parse_spec("racks=two,size=4").is_err());
    }

    #[test]
    fn placement_parsing_and_packing() {
        assert_eq!(Placement::parse("packed").unwrap(), Placement::Packed);
        assert_eq!(Placement::parse("rack-local").unwrap().name(), "rack-local");
        assert!(Placement::parse("corner").is_err());
        let t = Topology::new(3, 4, 2.0);
        // Packed folds every server into rack 0 (machines 0..4).
        for s in 0..12 {
            let p = Placement::Packed.place_server(s, &t);
            assert!(p < 4, "server {s} packed to {p}");
            assert_eq!(Placement::Spread.place_server(s, &t), s);
            assert_eq!(Placement::RackLocal.place_server(s, &t), s);
        }
    }

    #[test]
    #[should_panic(expected = "must be finite and >= 1")]
    fn undersubscription_rejected() {
        Topology::new(2, 2, 0.5);
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Compiled graphs are structurally sound for any shape: path
        /// endpoints are the right ports, transit hops are shared within
        /// a rack pair, and core capacity follows the oversub rule.
        #[test]
        fn compiled_graph_is_consistent(
            racks in 1usize..5,
            size in 1usize..5,
            oversub in 1.0f64..16.0,
            gbps in 1.0f64..100.0,
        ) {
            let t = Topology::new(racks, size, oversub);
            let nic = Bandwidth::from_gbps(gbps);
            let g = t.compile(nic);
            let expect_links = 2 * t.machines() + if racks > 1 { 2 * racks } else { 0 };
            prop_assert_eq!(g.num_links(), expect_links);
            for src in 0..t.machines() {
                for dst in 0..t.machines() {
                    if src == dst { continue; }
                    let p = g.path(src, dst);
                    prop_assert_eq!(p[0], g.tx_link(src));
                    prop_assert_eq!(*p.last().unwrap(), g.rx_link(dst));
                    if t.rack_of(src) == t.rack_of(dst) {
                        prop_assert_eq!(p.len(), 2);
                    } else {
                        prop_assert_eq!(p.len(), 4);
                        let core = size as f64 * nic.bytes_per_sec() / oversub;
                        prop_assert!((g.link_cap(p[1]) - core).abs() < core * 1e-12);
                        prop_assert!((g.link_cap(p[2]) - core).abs() < core * 1e-12);
                    }
                }
            }
        }
    }
}
