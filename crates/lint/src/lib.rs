//! # p3-lint — workspace determinism lint
//!
//! The simulator's contract is bit-identical results for a given seed, on
//! every platform, on every run. The classic ways Rust code silently
//! breaks that contract are all *legal* code, so the compiler won't help:
//!
//! * `std::collections::HashMap`/`HashSet` — `RandomState` seeds the hash
//!   per process, so iteration order differs between runs. Any result or
//!   trace derived from iterating one is nondeterministic. Use `BTreeMap`/
//!   `BTreeSet`, or justify with `// p3-lint: allow(unordered): why`.
//! * `Instant::now` / `SystemTime` — wall clocks leak host timing into
//!   simulated results. The DES clock is the only time source.
//! * `thread_rng` / `rand::random` — ambient OS-seeded randomness; all
//!   randomness must come from the run's seeded generators.
//! * float accumulation over unordered iterators — `.values()` into
//!   `.sum()`/`.fold()` makes the rounding order (hence the result) depend
//!   on iteration order.
//!
//! The lint is a token scanner, not a type checker: comments, strings and
//! `#[cfg(test)]` items are stripped before matching, so tests may use
//! whatever they like. A hazard the scanner cannot see (e.g. a re-exported
//! alias) is out of scope — the run-twice determinism tests are the
//! backstop.
//!
//! It also enforces a per-crate **unwrap budget**: the number of
//! `.unwrap()`/`.expect(` calls in non-test code may not exceed the count
//! recorded in `p3-lint.toml`, and the recorded count is only ever lowered.
//! New code must propagate errors instead of panicking.
//!
//! A crate whose purpose is to violate one rule can exempt exactly that
//! rule via the `[crate-allow]` section of `p3-lint.toml` ([`CrateAllow`]):
//! `p3-prof` is the profiling crate, so `Instant::now` is legal there and
//! nowhere else in the simulation.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Crates the determinism rules apply to: everything that can influence a
/// simulated result. The CLI, offline tooling and vendored dependencies
/// are exempt (they run outside the simulation). A crate may carve out a
/// *specific* rule via the `[crate-allow]` section of `p3-lint.toml`
/// (see [`CrateAllow`]) — e.g. `p3-prof` measures wall time by design, so
/// it allows `wall-clock` while every other rule still applies to it.
pub const SIM_CRATES: [&str; 13] = [
    "des",
    "core",
    "net",
    "cluster",
    "trace",
    "topo",
    "pserver",
    "allreduce",
    "models",
    "compress",
    "audit",
    "prof",
    "tune",
];

/// Crates whose unwrap budget is ratcheted (the sim crates plus the CLI,
/// whose panics are user-facing crashes).
pub const BUDGET_CRATES: [&str; 14] = [
    "des",
    "core",
    "net",
    "cluster",
    "trace",
    "topo",
    "pserver",
    "allreduce",
    "models",
    "compress",
    "audit",
    "prof",
    "tune",
    "cli",
];

/// One banned-pattern rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// Rule name, as used in `allow(...)` markers.
    pub name: &'static str,
    /// Identifier-delimited patterns that trigger the rule.
    pub patterns: &'static [&'static str],
    /// Short justification shown with each finding.
    pub why: &'static str,
}

/// The banned-pattern catalog.
pub const RULES: [Rule; 3] = [
    Rule {
        name: "unordered",
        patterns: &["HashMap", "HashSet"],
        why: "iteration order is seeded per process; use BTreeMap/BTreeSet",
    },
    Rule {
        name: "wall-clock",
        patterns: &["Instant::now", "SystemTime"],
        why: "host time leaks into simulated results; use the DES clock",
    },
    Rule {
        name: "ambient-rng",
        patterns: &["thread_rng", "rand::random"],
        why: "OS-seeded randomness; use the run's seeded generators",
    },
];

/// Rule name for the float-accumulation heuristic (it needs statement
/// context, so it is not a plain pattern rule).
pub const FLOAT_ACCUM_RULE: &str = "float-accum-unordered";

/// Rule name for the file-length limit (file-scoped, so it is not a plain
/// pattern rule: one `p3-lint: allow(file-length): reason` marker anywhere
/// in the file silences it).
pub const FILE_LENGTH_RULE: &str = "file-length";

/// Maximum physical lines (code, comments and tests alike) per source
/// file before [`FILE_LENGTH_RULE`] fires. Files past this size are where
/// god-loops grow; split the module instead (the engine decomposition in
/// `crates/cluster/src/engine/` is the pattern).
pub const MAX_FILE_LINES: usize = 800;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule that fired (or `unwrap-budget` / `allow-marker`).
    pub rule: String,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Source text with comments, strings and test items blanked out
/// (structure and line numbers preserved), plus the allow markers found in
/// the comments.
#[derive(Debug)]
pub struct Stripped {
    /// The blanked source.
    pub code: String,
    /// line (1-based) → allowed rule name, from `p3-lint: allow(rule): reason`.
    pub allows: BTreeMap<usize, String>,
    /// Markers missing the required justification text.
    pub bad_markers: Vec<usize>,
}

/// Strips comments, string/char literals and `#[cfg(test)]`/`#[test]`
/// items from Rust source, preserving line structure so findings carry
/// real line numbers. Allow markers are collected from comments before
/// they are blanked.
pub fn strip(source: &str) -> Stripped {
    let mut allows = BTreeMap::new();
    let mut bad_markers = Vec::new();
    for (i, line) in source.lines().enumerate() {
        if let Some(pos) = line.find("p3-lint:") {
            let marker = &line[pos + "p3-lint:".len()..];
            let marker = marker.trim();
            if let Some(rest) = marker.strip_prefix("allow(") {
                if let Some(close) = rest.find(')') {
                    let rule = rest[..close].trim().to_string();
                    let reason = rest[close + 1..].trim_start_matches(':').trim();
                    if reason.is_empty() {
                        bad_markers.push(i + 1);
                    } else {
                        allows.insert(i + 1, rule);
                    }
                } else {
                    bad_markers.push(i + 1);
                }
            } else {
                bad_markers.push(i + 1);
            }
        }
    }

    let b = source.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1;
                out.extend_from_slice(b"  ");
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'"' => {
                out.push(b' ');
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if b[i] == b'"' {
                        out.push(b' ');
                        i += 1;
                        break;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'r' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                // Raw string: r"..." or r#"..."# with any number of #s.
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    out.extend(std::iter::repeat_n(b' ', j - i + 1));
                    i = j + 1;
                    'raw: while i < b.len() {
                        if b[i] == b'"' {
                            let mut k = i + 1;
                            let mut h = 0;
                            while k < b.len() && b[k] == b'#' && h < hashes {
                                h += 1;
                                k += 1;
                            }
                            if h == hashes {
                                out.extend(std::iter::repeat_n(b' ', k - i));
                                i = k;
                                break 'raw;
                            }
                        }
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                } else {
                    out.push(b'r');
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal or lifetime. 'x' / '\n' are literals; 'a
                // followed by an identifier continuation is a lifetime.
                if i + 2 < b.len() && b[i + 1] == b'\\' {
                    out.extend_from_slice(b"   ");
                    i += 3;
                    while i < b.len() && b[i] != b'\'' {
                        out.push(b' ');
                        i += 1;
                    }
                    if i < b.len() {
                        out.push(b' ');
                        i += 1;
                    }
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    out.extend_from_slice(b"   ");
                    i += 3;
                } else {
                    out.push(b'\'');
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    let mut code = String::from_utf8(out).unwrap_or_default();
    blank_test_items(&mut code);
    Stripped {
        code,
        allows,
        bad_markers,
    }
}

/// Blanks every item annotated `#[cfg(test)]` or `#[test]` (attribute
/// through the end of its balanced-brace body), in place.
fn blank_test_items(code: &mut String) {
    let mut spans: Vec<(usize, usize)> = Vec::new();
    for (pos, _) in code.match_indices("#[cfg(test)]") {
        spans.push(item_span(code, pos));
    }
    for (pos, _) in code.match_indices("#[test]") {
        spans.push(item_span(code, pos));
    }
    let mut bytes: Vec<u8> = code.bytes().collect();
    for (a, z) in spans {
        for c in bytes[a..z].iter_mut() {
            if *c != b'\n' {
                *c = b' ';
            }
        }
    }
    *code = String::from_utf8(bytes).unwrap_or_default();
}

/// Extent of the item starting at an attribute: from the attribute to the
/// closing brace of the first balanced `{}` block after it (or the next
/// `;` for brace-less items).
fn item_span(code: &str, start: usize) -> (usize, usize) {
    let b = code.as_bytes();
    let mut i = start;
    let mut depth = 0usize;
    let mut seen_brace = false;
    while i < b.len() {
        match b[i] {
            b'{' => {
                depth += 1;
                seen_brace = true;
            }
            b'}' => {
                depth = depth.saturating_sub(1);
                if seen_brace && depth == 0 {
                    return (start, i + 1);
                }
            }
            b';' if !seen_brace => return (start, i + 1),
            _ => {}
        }
        i += 1;
    }
    (start, b.len())
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// True if `pat` occurs at `pos` in `code` delimited by non-identifier
/// characters (so `HashMap` does not match `MyHashMapLike`).
fn delimited(code: &str, pos: usize, pat: &str) -> bool {
    let b = code.as_bytes();
    let before_ok = pos == 0 || !is_ident(b[pos - 1]);
    let end = pos + pat.len();
    let after_ok = end >= b.len() || !is_ident(b[end]);
    before_ok && after_ok
}

fn line_of(code: &str, pos: usize) -> usize {
    code[..pos].bytes().filter(|&c| c == b'\n').count() + 1
}

fn allowed(stripped: &Stripped, line: usize, rule: &str) -> bool {
    // A marker covers its own line and the following line.
    [line, line.saturating_sub(1)]
        .iter()
        .any(|l| stripped.allows.get(l).is_some_and(|r| r == rule))
}

/// Lints one file's source text. `path` is used only for reporting.
pub fn lint_source(path: &Path, source: &str) -> Vec<Finding> {
    let stripped = strip(source);
    let mut findings = Vec::new();
    for &line in &stripped.bad_markers {
        findings.push(Finding {
            file: path.to_path_buf(),
            line,
            rule: "allow-marker".into(),
            message: "malformed p3-lint marker: use `p3-lint: allow(rule): reason` \
                      with a non-empty reason"
                .into(),
        });
    }
    for rule in RULES {
        for pat in rule.patterns {
            for (pos, _) in stripped.code.match_indices(pat) {
                if !delimited(&stripped.code, pos, pat) {
                    continue;
                }
                let line = line_of(&stripped.code, pos);
                if allowed(&stripped, line, rule.name) {
                    continue;
                }
                findings.push(Finding {
                    file: path.to_path_buf(),
                    line,
                    rule: rule.name.into(),
                    message: format!("`{pat}`: {}", rule.why),
                });
            }
        }
    }
    findings.extend(float_accum_findings(path, &stripped));
    if let Some(f) = file_length_finding(path, source, &stripped) {
        findings.push(f);
    }
    findings.sort_by_key(|f| f.line);
    findings
}

/// Flags files longer than [`MAX_FILE_LINES`] physical lines. The finding
/// anchors at the first line past the limit; an
/// `allow(file-length)` marker anywhere in the file silences it.
fn file_length_finding(path: &Path, source: &str, stripped: &Stripped) -> Option<Finding> {
    let lines = source.lines().count();
    if lines <= MAX_FILE_LINES {
        return None;
    }
    if stripped.allows.values().any(|r| r == FILE_LENGTH_RULE) {
        return None;
    }
    Some(Finding {
        file: path.to_path_buf(),
        line: MAX_FILE_LINES + 1,
        rule: FILE_LENGTH_RULE.into(),
        message: format!(
            "{lines} lines exceed the {MAX_FILE_LINES}-line limit: split the module \
             (crates/cluster/src/engine/ is the pattern) or justify with \
             `p3-lint: allow(file-length): reason`"
        ),
    })
}

/// Heuristic for order-dependent float accumulation: a single statement
/// that iterates `.values()` and reduces with `.sum(` or `.fold(`. With
/// unordered maps already banned this mostly guards allow-listed ones.
fn float_accum_findings(path: &Path, stripped: &Stripped) -> Vec<Finding> {
    let mut findings = Vec::new();
    for stmt in stripped.code.split(';') {
        if !stmt.contains(".values()") {
            continue;
        }
        if !(stmt.contains(".sum(") || stmt.contains(".fold(")) {
            continue;
        }
        let offset = stmt.as_ptr() as usize - stripped.code.as_ptr() as usize;
        let pos = offset + stmt.find(".values()").unwrap_or(0);
        let line = line_of(&stripped.code, pos);
        if allowed(stripped, line, FLOAT_ACCUM_RULE) {
            continue;
        }
        findings.push(Finding {
            file: path.to_path_buf(),
            line,
            rule: FLOAT_ACCUM_RULE.into(),
            message: "float reduction over `.values()`: rounding order depends on \
                      iteration order"
                .into(),
        });
    }
    findings
}

/// Counts `.unwrap()` / `.expect(` calls in non-test code.
pub fn count_unwraps(source: &str) -> usize {
    let stripped = strip(source);
    stripped.code.matches(".unwrap()").count() + stripped.code.matches(".expect(").count()
}

/// The unwrap budget: crate name (short, without the `p3-` prefix) →
/// maximum allowed non-test `.unwrap()`/`.expect(` count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Budget(pub BTreeMap<String, usize>);

impl Budget {
    /// Parses `p3-lint.toml`: a `[unwrap-budget]` section of `name = N`
    /// lines (comments and blank lines ignored).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn parse(text: &str) -> Result<Budget, String> {
        let mut map = BTreeMap::new();
        let mut in_section = false;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                in_section = line == "[unwrap-budget]";
                continue;
            }
            if !in_section {
                continue;
            }
            let Some((name, value)) = line.split_once('=') else {
                return Err(format!("p3-lint.toml:{}: expected `name = N`", i + 1));
            };
            let n: usize = value.trim().parse().map_err(|_| {
                format!("p3-lint.toml:{}: `{}` is not a count", i + 1, value.trim())
            })?;
            map.insert(name.trim().to_string(), n);
        }
        Ok(Budget(map))
    }
}

/// Crate-scoped rule exemptions: crate name (short, without the `p3-`
/// prefix) → rule names that do not apply to that crate.
///
/// This is the *blanket* escape hatch, distinct from the per-line
/// `allow(rule)` marker: a crate whose very purpose violates one rule
/// (e.g. `p3-prof` exists to read the wall clock) declares that rule here
/// once, and every other rule still applies to it line by line. Entries
/// live in the `[crate-allow]` section of `p3-lint.toml` so exemptions
/// are reviewed in one place rather than scattered through sources.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrateAllow(pub BTreeMap<String, Vec<String>>);

impl CrateAllow {
    /// Parses the `[crate-allow]` section of `p3-lint.toml`: lines of
    /// `name = ["rule", ...]` (comments and blank lines ignored; a
    /// missing section means no exemptions).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn parse(text: &str) -> Result<CrateAllow, String> {
        let mut map = BTreeMap::new();
        let mut in_section = false;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                in_section = line == "[crate-allow]";
                continue;
            }
            if !in_section {
                continue;
            }
            let Some((name, value)) = line.split_once('=') else {
                return Err(format!(
                    "p3-lint.toml:{}: expected `name = [\"rule\", ...]`",
                    i + 1
                ));
            };
            let value = value.trim();
            let Some(list) = value.strip_prefix('[').and_then(|v| v.strip_suffix(']')) else {
                return Err(format!(
                    "p3-lint.toml:{}: `{value}` is not a [\"rule\", ...] list",
                    i + 1
                ));
            };
            let mut rules = Vec::new();
            for item in list.split(',') {
                let item = item.trim();
                if item.is_empty() {
                    continue;
                }
                let Some(rule) = item.strip_prefix('"').and_then(|r| r.strip_suffix('"')) else {
                    return Err(format!(
                        "p3-lint.toml:{}: `{item}` is not a quoted rule name",
                        i + 1
                    ));
                };
                rules.push(rule.to_string());
            }
            map.insert(name.trim().to_string(), rules);
        }
        Ok(CrateAllow(map))
    }

    /// True when `rule` is exempted for `krate`.
    pub fn allows(&self, krate: &str, rule: &str) -> bool {
        self.0
            .get(krate)
            .is_some_and(|rules| rules.iter().any(|r| r == rule))
    }
}

/// Lints one file's source text as part of crate `krate`: same as
/// [`lint_source`], minus the findings whose rule the crate exempts via
/// `[crate-allow]`.
pub fn lint_source_for_crate(
    krate: &str,
    path: &Path,
    source: &str,
    allow: &CrateAllow,
) -> Vec<Finding> {
    lint_source(path, source)
        .into_iter()
        .filter(|f| !allow.allows(krate, &f.rule))
        .collect()
}

/// Result of linting a whole workspace.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// Pattern findings across all checked files.
    pub findings: Vec<Finding>,
    /// crate → (counted, budget) where counted exceeds budget.
    pub over_budget: Vec<(String, usize, usize)>,
    /// crate → (counted, budget) where the budget can be ratcheted down.
    pub slack: Vec<(String, usize, usize)>,
    /// Files checked.
    pub files: usize,
}

impl WorkspaceReport {
    /// True when nothing blocks: no findings and no crate over budget.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.over_budget.is_empty()
    }
}

impl fmt::Display for WorkspaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        for (name, counted, budget) in &self.over_budget {
            writeln!(
                f,
                "crate {name}: {counted} unwrap/expect calls exceed the budget of {budget} \
                 (p3-lint.toml ratchets down only — propagate errors instead)"
            )?;
        }
        for (name, counted, budget) in &self.slack {
            writeln!(
                f,
                "note: crate {name} uses {counted} of {budget} budgeted unwraps — \
                 lower it in p3-lint.toml"
            )?;
        }
        if self.is_clean() {
            writeln!(f, "p3-lint: clean — {} files checked", self.files)?;
        } else {
            writeln!(
                f,
                "p3-lint: FAILED — {} finding(s), {} crate(s) over budget",
                self.findings.len(),
                self.over_budget.len()
            )?;
        }
        Ok(())
    }
}

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            rust_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Lints the workspace rooted at `root` (the directory holding
/// `Cargo.toml` and `crates/`): pattern rules over [`SIM_CRATES`], unwrap
/// budgets over [`BUDGET_CRATES`] against `<root>/p3-lint.toml`.
///
/// # Errors
///
/// Returns a message when the budget file is missing or malformed, or a
/// budgeted crate directory cannot be read.
pub fn lint_workspace(root: &Path) -> Result<WorkspaceReport, String> {
    let budget_path = root.join("p3-lint.toml");
    let budget_text = std::fs::read_to_string(&budget_path)
        .map_err(|e| format!("{}: {e}", budget_path.display()))?;
    let budget = Budget::parse(&budget_text)?;
    let crate_allow = CrateAllow::parse(&budget_text)?;

    let mut report = WorkspaceReport::default();
    for name in SIM_CRATES {
        let src = root.join("crates").join(name).join("src");
        let mut files = Vec::new();
        rust_files(&src, &mut files);
        if files.is_empty() {
            return Err(format!("no Rust sources under {}", src.display()));
        }
        for f in files {
            let source =
                std::fs::read_to_string(&f).map_err(|e| format!("{}: {e}", f.display()))?;
            let rel = f.strip_prefix(root).unwrap_or(&f).to_path_buf();
            report
                .findings
                .extend(lint_source_for_crate(name, &rel, &source, &crate_allow));
            report.files += 1;
        }
    }
    for name in BUDGET_CRATES {
        let src = root.join("crates").join(name).join("src");
        let mut files = Vec::new();
        rust_files(&src, &mut files);
        let mut counted = 0;
        for f in &files {
            let source = std::fs::read_to_string(f).map_err(|e| format!("{}: {e}", f.display()))?;
            counted += count_unwraps(&source);
        }
        match budget.0.get(name) {
            None => {
                return Err(format!(
                    "p3-lint.toml has no unwrap budget for crate `{name}` — add `{name} = \
                     {counted}`"
                ))
            }
            Some(&b) if counted > b => report.over_budget.push((name.into(), counted, b)),
            Some(&b) if counted < b => report.slack.push((name.into(), counted, b)),
            Some(_) => {}
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(src: &str) -> Vec<Finding> {
        lint_source(Path::new("test.rs"), src)
    }

    #[test]
    fn flags_hashmap_outside_tests() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
        let f = lint_str(src);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "unordered"));
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn ignores_tests_comments_and_strings() {
        let src = r##"
// HashMap in a comment
fn f() { let s = "HashMap"; let _ = s; }
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() { let _ = HashMap::<u32, u32>::new(); }
}
"##;
        assert!(lint_str(src).is_empty(), "{:?}", lint_str(src));
    }

    #[test]
    fn allow_marker_needs_reason() {
        let with_reason = "// p3-lint: allow(unordered): key order never observed\nuse std::collections::HashMap;\n";
        assert!(lint_str(with_reason).is_empty());
        let no_reason = "// p3-lint: allow(unordered)\nuse std::collections::HashMap;\n";
        let f = lint_str(no_reason);
        assert!(f.iter().any(|x| x.rule == "allow-marker"), "{f:?}");
        assert!(f.iter().any(|x| x.rule == "unordered"), "{f:?}");
    }

    #[test]
    fn flags_wall_clock_and_rng() {
        let f = lint_str("fn f() { let t = Instant::now(); }\n");
        assert!(f.iter().any(|x| x.rule == "wall-clock"), "{f:?}");
        let f = lint_str("fn f() { let r = thread_rng(); }\n");
        assert!(f.iter().any(|x| x.rule == "ambient-rng"), "{f:?}");
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(lint_str("struct MyHashMapLike;\n").is_empty());
        assert!(lint_str("fn spawn_thread_rngs() {}\n").is_empty());
    }

    #[test]
    fn flags_overlong_files() {
        let long = "fn a() {}\n".repeat(MAX_FILE_LINES + 1);
        let f = lint_str(&long);
        assert!(f.iter().any(|x| x.rule == FILE_LENGTH_RULE), "{f:?}");
        assert_eq!(f[0].line, MAX_FILE_LINES + 1);
        let at_limit = "fn a() {}\n".repeat(MAX_FILE_LINES);
        assert!(lint_str(&at_limit).is_empty());
        let allowed = format!("// p3-lint: allow(file-length): split tracked elsewhere\n{long}");
        assert!(lint_str(&allowed).is_empty());
    }

    #[test]
    fn flags_float_accum_over_values() {
        let src = "fn f(m: &BTreeMap<u32, f64>) -> f64 { m.values().sum() }\n";
        let f = lint_str(src);
        assert!(f.iter().any(|x| x.rule == FLOAT_ACCUM_RULE), "{f:?}");
        let allowed = "// p3-lint: allow(float-accum-unordered): BTreeMap order is fixed\nfn f(m: &BTreeMap<u32, f64>) -> f64 { m.values().sum() }\n";
        assert!(lint_str(allowed).is_empty());
    }

    #[test]
    fn counts_unwraps_outside_tests_only() {
        let src = r#"
fn f(x: Option<u32>) -> u32 { x.unwrap() + x.expect("set") }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); }
}
"#;
        assert_eq!(count_unwraps(src), 2);
    }

    #[test]
    fn budget_parses() {
        let b = Budget::parse("# ratchet\n[unwrap-budget]\ncluster = 3 # why\ncli = 10\n").unwrap();
        assert_eq!(b.0.get("cluster"), Some(&3));
        assert_eq!(b.0.get("cli"), Some(&10));
        assert!(Budget::parse("[unwrap-budget]\ncluster three\n").is_err());
    }

    #[test]
    fn crate_allow_parses_lists() {
        let text = "[unwrap-budget]\nprof = 0\n[crate-allow]\nprof = [\"wall-clock\"] # why\n";
        let a = CrateAllow::parse(text).unwrap();
        assert!(a.allows("prof", "wall-clock"));
        assert!(!a.allows("prof", "unordered"));
        assert!(!a.allows("cluster", "wall-clock"));
        assert!(CrateAllow::parse("[crate-allow]\nprof = wall-clock\n").is_err());
        assert!(CrateAllow::parse("[crate-allow]\nprof = [wall-clock]\n").is_err());
        // A file with no section at all means no exemptions.
        assert_eq!(
            CrateAllow::parse("[unwrap-budget]\ncli = 0\n").unwrap(),
            CrateAllow::default()
        );
    }

    #[test]
    fn crate_allow_filters_only_the_listed_rule() {
        let allow = CrateAllow::parse("[crate-allow]\nprof = [\"wall-clock\"]\n").unwrap();
        let src = "fn f() { let t = Instant::now(); let m = HashMap::<u32, u32>::new(); }\n";
        let prof = lint_source_for_crate("prof", Path::new("t.rs"), src, &allow);
        assert!(prof.iter().all(|f| f.rule != "wall-clock"), "{prof:?}");
        assert!(prof.iter().any(|f| f.rule == "unordered"), "{prof:?}");
        let cluster = lint_source_for_crate("cluster", Path::new("t.rs"), src, &allow);
        assert!(
            cluster.iter().any(|f| f.rule == "wall-clock"),
            "{cluster:?}"
        );
    }

    #[test]
    fn raw_strings_and_chars_are_stripped() {
        let src = "fn f() { let s = r#\"HashMap\"#; let c = 'H'; let _ = (s, c); }\n";
        assert!(lint_str(src).is_empty(), "{:?}", lint_str(src));
    }
}
