//! # p3-lint — workspace determinism lint
//!
//! The simulator's contract is bit-identical results for a given seed, on
//! every platform, on every run. The classic ways Rust code silently
//! breaks that contract are all *legal* code, so the compiler won't help:
//!
//! * `std::collections::HashMap`/`HashSet` — `RandomState` seeds the hash
//!   per process, so iteration order differs between runs. Any result or
//!   trace derived from iterating one is nondeterministic. Use `BTreeMap`/
//!   `BTreeSet`, or justify with `// p3-lint: allow(unordered): why`.
//! * `Instant::now` / `SystemTime` — wall clocks leak host timing into
//!   simulated results. The DES clock is the only time source.
//! * `thread_rng` / `rand::random` — ambient OS-seeded randomness; all
//!   randomness must come from the run's seeded generators.
//! * `env::var` — ambient process state; configuration enters through
//!   explicit, recorded inputs, never the environment.
//! * float accumulation over unordered iterators — `.values()` into
//!   `.sum()`/`.fold()` makes the rounding order (hence the result) depend
//!   on iteration order.
//!
//! The lint runs as **multiple passes over one shared stripped view** of
//! each source file ([`lexer`]):
//!
//! 1. **Token rules** — the banned-pattern catalog above, matched
//!    identifier-delimited in non-test code ([`lint_source`]).
//! 2. **Determinism taint** ([`taint`]) — an item/call-graph extractor
//!    ([`callgraph`]) resolves `use` aliases, `pub use` re-exports and
//!    cross-crate calls; impurity seeded at banned APIs propagates to
//!    every transitive caller and is reported where a clean sim-crate
//!    function first reaches a chain the token rules cannot see (a
//!    helper in an exempt crate, a re-exported alias). Reviewed-safe
//!    functions are named in `[taint-sanitizer]` with a mandatory reason.
//! 3. **Panic paths** ([`panics`]) — per-crate ratchets over
//!    `panic!`-family macros (`[panic-budget]`) and, for hot-path crates,
//!    slice indexing (`[index-budget]`), extending the existing
//!    `.unwrap()`/`.expect(` budget (`[unwrap-budget]`).
//! 4. **Schema drift** ([`schema`]) — the versioned wire formats (the
//!    profile/bench/tune JSON reports, the trace export, the snapshot
//!    codec) are cross-checked against their parsers: every member a
//!    writer emits must have a reader, version constants must be
//!    validated, every encoder must have its decoder.
//! 5. **Invariant coverage** ([`coverage`]) — every checker in the
//!    p3-audit catalog must be exercised by at least one test or fixture.
//!
//! Findings are compared against the ratcheted `[findings-baseline]`
//! section of `p3-lint.toml`: a per-rule count may only go down, so new
//! debt fails CI while known debt is paid off incrementally. `p3 lint
//! --json` emits the whole report as deterministic JSON ([`report`]) that
//! CI byte-compares across two runs.
//!
//! A crate whose purpose is to violate one rule can exempt exactly that
//! rule via the `[crate-allow]` section of `p3-lint.toml` ([`CrateAllow`]):
//! `p3-prof` is the profiling crate, so `Instant::now` is legal there and
//! nowhere else in the simulation — but taint still tracks what flows
//! *out* of it.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod callgraph;
pub mod coverage;
pub mod lexer;
pub mod panics;
pub mod report;
pub mod schema;
pub mod taint;

pub use lexer::{strip, Stripped};

use lexer::{delimited, line_of};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Crates the determinism rules apply to: everything that can influence a
/// simulated result. The CLI, offline tooling and vendored dependencies
/// are exempt (they run outside the simulation). A crate may carve out a
/// *specific* rule via the `[crate-allow]` section of `p3-lint.toml`
/// (see [`CrateAllow`]) — e.g. `p3-prof` measures wall time by design, so
/// it allows `wall-clock` while every other rule still applies to it.
pub const SIM_CRATES: [&str; 13] = [
    "des",
    "core",
    "net",
    "cluster",
    "trace",
    "topo",
    "pserver",
    "allreduce",
    "models",
    "compress",
    "audit",
    "prof",
    "tune",
];

/// Crates whose unwrap and panic budgets are ratcheted (the sim crates
/// plus the CLI, whose panics are user-facing crashes).
pub const BUDGET_CRATES: [&str; 14] = [
    "des",
    "core",
    "net",
    "cluster",
    "trace",
    "topo",
    "pserver",
    "allreduce",
    "models",
    "compress",
    "audit",
    "prof",
    "tune",
    "cli",
];

/// One banned-pattern rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// Rule name, as used in `allow(...)` markers.
    pub name: &'static str,
    /// Identifier-delimited patterns that trigger the rule.
    pub patterns: &'static [&'static str],
    /// Short justification shown with each finding.
    pub why: &'static str,
}

/// The banned-pattern catalog.
pub const RULES: [Rule; 4] = [
    Rule {
        name: "unordered",
        patterns: &["HashMap", "HashSet"],
        why: "iteration order is seeded per process; use BTreeMap/BTreeSet",
    },
    Rule {
        name: "wall-clock",
        patterns: &["Instant::now", "SystemTime"],
        why: "host time leaks into simulated results; use the DES clock",
    },
    Rule {
        name: "ambient-rng",
        patterns: &["thread_rng", "rand::random"],
        why: "OS-seeded randomness; use the run's seeded generators",
    },
    Rule {
        name: "ambient-env",
        patterns: &["env::var", "env::vars", "env::var_os"],
        why: "process environment leaks host state into simulated results; \
              take configuration as explicit recorded inputs",
    },
];

/// Rule name for the float-accumulation heuristic (it needs statement
/// context, so it is not a plain pattern rule).
pub const FLOAT_ACCUM_RULE: &str = "float-accum-unordered";

/// Rule name for the file-length limit (file-scoped, so it is not a plain
/// pattern rule: one `p3-lint: allow(file-length): reason` marker anywhere
/// in the file silences it).
pub const FILE_LENGTH_RULE: &str = "file-length";

/// Maximum physical lines (code, comments and tests alike) per source
/// file before [`FILE_LENGTH_RULE`] fires. Files past this size are where
/// god-loops grow; split the module instead (the engine decomposition in
/// `crates/cluster/src/engine/` is the pattern).
pub const MAX_FILE_LINES: usize = 800;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule that fired (or `unwrap-budget` / `allow-marker`).
    pub rule: String,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Lints one file's source text. `path` is used only for reporting.
pub fn lint_source(path: &Path, source: &str) -> Vec<Finding> {
    lint_stripped(path, source, &strip(source))
}

/// Like [`lint_source`], but over an already-stripped view (the workspace
/// walk strips each file once and shares the view across passes).
pub fn lint_stripped(path: &Path, source: &str, stripped: &Stripped) -> Vec<Finding> {
    let mut findings = Vec::new();
    for &line in &stripped.bad_markers {
        findings.push(Finding {
            file: path.to_path_buf(),
            line,
            rule: "allow-marker".into(),
            message: "malformed p3-lint marker: use `p3-lint: allow(rule): reason` \
                      with a non-empty reason"
                .into(),
        });
    }
    for rule in RULES {
        for pat in rule.patterns {
            for (pos, _) in stripped.code.match_indices(pat) {
                if !delimited(&stripped.code, pos, pat) {
                    continue;
                }
                let line = line_of(&stripped.code, pos);
                if stripped.allowed(line, rule.name) {
                    continue;
                }
                findings.push(Finding {
                    file: path.to_path_buf(),
                    line,
                    rule: rule.name.into(),
                    message: format!("`{pat}`: {}", rule.why),
                });
            }
        }
    }
    for pos in float_accum_sites(stripped) {
        let line = line_of(&stripped.code, pos);
        if stripped.allowed(line, FLOAT_ACCUM_RULE) {
            continue;
        }
        findings.push(Finding {
            file: path.to_path_buf(),
            line,
            rule: FLOAT_ACCUM_RULE.into(),
            message: "float reduction over `.values()`: rounding order depends on \
                      iteration order"
                .into(),
        });
    }
    if let Some(f) = file_length_finding(path, source, stripped) {
        findings.push(f);
    }
    findings.sort_by_key(|f| f.line);
    findings
}

/// Flags files longer than [`MAX_FILE_LINES`] physical lines. The finding
/// anchors at the first line past the limit; an
/// `allow(file-length)` marker anywhere in the file silences it.
fn file_length_finding(path: &Path, source: &str, stripped: &Stripped) -> Option<Finding> {
    let lines = source.lines().count();
    if lines <= MAX_FILE_LINES {
        return None;
    }
    if stripped.allows.values().any(|r| r == FILE_LENGTH_RULE) {
        return None;
    }
    Some(Finding {
        file: path.to_path_buf(),
        line: MAX_FILE_LINES + 1,
        rule: FILE_LENGTH_RULE.into(),
        message: format!(
            "{lines} lines exceed the {MAX_FILE_LINES}-line limit: split the module \
             (crates/cluster/src/engine/ is the pattern) or justify with \
             `p3-lint: allow(file-length): reason`"
        ),
    })
}

/// Byte positions of order-dependent float accumulations: a single
/// statement that iterates `.values()` and reduces with `.sum(` or
/// `.fold(`. With unordered maps already banned this mostly guards
/// allow-listed ones. Shared with the taint pass, which seeds
/// `taint-float-order` from the same sites.
pub(crate) fn float_accum_sites(stripped: &Stripped) -> Vec<usize> {
    let mut sites = Vec::new();
    for stmt in stripped.code.split(';') {
        if !stmt.contains(".values()") {
            continue;
        }
        if !(stmt.contains(".sum(") || stmt.contains(".fold(")) {
            continue;
        }
        let offset = stmt.as_ptr() as usize - stripped.code.as_ptr() as usize;
        sites.push(offset + stmt.find(".values()").unwrap_or(0));
    }
    sites
}

/// Counts `.unwrap()` / `.expect(` calls in non-test code.
pub fn count_unwraps(source: &str) -> usize {
    count_unwraps_stripped(&strip(source))
}

fn count_unwraps_stripped(stripped: &Stripped) -> usize {
    stripped.code.matches(".unwrap()").count() + stripped.code.matches(".expect(").count()
}

/// A ratcheted per-crate (or per-rule) count: name → maximum allowed.
/// Used for the `[unwrap-budget]`, `[panic-budget]`, `[index-budget]` and
/// `[findings-baseline]` sections of `p3-lint.toml` — each only ever goes
/// down.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Budget(pub BTreeMap<String, usize>);

impl Budget {
    /// Parses the `[unwrap-budget]` section of `p3-lint.toml`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn parse(text: &str) -> Result<Budget, String> {
        Budget::parse_section(text, "unwrap-budget")
    }

    /// Parses one `[section]` of `name = N` lines (comments and blank
    /// lines ignored; a missing section parses as empty).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn parse_section(text: &str, section: &str) -> Result<Budget, String> {
        let header = format!("[{section}]");
        let mut map = BTreeMap::new();
        let mut in_section = false;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                in_section = line == header;
                continue;
            }
            if !in_section {
                continue;
            }
            let Some((name, value)) = line.split_once('=') else {
                return Err(format!("p3-lint.toml:{}: expected `name = N`", i + 1));
            };
            let n: usize = value.trim().parse().map_err(|_| {
                format!("p3-lint.toml:{}: `{}` is not a count", i + 1, value.trim())
            })?;
            map.insert(name.trim().trim_matches('"').to_string(), n);
        }
        Ok(Budget(map))
    }
}

/// Crate-scoped rule exemptions: crate name (short, without the `p3-`
/// prefix) → rule names that do not apply to that crate.
///
/// This is the *blanket* escape hatch, distinct from the per-line
/// `allow(rule)` marker: a crate whose very purpose violates one rule
/// (e.g. `p3-prof` exists to read the wall clock) declares that rule here
/// once, and every other rule still applies to it line by line. Entries
/// live in the `[crate-allow]` section of `p3-lint.toml` so exemptions
/// are reviewed in one place rather than scattered through sources.
/// Exempting a rule does **not** stop the taint pass from tracking what
/// flows out of the crate — see [`taint`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrateAllow(pub BTreeMap<String, Vec<String>>);

impl CrateAllow {
    /// Parses the `[crate-allow]` section of `p3-lint.toml`: lines of
    /// `name = ["rule", ...]` (comments and blank lines ignored; a
    /// missing section means no exemptions).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn parse(text: &str) -> Result<CrateAllow, String> {
        let mut map = BTreeMap::new();
        let mut in_section = false;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                in_section = line == "[crate-allow]";
                continue;
            }
            if !in_section {
                continue;
            }
            let Some((name, value)) = line.split_once('=') else {
                return Err(format!(
                    "p3-lint.toml:{}: expected `name = [\"rule\", ...]`",
                    i + 1
                ));
            };
            let value = value.trim();
            let Some(list) = value.strip_prefix('[').and_then(|v| v.strip_suffix(']')) else {
                return Err(format!(
                    "p3-lint.toml:{}: `{value}` is not a [\"rule\", ...] list",
                    i + 1
                ));
            };
            let mut rules = Vec::new();
            for item in list.split(',') {
                let item = item.trim();
                if item.is_empty() {
                    continue;
                }
                let Some(rule) = item.strip_prefix('"').and_then(|r| r.strip_suffix('"')) else {
                    return Err(format!(
                        "p3-lint.toml:{}: `{item}` is not a quoted rule name",
                        i + 1
                    ));
                };
                rules.push(rule.to_string());
            }
            map.insert(name.trim().to_string(), rules);
        }
        Ok(CrateAllow(map))
    }

    /// True when `rule` is exempted for `krate`.
    pub fn allows(&self, krate: &str, rule: &str) -> bool {
        self.0
            .get(krate)
            .is_some_and(|rules| rules.iter().any(|r| r == rule))
    }
}

/// Parses the `[taint-sanitizer]` section of `p3-lint.toml`: lines of
/// `"crate::Type::fn" = "reason"`. A sanitizer is a function *reviewed* to
/// not leak its impurity into simulated state; the taint pass neither
/// seeds nor propagates through it. The reason is mandatory — an
/// unexplained sanitizer is how laundering starts.
///
/// # Errors
///
/// Returns a message naming the first malformed line (missing quotes or
/// an empty reason).
pub fn parse_sanitizers(text: &str) -> Result<BTreeMap<String, String>, String> {
    let mut map = BTreeMap::new();
    let mut in_section = false;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            in_section = line == "[taint-sanitizer]";
            continue;
        }
        if !in_section {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "p3-lint.toml:{}: expected `\"crate::Type::fn\" = \"reason\"`",
                i + 1
            ));
        };
        let unquote = |s: &str| -> Option<String> {
            s.trim()
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .map(str::to_string)
        };
        let (Some(key), Some(reason)) = (unquote(key), unquote(value)) else {
            return Err(format!(
                "p3-lint.toml:{}: sanitizer entries are `\"crate::Type::fn\" = \"reason\"`",
                i + 1
            ));
        };
        if reason.trim().is_empty() {
            return Err(format!(
                "p3-lint.toml:{}: sanitizer `{key}` needs a non-empty reason",
                i + 1
            ));
        }
        map.insert(key, reason);
    }
    Ok(map)
}

/// Lints one file's source text as part of crate `krate`: same as
/// [`lint_source`], minus the findings whose rule the crate exempts via
/// `[crate-allow]`.
pub fn lint_source_for_crate(
    krate: &str,
    path: &Path,
    source: &str,
    allow: &CrateAllow,
) -> Vec<Finding> {
    lint_source(path, source)
        .into_iter()
        .filter(|f| !allow.allows(krate, &f.rule))
        .collect()
}

/// One ratcheted count checked against its budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetLine {
    /// Short crate name.
    pub krate: String,
    /// What was counted: `unwrap/expect`, `panic-macro` or `index`.
    pub kind: &'static str,
    /// Sites counted in non-test code.
    pub used: usize,
    /// Maximum allowed by `p3-lint.toml`.
    pub budget: usize,
}

/// Result of linting a whole workspace.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// Findings across all passes, sorted and deduplicated.
    pub findings: Vec<Finding>,
    /// Budgets exceeded (unwrap, panic or index).
    pub over_budget: Vec<BudgetLine>,
    /// Budgets with slack (the recorded count can be ratcheted down).
    pub slack: Vec<BudgetLine>,
    /// Findings per rule.
    pub counts: BTreeMap<String, usize>,
    /// The `[findings-baseline]` section the counts were checked against.
    pub baseline: BTreeMap<String, usize>,
    /// Rules whose count exceeds the baseline: `(rule, count, baseline)`.
    pub regressions: Vec<(String, usize, usize)>,
    /// Files checked.
    pub files: usize,
}

impl WorkspaceReport {
    /// True when nothing blocks: no budget exceeded and no rule past its
    /// baseline. (Baselined findings are known debt, not a failure.)
    pub fn is_clean(&self) -> bool {
        self.over_budget.is_empty() && self.regressions.is_empty()
    }

    /// Baseline entries whose recorded count exceeds the live count:
    /// `(rule, count, baseline)` — ratchet these down in `p3-lint.toml`.
    pub fn baseline_slack(&self) -> Vec<(String, usize, usize)> {
        self.baseline
            .iter()
            .filter_map(|(rule, &b)| {
                let n = self.counts.get(rule).copied().unwrap_or(0);
                (n < b).then(|| (rule.clone(), n, b))
            })
            .collect()
    }
}

impl fmt::Display for WorkspaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        for (rule, count, base) in &self.regressions {
            writeln!(
                f,
                "rule {rule}: {count} finding(s) exceed the baseline of {base} \
                 ([findings-baseline] ratchets down only — fix the new findings)"
            )?;
        }
        for b in &self.over_budget {
            writeln!(
                f,
                "crate {}: {} {} sites exceed the budget of {} \
                 (p3-lint.toml ratchets down only — propagate errors instead)",
                b.krate, b.used, b.kind, b.budget
            )?;
        }
        for b in &self.slack {
            writeln!(
                f,
                "note: crate {} uses {} of {} budgeted {} sites — lower it in p3-lint.toml",
                b.krate, b.used, b.budget, b.kind
            )?;
        }
        for (rule, count, base) in self.baseline_slack() {
            writeln!(
                f,
                "note: rule {rule} has {count} finding(s) against a baseline of {base} — \
                 lower it in p3-lint.toml"
            )?;
        }
        if self.is_clean() {
            writeln!(f, "p3-lint: clean — {} files checked", self.files)?;
        } else {
            writeln!(
                f,
                "p3-lint: FAILED — {} finding(s), {} baseline regression(s), {} budget(s) exceeded",
                self.findings.len(),
                self.regressions.len(),
                self.over_budget.len()
            )?;
        }
        Ok(())
    }
}

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            rust_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

fn all_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            all_files(&p, out);
        } else {
            out.push(p);
        }
    }
}

/// Which crates [`lint_workspace_with`] checks, and whether the
/// repo-specific schema/coverage passes run. [`Default`] matches this
/// workspace; fixture tests substitute their own mini-workspaces.
#[derive(Debug, Clone)]
pub struct WorkspaceOptions {
    /// Crates the pattern rules and the taint pass cover.
    pub sim_crates: Vec<String>,
    /// Crates whose unwrap and panic budgets are enforced.
    pub budget_crates: Vec<String>,
    /// Run the schema-drift and invariant-coverage passes (they name
    /// specific files of this repository).
    pub repo_checks: bool,
}

impl Default for WorkspaceOptions {
    fn default() -> Self {
        WorkspaceOptions {
            sim_crates: SIM_CRATES.iter().map(|s| s.to_string()).collect(),
            budget_crates: BUDGET_CRATES.iter().map(|s| s.to_string()).collect(),
            repo_checks: true,
        }
    }
}

/// The versioned-format files the schema-drift pass cross-checks, as
/// `(workspace-relative path, version constant)`.
const JSON_FORMAT_SPECS: [(&str, &str); 3] = [
    ("crates/prof/src/report.rs", "PROFILE_FORMAT_VERSION"),
    ("crates/prof/src/bench.rs", "BENCH_FORMAT_VERSION"),
    ("crates/tune/src/report.rs", "TUNE_FORMAT_VERSION"),
];

/// Lints the workspace rooted at `root` (the directory holding
/// `Cargo.toml` and `crates/`) with the default [`WorkspaceOptions`]:
/// every pass, all [`SIM_CRATES`] and [`BUDGET_CRATES`], budgets and
/// baseline from `<root>/p3-lint.toml`.
///
/// # Errors
///
/// Returns a message when the config file is missing or malformed, a
/// budgeted crate has no budget entry, or a schema-checked file is gone.
pub fn lint_workspace(root: &Path) -> Result<WorkspaceReport, String> {
    lint_workspace_with(root, &WorkspaceOptions::default())
}

/// [`lint_workspace`] with explicit [`WorkspaceOptions`].
///
/// # Errors
///
/// See [`lint_workspace`].
pub fn lint_workspace_with(
    root: &Path,
    opts: &WorkspaceOptions,
) -> Result<WorkspaceReport, String> {
    let toml_path = root.join("p3-lint.toml");
    let toml_text =
        std::fs::read_to_string(&toml_path).map_err(|e| format!("{}: {e}", toml_path.display()))?;
    let unwrap_budget = Budget::parse_section(&toml_text, "unwrap-budget")?;
    let panic_budget = Budget::parse_section(&toml_text, "panic-budget")?;
    let index_budget = Budget::parse_section(&toml_text, "index-budget")?;
    let baseline = Budget::parse_section(&toml_text, "findings-baseline")?;
    let crate_allow = CrateAllow::parse(&toml_text)?;
    let sanitizers = parse_sanitizers(&toml_text)?;

    // ── Collect and strip every sim-crate source exactly once. ──
    let mut files: Vec<callgraph::SourceFile> = Vec::new();
    let mut sources: Vec<String> = Vec::new();
    for name in &opts.sim_crates {
        let src = root.join("crates").join(name).join("src");
        let mut paths = Vec::new();
        rust_files(&src, &mut paths);
        if paths.is_empty() {
            return Err(format!("no Rust sources under {}", src.display()));
        }
        for p in paths {
            let source =
                std::fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
            let rel = p.strip_prefix(root).unwrap_or(&p).to_path_buf();
            files.push(callgraph::SourceFile {
                krate: name.clone(),
                path: rel,
                stripped: strip(&source),
            });
            sources.push(source);
        }
    }

    let mut report = WorkspaceReport {
        files: files.len(),
        baseline: baseline.0.clone(),
        ..Default::default()
    };

    // ── Pass 1: token rules. ──
    for (sf, source) in files.iter().zip(&sources) {
        report.findings.extend(
            lint_stripped(&sf.path, source, &sf.stripped)
                .into_iter()
                .filter(|f| !crate_allow.allows(&sf.krate, &f.rule)),
        );
    }

    // ── Pass 2: call-graph taint. ──
    let graph = callgraph::build(&files);
    let tcfg = taint::TaintConfig {
        sim_crates: &opts.sim_crates,
        crate_allow: &crate_allow,
        sanitizers: &sanitizers,
    };
    report
        .findings
        .extend(taint::analyze(&graph, &files, &tcfg));

    // ── Pass 3: budgets (unwrap + panic for all budget crates, index for
    //    crates opted in via [index-budget]). ──
    let mut stripped_by_crate: BTreeMap<&str, Vec<&Stripped>> = BTreeMap::new();
    for sf in &files {
        stripped_by_crate
            .entry(sf.krate.as_str())
            .or_default()
            .push(&sf.stripped);
    }
    let count_crate = |name: &str, counter: &dyn Fn(&Stripped) -> usize| -> Result<usize, String> {
        if let Some(list) = stripped_by_crate.get(name) {
            return Ok(list.iter().map(|s| counter(s)).sum());
        }
        let src = root.join("crates").join(name).join("src");
        let mut paths = Vec::new();
        rust_files(&src, &mut paths);
        let mut n = 0;
        for p in &paths {
            let source = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
            n += counter(&strip(&source));
        }
        Ok(n)
    };
    for name in &opts.budget_crates {
        let unwraps = count_crate(name, &count_unwraps_stripped)?;
        match unwrap_budget.0.get(name) {
            None => {
                return Err(format!(
                    "p3-lint.toml has no unwrap budget for crate `{name}` — add `{name} = \
                     {unwraps}`"
                ))
            }
            Some(&b) => track_budget(&mut report, name, "unwrap/expect", unwraps, b),
        }
        let n_panics = count_crate(name, &panics::count_panics)?;
        match panic_budget.0.get(name) {
            None => {
                return Err(format!(
                    "p3-lint.toml has no panic budget for crate `{name}` — add `{name} = \
                     {n_panics}` to [panic-budget]"
                ))
            }
            Some(&b) => track_budget(&mut report, name, "panic-macro", n_panics, b),
        }
    }
    for (name, &b) in &index_budget.0 {
        let n = count_crate(name, &panics::count_index_sites)?;
        track_budget(&mut report, name, "index", n, b);
    }

    // ── Passes 4–5: schema drift and invariant coverage (repo-specific). ──
    if opts.repo_checks {
        let by_rel: BTreeMap<&Path, usize> = files
            .iter()
            .enumerate()
            .map(|(i, f)| (f.path.as_path(), i))
            .collect();
        let find = |rel: &str| -> Result<usize, String> {
            by_rel
                .get(Path::new(rel))
                .copied()
                .ok_or_else(|| format!("schema-drift: expected file `{rel}` is missing"))
        };
        for (rel, version_const) in JSON_FORMAT_SPECS {
            let i = find(rel)?;
            report.findings.extend(schema::check_json_format(
                &files[i].path,
                &files[i].stripped,
                version_const,
            ));
        }
        let i = find("crates/trace/src/export.rs")?;
        report.findings.extend(schema::check_trace_export(
            &files[i].path,
            &files[i].stripped,
        ));
        let i = find("crates/cluster/src/snap.rs")?;
        report.findings.extend(schema::check_snap_header(
            &files[i].path,
            &files[i].stripped,
            &["SNAP_MAGIC", "SNAP_VERSION"],
        ));
        let enc = find("crates/cluster/src/engine/snapshot/encode.rs")?;
        let dec = find("crates/cluster/src/engine/snapshot/decode.rs")?;
        report.findings.extend(schema::check_codec_pairing(
            &files[enc].path,
            &files[enc].stripped,
            &files[dec].stripped,
        ));

        let cat = find("crates/audit/src/report.rs")?;
        let corpus = test_corpus(root, &files, &sources);
        report.findings.extend(coverage::check_invariant_coverage(
            &files[cat].path,
            &sources[cat],
            "Invariant",
            &corpus,
        ));
    }

    report.findings.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
    });
    report.findings.dedup();
    for f in &report.findings {
        *report.counts.entry(f.rule.clone()).or_insert(0) += 1;
    }
    for (rule, &n) in &report.counts {
        let base = report.baseline.get(rule).copied().unwrap_or(0);
        if n > base {
            report.regressions.push((rule.clone(), n, base));
        }
    }
    Ok(report)
}

fn track_budget(
    report: &mut WorkspaceReport,
    name: &str,
    kind: &'static str,
    used: usize,
    budget: usize,
) {
    let line = BudgetLine {
        krate: name.into(),
        kind,
        used,
        budget,
    };
    if used > budget {
        report.over_budget.push(line);
    } else if used < budget {
        report.slack.push(line);
    }
}

/// The searchable corpus for the invariant-coverage pass: every file under
/// any crate's `tests/` directory (fixture file *names* count too), plus
/// the `#[cfg(test)]` spans of each sim-crate source.
fn test_corpus(
    root: &Path,
    files: &[callgraph::SourceFile],
    sources: &[String],
) -> Vec<coverage::CorpusEntry> {
    let mut corpus = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for d in dirs {
            let tests = d.join("tests");
            let mut paths = Vec::new();
            all_files(&tests, &mut paths);
            for p in paths {
                let text = std::fs::read_to_string(&p).unwrap_or_default();
                corpus.push(coverage::CorpusEntry {
                    path: p.strip_prefix(root).unwrap_or(&p).to_path_buf(),
                    text,
                });
            }
        }
    }
    for (sf, source) in files.iter().zip(sources) {
        if sf.stripped.test_spans.is_empty() {
            continue;
        }
        let text: String = sf
            .stripped
            .test_spans
            .iter()
            .filter_map(|&(a, z)| source.get(a..z.min(source.len())))
            .collect::<Vec<_>>()
            .join("\n");
        corpus.push(coverage::CorpusEntry {
            path: sf.path.clone(),
            text,
        });
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(src: &str) -> Vec<Finding> {
        lint_source(Path::new("test.rs"), src)
    }

    #[test]
    fn flags_hashmap_outside_tests() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
        let f = lint_str(src);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "unordered"));
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn ignores_tests_comments_and_strings() {
        let src = r##"
// HashMap in a comment
fn f() { let s = "HashMap"; let _ = s; }
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() { let _ = HashMap::<u32, u32>::new(); }
}
"##;
        assert!(lint_str(src).is_empty(), "{:?}", lint_str(src));
    }

    #[test]
    fn allow_marker_needs_reason() {
        let with_reason = "// p3-lint: allow(unordered): key order never observed\nuse std::collections::HashMap;\n";
        assert!(lint_str(with_reason).is_empty());
        let no_reason = "// p3-lint: allow(unordered)\nuse std::collections::HashMap;\n";
        let f = lint_str(no_reason);
        assert!(f.iter().any(|x| x.rule == "allow-marker"), "{f:?}");
        assert!(f.iter().any(|x| x.rule == "unordered"), "{f:?}");
    }

    #[test]
    fn flags_wall_clock_rng_and_env() {
        let f = lint_str("fn f() { let t = Instant::now(); }\n");
        assert!(f.iter().any(|x| x.rule == "wall-clock"), "{f:?}");
        let f = lint_str("fn f() { let r = thread_rng(); }\n");
        assert!(f.iter().any(|x| x.rule == "ambient-rng"), "{f:?}");
        let f = lint_str("fn f() { let v = std::env::var(\"SEED\"); }\n");
        assert!(f.iter().any(|x| x.rule == "ambient-env"), "{f:?}");
        // `env::vars` must not double-report as `env::var`.
        let f = lint_str("fn f() { for _ in std::env::vars() {} }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "ambient-env");
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(lint_str("struct MyHashMapLike;\n").is_empty());
        assert!(lint_str("fn spawn_thread_rngs() {}\n").is_empty());
    }

    #[test]
    fn flags_overlong_files() {
        let long = "fn a() {}\n".repeat(MAX_FILE_LINES + 1);
        let f = lint_str(&long);
        assert!(f.iter().any(|x| x.rule == FILE_LENGTH_RULE), "{f:?}");
        assert_eq!(f[0].line, MAX_FILE_LINES + 1);
        let at_limit = "fn a() {}\n".repeat(MAX_FILE_LINES);
        assert!(lint_str(&at_limit).is_empty());
        let allowed = format!("// p3-lint: allow(file-length): split tracked elsewhere\n{long}");
        assert!(lint_str(&allowed).is_empty());
    }

    #[test]
    fn flags_float_accum_over_values() {
        let src = "fn f(m: &BTreeMap<u32, f64>) -> f64 { m.values().sum() }\n";
        let f = lint_str(src);
        assert!(f.iter().any(|x| x.rule == FLOAT_ACCUM_RULE), "{f:?}");
        let allowed = "// p3-lint: allow(float-accum-unordered): BTreeMap order is fixed\nfn f(m: &BTreeMap<u32, f64>) -> f64 { m.values().sum() }\n";
        assert!(lint_str(allowed).is_empty());
    }

    #[test]
    fn counts_unwraps_outside_tests_only() {
        let src = r#"
fn f(x: Option<u32>) -> u32 { x.unwrap() + x.expect("set") }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); }
}
"#;
        assert_eq!(count_unwraps(src), 2);
    }

    #[test]
    fn budget_parses() {
        let b = Budget::parse("# ratchet\n[unwrap-budget]\ncluster = 3 # why\ncli = 10\n").unwrap();
        assert_eq!(b.0.get("cluster"), Some(&3));
        assert_eq!(b.0.get("cli"), Some(&10));
        assert!(Budget::parse("[unwrap-budget]\ncluster three\n").is_err());
    }

    #[test]
    fn budget_sections_are_independent() {
        let text = "[unwrap-budget]\ncluster = 3\n[panic-budget]\ncluster = 14\n\
                    [findings-baseline]\n\"schema-drift\" = 1\n";
        assert_eq!(
            Budget::parse_section(text, "panic-budget")
                .unwrap()
                .0
                .get("cluster"),
            Some(&14)
        );
        assert_eq!(
            Budget::parse_section(text, "findings-baseline")
                .unwrap()
                .0
                .get("schema-drift"),
            Some(&1)
        );
        // A missing section is an empty budget, not an error.
        assert!(Budget::parse_section(text, "index-budget")
            .unwrap()
            .0
            .is_empty());
    }

    #[test]
    fn sanitizers_require_quotes_and_reasons() {
        let ok = "[taint-sanitizer]\n\"prof::SimProfiler::new\" = \"reviewed\"\n";
        let m = parse_sanitizers(ok).unwrap();
        assert_eq!(
            m.get("prof::SimProfiler::new").map(String::as_str),
            Some("reviewed")
        );
        assert!(parse_sanitizers("[taint-sanitizer]\nprof::x = \"r\"\n").is_err());
        assert!(parse_sanitizers("[taint-sanitizer]\n\"prof::x\" = \"\"\n").is_err());
        assert!(parse_sanitizers("[unwrap-budget]\ncli = 0\n")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn crate_allow_parses_lists() {
        let text = "[unwrap-budget]\nprof = 0\n[crate-allow]\nprof = [\"wall-clock\"] # why\n";
        let a = CrateAllow::parse(text).unwrap();
        assert!(a.allows("prof", "wall-clock"));
        assert!(!a.allows("prof", "unordered"));
        assert!(!a.allows("cluster", "wall-clock"));
        assert!(CrateAllow::parse("[crate-allow]\nprof = wall-clock\n").is_err());
        assert!(CrateAllow::parse("[crate-allow]\nprof = [wall-clock]\n").is_err());
        // A file with no section at all means no exemptions.
        assert_eq!(
            CrateAllow::parse("[unwrap-budget]\ncli = 0\n").unwrap(),
            CrateAllow::default()
        );
    }

    #[test]
    fn crate_allow_filters_only_the_listed_rule() {
        let allow = CrateAllow::parse("[crate-allow]\nprof = [\"wall-clock\"]\n").unwrap();
        let src = "fn f() { let t = Instant::now(); let m = HashMap::<u32, u32>::new(); }\n";
        let prof = lint_source_for_crate("prof", Path::new("t.rs"), src, &allow);
        assert!(prof.iter().all(|f| f.rule != "wall-clock"), "{prof:?}");
        assert!(prof.iter().any(|f| f.rule == "unordered"), "{prof:?}");
        let cluster = lint_source_for_crate("cluster", Path::new("t.rs"), src, &allow);
        assert!(
            cluster.iter().any(|f| f.rule == "wall-clock"),
            "{cluster:?}"
        );
    }

    #[test]
    fn raw_strings_and_chars_are_stripped() {
        let src = "fn f() { let s = r#\"HashMap\"#; let c = 'H'; let _ = (s, c); }\n";
        assert!(lint_str(src).is_empty(), "{:?}", lint_str(src));
    }

    #[test]
    fn report_clean_tracks_budgets_and_baseline() {
        let mut r = WorkspaceReport::default();
        assert!(r.is_clean());
        r.regressions.push(("schema-drift".into(), 1, 0));
        assert!(!r.is_clean());
        r.regressions.clear();
        r.over_budget.push(BudgetLine {
            krate: "cli".into(),
            kind: "panic-macro",
            used: 2,
            budget: 0,
        });
        assert!(!r.is_clean());
    }
}
