//! Item and call-graph extraction over stripped sources.
//!
//! This is deliberately *not* a Rust front end: it is a token-level
//! extractor tuned for the patterns this workspace actually writes. It
//! resolves `use` aliases (including `pub use` re-exports and grouped
//! imports), attributes functions to their `impl`/`trait` context, and
//! records every call site with its candidate targets — workspace
//! functions by (crate, type, name), everything else as an alias-expanded
//! external path. Over-approximation is fine (a call may list several
//! candidates); *missing* an edge that launders a banned API is the
//! failure mode the taint pass exists to close, so resolution prefers
//! recall over precision.

use crate::lexer::{brace_span_end, line_of, tokenize, Stripped, Token};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// One function (free or associated) found in the workspace.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Short crate name (`prof`, `cluster`, …).
    pub krate: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub type_ctx: Option<String>,
    /// Function name.
    pub name: String,
    /// Workspace-relative file.
    pub file: PathBuf,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// `crate::Type::name` or `crate::name` — the key sanitizer entries use.
    pub qualified: String,
    /// Byte span of the body in the file's code view (empty for bodiless
    /// trait-method declarations).
    pub body: (usize, usize),
}

/// A resolved call target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// A workspace function, by node index.
    Node(usize),
    /// Anything else, as the alias-expanded path (e.g.
    /// `std::time::Instant::now`). Method calls that match no workspace
    /// node are recorded as `.name`.
    External(String),
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index of the calling [`FnNode`].
    pub caller: usize,
    /// 1-based line of the call.
    pub line: usize,
    /// The callee as written (`SimProfiler::new`, `.begin`, `gen_seed`).
    pub raw: String,
    /// Candidate targets (several when only the method name is known).
    pub targets: Vec<Callee>,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All functions, in deterministic (file, position) order.
    pub nodes: Vec<FnNode>,
    /// All call sites.
    pub calls: Vec<CallSite>,
}

/// One stripped source file fed to [`build`].
#[derive(Debug)]
pub struct SourceFile {
    /// Short crate name.
    pub krate: String,
    /// Workspace-relative path (used in findings).
    pub path: PathBuf,
    /// The stripped views.
    pub stripped: Stripped,
}

const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "as", "in", "fn", "let", "else", "unsafe",
    "move", "where", "impl", "use", "pub", "mod", "struct", "enum", "trait", "type", "const",
    "static", "ref", "mut", "dyn", "box", "break", "continue",
];

/// Per-file import state: local aliases plus the crate's `pub use`
/// re-exports (merged across files at build time).
#[derive(Debug, Default)]
struct Imports {
    /// Last path segment → full path segments.
    aliases: BTreeMap<String, Vec<String>>,
    /// Re-exported name → full path segments (crate-wide).
    exports: BTreeMap<String, Vec<String>>,
}

/// A type context span: `impl`/`trait` body with its subject type name.
#[derive(Debug)]
struct CtxSpan {
    name: String,
    span: (usize, usize),
}

/// Per-file first-pass state: imports, type contexts, tokens and the ids
/// of the nodes declared in the file.
type FilePass = (Imports, Vec<CtxSpan>, Vec<Token>, Vec<usize>);

/// Builds the call graph over all `files`. Files must arrive in a
/// deterministic order (the workspace walk sorts them).
pub fn build(files: &[SourceFile]) -> CallGraph {
    let crate_names: Vec<&str> = {
        let mut v: Vec<&str> = files.iter().map(|f| f.krate.as_str()).collect();
        v.sort_unstable();
        v.dedup();
        v
    };

    // First pass: imports, exports, contexts and function nodes per file.
    let mut graph = CallGraph::default();
    let mut per_file: Vec<FilePass> = Vec::new();
    let mut crate_exports: BTreeMap<String, BTreeMap<String, Vec<String>>> = BTreeMap::new();
    for file in files {
        let code = &file.stripped.code;
        let toks = tokenize(code);
        let imports = parse_imports(code, &toks);
        let ctxs = parse_contexts(code, &toks);
        let mut node_ids = Vec::new();
        for (name, start, body) in parse_fns(code, &toks) {
            let type_ctx = innermost_ctx(&ctxs, start).map(str::to_string);
            let qualified = match &type_ctx {
                Some(t) => format!("{}::{t}::{name}", file.krate),
                None => format!("{}::{name}", file.krate),
            };
            node_ids.push(graph.nodes.len());
            graph.nodes.push(FnNode {
                krate: file.krate.clone(),
                type_ctx,
                name,
                file: file.path.clone(),
                line: line_of(code, start),
                qualified,
                body,
            });
        }
        for (name, path) in &imports.exports {
            crate_exports
                .entry(file.krate.clone())
                .or_default()
                .insert(name.clone(), path.clone());
        }
        per_file.push((imports, ctxs, toks, node_ids));
    }

    // Second pass: call sites, resolved against the full node index.
    for (fi, file) in files.iter().enumerate() {
        let code = &file.stripped.code;
        let (imports, ctxs, toks, node_ids) = &per_file[fi];
        for i in 1..toks.len() {
            if toks[i].text(code) != "(" || !toks[i - 1].ident {
                continue;
            }
            let name_tok = toks[i - 1];
            let name = name_tok.text(code);
            if KEYWORDS.contains(&name) || name.as_bytes()[0].is_ascii_digit() {
                continue;
            }
            // `name!(` is a macro invocation, not a call.
            if i >= 2 && toks[i - 2].text(code) == "!" {
                continue;
            }
            let caller = match innermost_fn(&graph, node_ids, name_tok.start) {
                Some(c) => c,
                None => continue, // const initializer etc.
            };
            let (raw, targets) = if i >= 2 && toks[i - 2].text(code) == "." {
                resolve_method(&graph, code, name)
            } else {
                let segs = path_segments(code, toks, i - 1);
                let impl_ty = innermost_ctx(ctxs, name_tok.start);
                resolve_path(
                    &graph,
                    &crate_names,
                    &crate_exports,
                    imports,
                    &file.krate,
                    impl_ty,
                    segs,
                )
            };
            graph.calls.push(CallSite {
                caller,
                line: line_of(code, name_tok.start),
                raw,
                targets,
            });
        }
    }
    graph
}

/// Path segments ending at token index `last` (an identifier), walking
/// back across `::` pairs.
fn path_segments(code: &str, toks: &[Token], last: usize) -> Vec<String> {
    let mut segs = vec![toks[last].text(code).to_string()];
    let mut j = last;
    while j >= 3
        && toks[j - 1].text(code) == ":"
        && toks[j - 2].text(code) == ":"
        && toks[j - 3].ident
    {
        let t = toks[j - 3].text(code);
        if t.as_bytes()[0].is_ascii_digit() {
            break;
        }
        segs.insert(0, t.to_string());
        j -= 3;
    }
    segs
}

fn innermost_ctx(ctxs: &[CtxSpan], pos: usize) -> Option<&str> {
    ctxs.iter()
        .filter(|c| c.span.0 <= pos && pos < c.span.1)
        .min_by_key(|c| c.span.1 - c.span.0)
        .map(|c| c.name.as_str())
}

fn innermost_fn(graph: &CallGraph, node_ids: &[usize], pos: usize) -> Option<usize> {
    node_ids
        .iter()
        .copied()
        .filter(|&id| {
            let (a, z) = graph.nodes[id].body;
            a <= pos && pos < z
        })
        .min_by_key(|&id| {
            let (a, z) = graph.nodes[id].body;
            z - a
        })
}

fn resolve_method(graph: &CallGraph, _code: &str, name: &str) -> (String, Vec<Callee>) {
    let raw = format!(".{name}");
    let targets: Vec<Callee> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.type_ctx.is_some() && n.name == name)
        .map(|(i, _)| Callee::Node(i))
        .collect();
    if targets.is_empty() {
        (raw.clone(), vec![Callee::External(raw)])
    } else {
        (raw, targets)
    }
}

/// Normalizes a crate segment: `p3_foo` → `foo`.
fn short_crate(seg: &str) -> &str {
    seg.strip_prefix("p3_").unwrap_or(seg)
}

#[allow(clippy::too_many_arguments)]
fn resolve_path(
    graph: &CallGraph,
    crate_names: &[&str],
    crate_exports: &BTreeMap<String, BTreeMap<String, Vec<String>>>,
    imports: &Imports,
    own_crate: &str,
    impl_ty: Option<&str>,
    mut segs: Vec<String>,
) -> (String, Vec<Callee>) {
    let raw = segs.join("::");
    // `Self::f` → the enclosing impl type.
    if segs[0] == "Self" {
        match impl_ty {
            Some(t) => segs[0] = t.to_string(),
            None => return (raw.clone(), vec![Callee::External(raw)]),
        }
    }
    // `crate::`/`self::`/`super::` prefixes pin resolution to this crate.
    while segs.len() > 1 && matches!(segs[0].as_str(), "crate" | "self" | "super") {
        segs.remove(0);
    }
    // Expand a `use` alias of the head segment.
    if let Some(path) = imports.aliases.get(&segs[0]) {
        let mut expanded = path.clone();
        expanded.extend(segs.drain(1..));
        segs = expanded;
    }
    let head_short = short_crate(&segs[0]).to_string();

    let mut targets = Vec::new();
    if crate_names.contains(&head_short.as_str()) && segs.len() > 1 {
        // `other_crate::…`: expand that crate's re-exports, then match its
        // nodes by (type, name) with module segments tolerated.
        if segs.len() == 2 {
            if let Some(exp) = crate_exports.get(&head_short).and_then(|m| m.get(&segs[1])) {
                let expanded = exp.join("::");
                return (
                    raw,
                    classify_in_workspace(graph, crate_names, exp, &expanded)
                        .unwrap_or_else(|| vec![Callee::External(expanded)]),
                );
            }
        }
        targets.extend(match_in_crate(graph, &head_short, &segs[1..]));
    } else if segs.len() >= 2 && !crate_names.contains(&head_short.as_str()) {
        // `Type::f` / `module::f` without a crate prefix: same crate.
        targets.extend(match_in_crate(graph, own_crate, &segs));
    } else if segs.len() == 1 {
        // Bare call: free functions of this crate.
        targets.extend(
            graph
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.krate == own_crate && n.type_ctx.is_none() && n.name == segs[0])
                .map(|(i, _)| Callee::Node(i)),
        );
    }
    if targets.is_empty() {
        targets.push(Callee::External(segs.join("::")));
    }
    (raw, targets)
}

/// Resolves an already-expanded path (from a re-export) against the
/// workspace, or `None` if it points outside it.
fn classify_in_workspace(
    graph: &CallGraph,
    crate_names: &[&str],
    segs: &[String],
    _joined: &str,
) -> Option<Vec<Callee>> {
    if segs.len() < 2 {
        return None;
    }
    let head = short_crate(&segs[0]).to_string();
    if !crate_names.contains(&head.as_str()) {
        return None;
    }
    let t = match_in_crate(graph, &head, &segs[1..]);
    if t.is_empty() {
        None
    } else {
        Some(t)
    }
}

/// Nodes of `krate` matching a path remainder: last segment is the fn
/// name; the one before it (if any) may be its `impl` type *or* a module,
/// so free functions match either way.
fn match_in_crate(graph: &CallGraph, krate: &str, rest: &[String]) -> Vec<Callee> {
    let name = match rest.last() {
        Some(n) => n,
        None => return Vec::new(),
    };
    let qualifier = (rest.len() >= 2).then(|| rest[rest.len() - 2].as_str());
    graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            n.krate == krate
                && n.name == *name
                && match (qualifier, &n.type_ctx) {
                    (Some(q), Some(t)) => q == t,
                    (Some(_), None) => true, // `module::f` — module not tracked
                    (None, Some(_)) => false,
                    (None, None) => true,
                }
        })
        .map(|(i, _)| Callee::Node(i))
        .collect()
}

/// Parses `use` declarations (including grouped and renamed imports) into
/// alias and export tables.
fn parse_imports(code: &str, toks: &[Token]) -> Imports {
    let mut imports = Imports::default();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].ident && toks[i].text(code) == "use" {
            let is_pub = i > 0 && toks[i - 1].text(code) == "pub";
            let mut j = i + 1;
            while j < toks.len() && toks[j].text(code) != ";" {
                j += 1;
            }
            let decl = &code[toks[i].end..toks[j.min(toks.len() - 1)].start];
            record_use_tree(decl.trim(), &[], is_pub, &mut imports);
            i = j + 1;
        } else {
            i += 1;
        }
    }
    imports
}

/// Records one `use` tree (textual, whitespace-tolerant): `a::b::C`,
/// `a::b as x`, `a::{B, C as D, d::E}` — one brace level of nesting per
/// recursion step, `*` globs skipped.
fn record_use_tree(decl: &str, prefix: &[String], is_pub: bool, imports: &mut Imports) {
    let decl = decl.trim();
    if decl.is_empty() || decl == "*" {
        return;
    }
    if let Some(open) = decl.find('{') {
        // `path::{…}` — split the group at top level.
        let base = decl[..open].trim().trim_end_matches(':').trim();
        let mut new_prefix: Vec<String> = prefix.to_vec();
        new_prefix.extend(split_path(base));
        let Some(close) = decl.rfind('}') else {
            return;
        };
        let inner = &decl[open + 1..close];
        let mut depth = 0usize;
        let mut start = 0usize;
        for (k, c) in inner.char_indices() {
            match c {
                '{' => depth += 1,
                '}' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    record_use_tree(&inner[start..k], &new_prefix, is_pub, imports);
                    start = k + 1;
                }
                _ => {}
            }
        }
        record_use_tree(&inner[start..], &new_prefix, is_pub, imports);
        return;
    }
    let (path_part, alias) = match decl.split_once(" as ") {
        Some((p, a)) => (p.trim(), Some(a.trim().to_string())),
        None => (decl, None),
    };
    let mut full: Vec<String> = prefix.to_vec();
    full.extend(split_path(path_part));
    let Some(last) = full.last().cloned() else {
        return;
    };
    if last == "*" {
        return;
    }
    let name = match alias {
        Some(a) => a,
        None if last == "self" => {
            full.pop();
            match full.last() {
                Some(l) => l.clone(),
                None => return,
            }
        }
        None => last,
    };
    if name == "_" {
        return;
    }
    imports.aliases.insert(name.clone(), full.clone());
    if is_pub {
        imports.exports.insert(name, full);
    }
}

fn split_path(p: &str) -> Vec<String> {
    p.split("::")
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// Finds `impl`/`trait` blocks and their subject type names.
fn parse_contexts(code: &str, toks: &[Token]) -> Vec<CtxSpan> {
    let mut ctxs = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].ident {
            continue;
        }
        let kw = toks[i].text(code);
        if kw != "impl" && kw != "trait" {
            continue;
        }
        // Only item position: after `;`/`}`/`]`/`{`, after `pub`/`unsafe`,
        // or at the start. `-> impl Trait` and `&dyn Trait` are skipped.
        if i > 0 {
            let prev = toks[i - 1].text(code);
            if !matches!(prev, ";" | "}" | "]" | "{" | "pub" | "unsafe") {
                continue;
            }
        }
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut last_seg: Option<String> = None;
        let mut capture = true;
        while j < toks.len() {
            let t = toks[j].text(code);
            match t {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" if angle <= 0 => break,
                ";" if angle <= 0 => break,
                "for" if toks[j].ident && angle <= 0 => {
                    last_seg = None;
                    capture = true;
                }
                "where" if toks[j].ident && angle <= 0 => capture = false,
                _ if toks[j].ident && angle <= 0 && capture => {
                    last_seg = Some(t.to_string());
                }
                _ => {}
            }
            j += 1;
        }
        if j >= toks.len() || toks[j].text(code) != "{" {
            continue;
        }
        let Some(name) = last_seg else { continue };
        let end = brace_span_end(code, toks[j].start);
        ctxs.push(CtxSpan {
            name,
            span: (toks[j].start, end),
        });
    }
    ctxs
}

/// Finds `fn` items: `(name, start offset, body span)`. Bodiless trait
/// declarations get an empty span.
fn parse_fns(code: &str, toks: &[Token]) -> Vec<(String, usize, (usize, usize))> {
    let mut fns = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].ident || toks[i].text(code) != "fn" {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1).filter(|t| t.ident) else {
            continue;
        };
        let name = name_tok.text(code).to_string();
        let mut j = i + 2;
        let mut paren = 0i32;
        let mut body = (name_tok.start, name_tok.start);
        while j < toks.len() {
            match toks[j].text(code) {
                "(" => paren += 1,
                ")" => paren -= 1,
                "{" if paren == 0 => {
                    let open = toks[j].start;
                    body = (open, brace_span_end(code, open));
                    break;
                }
                ";" if paren == 0 => break,
                _ => {}
            }
            j += 1;
        }
        fns.push((name, toks[i].start, body));
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::strip;

    fn file(krate: &str, path: &str, src: &str) -> SourceFile {
        SourceFile {
            krate: krate.into(),
            path: PathBuf::from(path),
            stripped: strip(src),
        }
    }

    #[test]
    fn extracts_fns_with_impl_context() {
        let g = build(&[file(
            "a",
            "a.rs",
            "pub struct P;\nimpl P {\n  pub fn new() -> P { P }\n  fn go(&self) {}\n}\nfn free() {}\n",
        )]);
        let quals: Vec<&str> = g.nodes.iter().map(|n| n.qualified.as_str()).collect();
        assert_eq!(quals, vec!["a::P::new", "a::P::go", "a::free"]);
    }

    #[test]
    fn trait_impl_attributes_to_the_type_after_for() {
        let g = build(&[file(
            "a",
            "a.rs",
            "struct T;\nimpl Default for T {\n  fn default() -> T { T::new() }\n}\nimpl T { fn new() -> T { T } }\n",
        )]);
        assert!(g.nodes.iter().any(|n| n.qualified == "a::T::default"));
        // default() calls T::new — resolved to the node.
        let new_id = g
            .nodes
            .iter()
            .position(|n| n.qualified == "a::T::new")
            .unwrap();
        assert!(g
            .calls
            .iter()
            .any(|c| c.raw == "T::new" && c.targets.contains(&Callee::Node(new_id))));
    }

    #[test]
    fn self_calls_resolve_through_the_impl_type() {
        let g = build(&[file(
            "a",
            "a.rs",
            "struct T;\nimpl T {\n fn new() -> T { T }\n fn mk() -> T { Self::new() }\n}\n",
        )]);
        let new_id = g
            .nodes
            .iter()
            .position(|n| n.qualified == "a::T::new")
            .unwrap();
        assert!(g
            .calls
            .iter()
            .any(|c| c.raw == "Self::new" && c.targets.contains(&Callee::Node(new_id))));
    }

    #[test]
    fn use_alias_expands_to_external_path() {
        let g = build(&[file(
            "a",
            "a.rs",
            "use std::time::Instant as Clock;\nfn f() -> f64 { let _ = Clock::now(); 0.0 }\n",
        )]);
        assert!(g.calls.iter().any(|c| c.raw == "Clock::now"
            && c.targets
                .contains(&Callee::External("std::time::Instant::now".into()))));
    }

    #[test]
    fn grouped_use_and_cross_crate_resolution() {
        let helper = file("h", "h.rs", "pub fn now_secs() -> f64 { 0.0 }\n");
        let user = file(
            "a",
            "a.rs",
            "use p3_h::now_secs;\nfn f() -> f64 { now_secs() }\n",
        );
        // Bare call through a use-alias of another crate's free fn.
        let g = build(&[user, helper]);
        let h_id = g
            .nodes
            .iter()
            .position(|n| n.qualified == "h::now_secs")
            .unwrap();
        assert!(
            g.calls
                .iter()
                .any(|c| c.raw == "now_secs" && c.targets.contains(&Callee::Node(h_id))),
            "{:?}",
            g.calls
        );
    }

    #[test]
    fn pub_use_reexport_resolves_to_the_underlying_path() {
        let helper = file("h", "h.rs", "pub use rand::thread_rng as fresh_rng;\n");
        let user = file("a", "a.rs", "fn f() { let _ = p3_h::fresh_rng(); }\n");
        let g = build(&[user, helper]);
        assert!(
            g.calls.iter().any(|c| c.raw == "p3_h::fresh_rng"
                && c.targets
                    .contains(&Callee::External("rand::thread_rng".into()))),
            "{:?}",
            g.calls
        );
    }

    #[test]
    fn method_calls_resolve_by_name_across_crates() {
        let helper = file(
            "h",
            "h.rs",
            "pub struct Prof;\nimpl Prof { pub fn begin(&self) {} }\n",
        );
        let user = file("a", "a.rs", "fn f(p: &p3_h::Prof) { p.begin(); }\n");
        let g = build(&[user, helper]);
        let id = g
            .nodes
            .iter()
            .position(|n| n.qualified == "h::Prof::begin")
            .unwrap();
        assert!(g
            .calls
            .iter()
            .any(|c| c.raw == ".begin" && c.targets.contains(&Callee::Node(id))));
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let g = build(&[file(
            "a",
            "a.rs",
            "fn f(x: u32) -> u32 { if x > 0 { panic!(\"no\") } else { x } }\n",
        )]);
        assert!(
            g.calls.iter().all(|c| c.raw != "panic" && c.raw != "if"),
            "{:?}",
            g.calls
        );
    }
}
