//! Panic-path analysis: extends the unwrap budget to explicit panic
//! macros and (for designated hot-path crates) slice indexing.
//!
//! Like the unwrap budget, these are *ratchets*, not bans: the counts in
//! `p3-lint.toml` may only go down. `panic!`/`unreachable!` guarding a
//! truly unreachable engine invariant is acceptable — an ever-growing pile
//! of them is how user-reachable crashes creep in. Slice indexing is the
//! silent member of the family (`x[i]` panics like an unwrap but greps
//! like nothing), so the crates on the event hot path carry an explicit
//! index budget too.

use crate::lexer::{delimited, Stripped};

/// Panic macros the budget counts (in non-test code).
pub const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Counts `panic!`/`unreachable!`/`todo!`/`unimplemented!` invocations in
/// a stripped file.
pub fn count_panics(stripped: &Stripped) -> usize {
    let code = &stripped.code;
    let b = code.as_bytes();
    let mut n = 0;
    for mac in PANIC_MACROS {
        for (pos, _) in code.match_indices(mac) {
            if !delimited(code, pos, mac) {
                continue;
            }
            // The `!` must follow (whitespace-tolerant).
            let mut j = pos + mac.len();
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
            if j < b.len() && b[j] == b'!' {
                n += 1;
            }
        }
    }
    n
}

/// Counts index expressions (`x[i]`, `x[a..b]`, `f()[0]`) in a stripped
/// file: a `[` whose previous non-space character ends an expression
/// (identifier, `)` or `]`). Attributes (`#[…]`), slice types (`&[T]`),
/// array literals and patterns do not count.
pub fn count_index_sites(stripped: &Stripped) -> usize {
    let b = stripped.code.as_bytes();
    let mut n = 0;
    for (i, &c) in b.iter().enumerate() {
        if c != b'[' {
            continue;
        }
        let mut j = i;
        while j > 0 {
            j -= 1;
            if b[j].is_ascii_whitespace() {
                continue;
            }
            if b[j].is_ascii_alphanumeric() || b[j] == b'_' || b[j] == b')' || b[j] == b']' {
                n += 1;
            }
            break;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::strip;

    #[test]
    fn counts_panic_macros_outside_tests() {
        let src = r#"
fn f(x: u32) {
    if x > 3 { panic!("boom") }
    match x { 0 => unreachable!(), _ => todo!() }
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { panic!("test-only is free"); }
}
"#;
        assert_eq!(count_panics(&strip(src)), 3);
    }

    #[test]
    fn panic_in_comment_or_string_is_free() {
        let src = "// panic! lives here\nfn f() { let s = \"panic!\"; let _ = s; }\n";
        assert_eq!(count_panics(&strip(src)), 0);
    }

    #[test]
    fn counts_index_expressions_not_types_or_attrs() {
        let src = r#"
#[derive(Debug)]
struct S { a: [u8; 4] }
fn f(v: &[u64], s: &S, i: usize) -> u64 {
    let head = v[0];
    let tail = &v[1..];
    head + tail[i] + u64::from(s.a[2])
}
"#;
        assert_eq!(count_index_sites(&strip(src)), 4);
    }
}
