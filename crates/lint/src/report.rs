//! Versioned JSON findings report.
//!
//! `p3 lint --json` emits the workspace report as a small hand-rolled JSON
//! document (the same no-dependency discipline as every other exporter in
//! the workspace — and the schema-drift pass lints this file like any
//! other). The output is **byte-deterministic**: findings are sorted,
//! per-rule counts live in ordered maps, and nothing timestamps the run —
//! CI runs the lint twice and byte-compares the two reports.

use crate::{BudgetLine, WorkspaceReport};
use std::fmt::Write as _;

/// `format` member of the report document.
pub const REPORT_FORMAT: &str = "p3-lint";
/// `version` member of the report document. Bump on any schema change.
pub const REPORT_FORMAT_VERSION: u64 = 1;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn budget_lines(out: &mut String, lines: &[BudgetLine]) {
    for (i, b) in lines.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "      {{\"crate\": \"{}\", \"kind\": \"{}\", \"used\": {}, \"budget\": {}}}",
            escape(&b.krate),
            escape(b.kind),
            b.used,
            b.budget
        );
    }
}

/// Renders the report as deterministic JSON (trailing newline included).
pub fn report_json(report: &WorkspaceReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"format\": \"{REPORT_FORMAT}\",");
    let _ = writeln!(out, "  \"version\": {REPORT_FORMAT_VERSION},");
    let _ = writeln!(out, "  \"files\": {},", report.files);
    let _ = writeln!(out, "  \"clean\": {},", report.is_clean());

    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        let _ = write!(
            out,
            "{{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            escape(&f.file.display().to_string()),
            f.line,
            escape(&f.rule),
            escape(&f.message)
        );
    }
    out.push_str(if report.findings.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });

    out.push_str("  \"counts\": {");
    for (i, (rule, n)) in report.counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {n}", escape(rule));
    }
    out.push_str(if report.counts.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });

    out.push_str("  \"regressions\": [");
    for (i, (rule, count, baseline)) in report.regressions.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        let _ = write!(
            out,
            "{{\"rule\": \"{}\", \"count\": {count}, \"baseline\": {baseline}}}",
            escape(rule)
        );
    }
    out.push_str(if report.regressions.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });

    out.push_str("  \"budgets\": {\n    \"over\": [");
    if !report.over_budget.is_empty() {
        out.push('\n');
        budget_lines(&mut out, &report.over_budget);
        out.push_str("\n    ");
    }
    out.push_str("],\n    \"slack\": [");
    if !report.slack.is_empty() {
        out.push('\n');
        budget_lines(&mut out, &report.slack);
        out.push_str("\n    ");
    }
    out.push_str("]\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Finding;
    use std::path::PathBuf;

    fn sample() -> WorkspaceReport {
        let mut r = WorkspaceReport {
            files: 2,
            ..Default::default()
        };
        r.findings.push(Finding {
            file: PathBuf::from("crates/x/src/lib.rs"),
            line: 3,
            rule: "unordered".into(),
            message: "`HashMap`: \"why\"".into(),
        });
        r.counts.insert("unordered".into(), 1);
        r.regressions.push(("unordered".into(), 1, 0));
        r.over_budget.push(BudgetLine {
            krate: "x".into(),
            kind: "panic",
            used: 3,
            budget: 1,
        });
        r
    }

    #[test]
    fn json_is_deterministic_and_escaped() {
        let r = sample();
        let a = report_json(&r);
        let b = report_json(&r);
        assert_eq!(a, b);
        assert!(a.contains("\"format\": \"p3-lint\""), "{a}");
        assert!(a.contains("\\\"why\\\""), "{a}");
        assert!(a.contains("\"clean\": false"), "{a}");
        assert!(a.contains("\"baseline\": 0"), "{a}");
        assert!(a.contains("\"kind\": \"panic\""), "{a}");
    }

    #[test]
    fn empty_report_is_clean_and_well_formed() {
        let r = WorkspaceReport::default();
        let j = report_json(&r);
        assert!(j.contains("\"clean\": true"), "{j}");
        assert!(j.contains("\"findings\": [],"), "{j}");
        assert!(j.contains("\"counts\": {},"), "{j}");
    }
}
