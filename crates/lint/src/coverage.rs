//! Invariant-coverage lint: every checker in the audit catalog must be
//! exercised by at least one test or fixture.
//!
//! The audit crate's `Invariant` enum *is* the catalog (DESIGN.md §10): a
//! variant with no test anywhere in the workspace is a checker that can
//! silently rot. This pass extracts the variant list from the enum
//! definition and searches a test corpus — `tests/` files, `#[cfg(test)]`
//! spans inside `src`, and fixture file names — for any spelling of the
//! invariant (CamelCase, kebab-case or snake_case). A variant nobody
//! names is reported at its definition line.

use crate::lexer::{delimited, line_of, strip, tokenize};
use crate::Finding;
use std::path::{Path, PathBuf};

/// Rule name for invariant-coverage findings.
pub const COVERAGE_RULE: &str = "invariant-coverage";

/// One searchable corpus entry: a path (searched too — fixture file names
/// count as references) and its text.
#[derive(Debug)]
pub struct CorpusEntry {
    /// Path, workspace-relative.
    pub path: PathBuf,
    /// Searchable text (file content, or empty for name-only entries).
    pub text: String,
}

/// Variant names of `enum {enum_name}` in `catalog_src`, with the 1-based
/// line each is defined on.
pub fn enum_variants(catalog_src: &str, enum_name: &str) -> Vec<(String, usize)> {
    let stripped = strip(catalog_src);
    let code = &stripped.code;
    let toks = tokenize(code);
    let mut variants = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].ident && toks[i].text(code) == "enum") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.text(code) != enum_name {
            continue;
        }
        // Walk to the opening brace, then take depth-1 idents that start a
        // variant (first token after `{` or a depth-1 `,`).
        let mut j = i + 2;
        while j < toks.len() && toks[j].text(code) != "{" {
            j += 1;
        }
        let mut depth = 0i32;
        let mut expect_variant = false;
        while j < toks.len() {
            match toks[j].text(code) {
                "{" | "(" => {
                    if depth == 0 {
                        expect_variant = true;
                    }
                    depth += 1;
                }
                "}" | ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return variants;
                    }
                }
                "," if depth == 1 => expect_variant = true,
                t if toks[j].ident && depth == 1 && expect_variant => {
                    if t.as_bytes()[0].is_ascii_uppercase() {
                        variants.push((t.to_string(), line_of(code, toks[j].start)));
                    }
                    expect_variant = false;
                }
                _ => {
                    if depth == 1 {
                        expect_variant = false;
                    }
                }
            }
            j += 1;
        }
        break;
    }
    variants
}

/// `CamelCase` → `kebab-case` / `snake_case` spellings.
fn spellings(variant: &str) -> [String; 3] {
    let mut kebab = String::new();
    for (i, c) in variant.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                kebab.push('-');
            }
            kebab.push(c.to_ascii_lowercase());
        } else {
            kebab.push(c);
        }
    }
    let snake = kebab.replace('-', "_");
    [variant.to_string(), kebab, snake]
}

fn mentions(text: &str, needle: &str) -> bool {
    text.match_indices(needle)
        .any(|(pos, _)| delimited(text, pos, needle))
}

/// Reports every variant of `enum {enum_name}` (defined in `catalog_path`
/// / `catalog_src`) that no corpus entry mentions under any spelling.
pub fn check_invariant_coverage(
    catalog_path: &Path,
    catalog_src: &str,
    enum_name: &str,
    corpus: &[CorpusEntry],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (variant, line) in enum_variants(catalog_src, enum_name) {
        let names = spellings(&variant);
        let covered = corpus.iter().any(|e| {
            let in_path = e
                .path
                .to_str()
                .is_some_and(|p| names.iter().any(|n| p.contains(n.as_str())));
            in_path || names.iter().any(|n| mentions(&e.text, n))
        });
        if !covered {
            findings.push(Finding {
                file: catalog_path.to_path_buf(),
                line,
                rule: COVERAGE_RULE.into(),
                message: format!(
                    "invariant `{variant}` ({}) has no test or fixture exercising it",
                    names[1]
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    const CATALOG: &str = r#"
/// Catalog.
pub enum Invariant {
    /// Clock goes forward.
    MonotoneClock,
    /// Order is causal.
    CausalOrder,
}
"#;

    fn entry(path: &str, text: &str) -> CorpusEntry {
        CorpusEntry {
            path: PathBuf::from(path),
            text: text.into(),
        }
    }

    #[test]
    fn variants_are_extracted_with_lines() {
        let v = enum_variants(CATALOG, "Invariant");
        let names: Vec<&str> = v.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["MonotoneClock", "CausalOrder"]);
    }

    #[test]
    fn any_spelling_or_fixture_filename_counts_as_coverage() {
        let corpus = [
            entry(
                "tests/clock.rs",
                "assert!(msg.contains(\"monotone-clock\"))",
            ),
            entry("tests/fixtures/causal_order_bad.json", ""),
        ];
        let f = check_invariant_coverage(Path::new("report.rs"), CATALOG, "Invariant", &corpus);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn uncovered_variant_is_reported_at_its_definition() {
        let corpus = [entry("tests/clock.rs", "uses Invariant::MonotoneClock")];
        let f = check_invariant_coverage(Path::new("report.rs"), CATALOG, "Invariant", &corpus);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("CausalOrder"), "{f:?}");
        assert!(f[0].message.contains("causal-order"), "{f:?}");
    }

    #[test]
    fn substring_spellings_do_not_count() {
        // `MonotoneClockX` is a different identifier.
        let corpus = [entry("tests/t.rs", "MonotoneClockXyz")];
        let f = check_invariant_coverage(Path::new("report.rs"), CATALOG, "Invariant", &corpus);
        assert!(
            f.iter().any(|x| x.message.contains("MonotoneClock")),
            "{f:?}"
        );
    }
}
