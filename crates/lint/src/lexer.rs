//! Source preparation shared by every pass: comment/string/test stripping
//! (offset- and line-preserving), allow-marker collection, a minimal token
//! stream for the item/call-graph extractor, and string-literal extraction
//! for the schema-drift pass.
//!
//! [`strip`] produces two parallel views of a file, byte-for-byte aligned
//! with the original source:
//!
//! * `code` — comments, string/char literals and `#[cfg(test)]`/`#[test]`
//!   items blanked. The view the pattern rules and the call-graph walk.
//! * `text` — comments and test items blanked, **string literals kept**.
//!   The view the schema-drift pass reads JSON member names from.
//!
//! Allow markers are collected from *comment text only*: a comment whose
//! content starts with `p3-lint:` (after doc-comment `/`/`!`/`*` dressing)
//! is a marker; the same words inside a string literal or mid-sentence in
//! prose are not. This is what scopes a marker to its own and the next
//! line — an `allow(...)` spelled in a doc example or a test string can no
//! longer silence a real finding nearby.

use std::collections::BTreeMap;

/// Source text with comments, strings and test items blanked out
/// (structure and line numbers preserved), plus the allow markers found in
/// the comments.
#[derive(Debug)]
pub struct Stripped {
    /// The blanked source: comments, string/char literals and test items
    /// replaced by spaces (newlines kept).
    pub code: String,
    /// Like `code`, but string and char literals are kept verbatim.
    pub text: String,
    /// line (1-based) → allowed rule name, from `p3-lint: allow(rule): reason`.
    pub allows: BTreeMap<usize, String>,
    /// Markers missing the required justification text.
    pub bad_markers: Vec<usize>,
    /// Byte spans of blanked `#[cfg(test)]`/`#[test]` items (in both views).
    pub test_spans: Vec<(usize, usize)>,
}

impl Stripped {
    /// True when `line` is covered by an `allow(rule)` marker. A marker
    /// covers its own line and the following line — nothing else.
    pub fn allowed(&self, line: usize, rule: &str) -> bool {
        [line, line.saturating_sub(1)]
            .iter()
            .any(|l| self.allows.get(l).is_some_and(|r| r == rule))
    }
}

/// Strips comments, string/char literals and `#[cfg(test)]`/`#[test]`
/// items from Rust source, preserving line structure so findings carry
/// real line numbers. Allow markers are collected from comment text as it
/// is blanked — only a comment whose content *starts* with `p3-lint:`
/// counts, so the marker syntax quoted in prose or a string literal is
/// inert.
pub fn strip(source: &str) -> Stripped {
    let mut allows = BTreeMap::new();
    let mut bad_markers = Vec::new();
    let mut comments: Vec<(usize, String)> = Vec::new();

    let b = source.as_bytes();
    let mut code = Vec::with_capacity(b.len());
    let mut text = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                let mut body = Vec::new();
                while i < b.len() && b[i] != b'\n' {
                    body.push(b[i]);
                    code.push(b' ');
                    text.push(b' ');
                    i += 1;
                }
                comments.push((start, String::from_utf8_lossy(&body).into_owned()));
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let mut body = Vec::new();
                let mut depth = 1;
                body.extend_from_slice(b"/*");
                code.extend_from_slice(b"  ");
                text.extend_from_slice(b"  ");
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        body.extend_from_slice(b"/*");
                        code.extend_from_slice(b"  ");
                        text.extend_from_slice(b"  ");
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        body.extend_from_slice(b"*/");
                        code.extend_from_slice(b"  ");
                        text.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        body.push(b[i]);
                        let blank = if b[i] == b'\n' { b'\n' } else { b' ' };
                        code.push(blank);
                        text.push(blank);
                        i += 1;
                    }
                }
                comments.push((start, String::from_utf8_lossy(&body).into_owned()));
            }
            b'"' => {
                code.push(b' ');
                text.push(b'"');
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        code.extend_from_slice(b"  ");
                        text.push(b[i]);
                        text.push(b[i + 1]);
                        i += 2;
                    } else if b[i] == b'"' {
                        code.push(b' ');
                        text.push(b'"');
                        i += 1;
                        break;
                    } else {
                        code.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        text.push(b[i]);
                        i += 1;
                    }
                }
            }
            b'r' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                // Raw string: r"..." or r#"..."# with any number of #s.
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    code.extend(std::iter::repeat_n(b' ', j - i + 1));
                    text.extend_from_slice(&b[i..=j]);
                    i = j + 1;
                    'raw: while i < b.len() {
                        if b[i] == b'"' {
                            let mut k = i + 1;
                            let mut h = 0;
                            while k < b.len() && b[k] == b'#' && h < hashes {
                                h += 1;
                                k += 1;
                            }
                            if h == hashes {
                                code.extend(std::iter::repeat_n(b' ', k - i));
                                text.extend_from_slice(&b[i..k]);
                                i = k;
                                break 'raw;
                            }
                        }
                        code.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        text.push(b[i]);
                        i += 1;
                    }
                } else {
                    code.push(b'r');
                    text.push(b'r');
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal or lifetime. 'x' / '\n' are literals; 'a
                // followed by an identifier continuation is a lifetime.
                if i + 2 < b.len() && b[i + 1] == b'\\' {
                    code.extend_from_slice(b"   ");
                    text.extend_from_slice(&b[i..i + 3]);
                    i += 3;
                    while i < b.len() && b[i] != b'\'' {
                        code.push(b' ');
                        text.push(b[i]);
                        i += 1;
                    }
                    if i < b.len() {
                        code.push(b' ');
                        text.push(b'\'');
                        i += 1;
                    }
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    code.extend_from_slice(b"   ");
                    text.extend_from_slice(&b[i..i + 3]);
                    i += 3;
                } else {
                    code.push(b'\'');
                    text.push(b'\'');
                    i += 1;
                }
            }
            c => {
                code.push(c);
                text.push(c);
                i += 1;
            }
        }
    }

    for (pos, body) in comments {
        let base_line = line_of_source(source, pos);
        for (k, raw_line) in body.lines().enumerate() {
            let content = raw_line
                .trim_start()
                .trim_start_matches(['/', '!', '*'])
                .trim_start();
            let Some(marker) = content.strip_prefix("p3-lint:") else {
                continue;
            };
            let line = base_line + k;
            let marker = marker.trim();
            if let Some(rest) = marker.strip_prefix("allow(") {
                if let Some(close) = rest.find(')') {
                    let rule = rest[..close].trim().to_string();
                    let reason = rest[close + 1..].trim_start_matches(':').trim();
                    if reason.is_empty() {
                        bad_markers.push(line);
                    } else {
                        allows.insert(line, rule);
                    }
                } else {
                    bad_markers.push(line);
                }
            } else {
                bad_markers.push(line);
            }
        }
    }
    bad_markers.sort_unstable();
    bad_markers.dedup();

    let mut code = String::from_utf8(code).unwrap_or_default();
    let mut text = String::from_utf8(text).unwrap_or_default();
    let test_spans = test_item_spans(&code);
    blank_spans(&mut code, &test_spans);
    blank_spans(&mut text, &test_spans);
    Stripped {
        code,
        text,
        allows,
        bad_markers,
        test_spans,
    }
}

/// Byte spans of every item annotated `#[cfg(test)]` or `#[test]`
/// (attribute through the end of its balanced-brace body).
fn test_item_spans(code: &str) -> Vec<(usize, usize)> {
    let mut spans: Vec<(usize, usize)> = Vec::new();
    for (pos, _) in code.match_indices("#[cfg(test)]") {
        spans.push(item_span(code, pos));
    }
    for (pos, _) in code.match_indices("#[test]") {
        spans.push(item_span(code, pos));
    }
    spans.sort_unstable();
    spans
}

/// Blanks each span (keeping newlines), in place.
fn blank_spans(s: &mut String, spans: &[(usize, usize)]) {
    let mut bytes: Vec<u8> = s.bytes().collect();
    for &(a, z) in spans {
        let z = z.min(bytes.len());
        for c in bytes[a..z].iter_mut() {
            if *c != b'\n' {
                *c = b' ';
            }
        }
    }
    *s = String::from_utf8(bytes).unwrap_or_default();
}

/// Extent of the item starting at an attribute: from the attribute to the
/// closing brace of the first balanced `{}` block after it (or the next
/// `;` for brace-less items).
fn item_span(code: &str, start: usize) -> (usize, usize) {
    let b = code.as_bytes();
    let mut i = start;
    let mut depth = 0usize;
    let mut seen_brace = false;
    while i < b.len() {
        match b[i] {
            b'{' => {
                depth += 1;
                seen_brace = true;
            }
            b'}' => {
                depth = depth.saturating_sub(1);
                if seen_brace && depth == 0 {
                    return (start, i + 1);
                }
            }
            b';' if !seen_brace => return (start, i + 1),
            _ => {}
        }
        i += 1;
    }
    (start, b.len())
}

/// End (exclusive) of the balanced `{}` block opening at `open` (which
/// must point at a `{`). Returns the source end when unbalanced.
pub fn brace_span_end(code: &str, open: usize) -> usize {
    let b = code.as_bytes();
    let mut depth = 0usize;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            b'{' => depth += 1,
            b'}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    b.len()
}

pub(crate) fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// True if `pat` occurs at `pos` in `code` delimited by non-identifier
/// characters (so `HashMap` does not match `MyHashMapLike`).
pub fn delimited(code: &str, pos: usize, pat: &str) -> bool {
    let b = code.as_bytes();
    let before_ok = pos == 0 || !is_ident(b[pos - 1]);
    let end = pos + pat.len();
    let after_ok = end >= b.len() || !is_ident(b[end]);
    before_ok && after_ok
}

/// 1-based line number of byte offset `pos`.
pub fn line_of(code: &str, pos: usize) -> usize {
    code[..pos.min(code.len())]
        .bytes()
        .filter(|&c| c == b'\n')
        .count()
        + 1
}

fn line_of_source(source: &str, pos: usize) -> usize {
    line_of(source, pos)
}

/// One token of the blanked code view: an identifier-like run (identifier,
/// keyword or number) or a single punctuation byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// True for identifier/keyword tokens (first char alphabetic or `_`).
    pub ident: bool,
}

impl Token {
    /// The token's text within `code`.
    pub fn text<'a>(&self, code: &'a str) -> &'a str {
        &code[self.start..self.end]
    }
}

/// Tokenizes a blanked code view into identifier runs and punctuation
/// bytes. Whitespace is skipped; strings and comments are assumed blanked.
pub fn tokenize(code: &str) -> Vec<Token> {
    let b = code.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c.is_ascii_whitespace() {
            i += 1;
        } else if is_ident(c) {
            let start = i;
            while i < b.len() && is_ident(b[i]) {
                i += 1;
            }
            toks.push(Token {
                start,
                end: i,
                ident: c.is_ascii_alphabetic() || c == b'_',
            });
        } else {
            toks.push(Token {
                start: i,
                end: i + 1,
                ident: false,
            });
            i += 1;
        }
    }
    toks
}

/// Extracts every string literal from a `text` view (comments and tests
/// already blanked, strings kept). Returns `(byte offset, content)` pairs
/// where content is the source text between the quotes, escapes
/// *unprocessed* (the schema pass matches on source-escaped bytes).
pub fn string_literals(text: &str) -> Vec<(usize, String)> {
    let b = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'"' => {
                let start = i;
                i += 1;
                let content_start = i;
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        i += 2;
                    } else if b[i] == b'"' {
                        break;
                    } else {
                        i += 1;
                    }
                }
                out.push((
                    start,
                    String::from_utf8_lossy(&b[content_start..i.min(b.len())]).into_owned(),
                ));
                i += 1;
            }
            b'r' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    let start = i;
                    let content_start = j + 1;
                    i = j + 1;
                    let mut content_end = b.len();
                    while i < b.len() {
                        if b[i] == b'"' {
                            let mut k = i + 1;
                            let mut h = 0;
                            while k < b.len() && b[k] == b'#' && h < hashes {
                                h += 1;
                                k += 1;
                            }
                            if h == hashes {
                                content_end = i;
                                i = k;
                                break;
                            }
                        }
                        i += 1;
                    }
                    out.push((
                        start,
                        String::from_utf8_lossy(&b[content_start..content_end]).into_owned(),
                    ));
                } else {
                    i += 1;
                }
            }
            b'\'' => {
                // Skip char literals so a '"' char does not open a string.
                if i + 2 < b.len() && b[i + 1] == b'\\' {
                    i += 3;
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    i += 3;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_only_from_comment_start() {
        // A real marker is collected …
        let s = strip("// p3-lint: allow(unordered): key order never observed\nlet x = 1;\n");
        assert_eq!(s.allows.get(&1).map(String::as_str), Some("unordered"));
        // … prose *mentioning* the syntax is not …
        let s = strip("//! justify with `// p3-lint: allow(unordered): why`.\n");
        assert!(s.allows.is_empty(), "{:?}", s.allows);
        assert!(s.bad_markers.is_empty(), "{:?}", s.bad_markers);
        // … and neither is the marker text inside a string literal.
        let s = strip("let m = \"p3-lint: allow(unordered): nope\";\n");
        assert!(s.allows.is_empty(), "{:?}", s.allows);
    }

    #[test]
    fn trailing_and_doc_comment_markers_still_work() {
        let s = strip("let t = now(); // p3-lint: allow(wall-clock): test shim\n");
        assert_eq!(s.allows.get(&1).map(String::as_str), Some("wall-clock"));
        let s = strip("/// p3-lint: allow(file-length): split tracked in #12\nfn f() {}\n");
        assert_eq!(s.allows.get(&1).map(String::as_str), Some("file-length"));
    }

    #[test]
    fn block_comment_marker_lines_are_attributed() {
        let s = strip("/* intro\n * p3-lint: allow(unordered): fixed order\n */\nlet x = 1;\n");
        assert_eq!(s.allows.get(&2).map(String::as_str), Some("unordered"));
    }

    #[test]
    fn views_stay_aligned_and_strings_survive_in_text() {
        let src = "fn f() { let s = \"Hash\\\"Map\"; } // note\n";
        let s = strip(src);
        assert_eq!(s.code.len(), src.len());
        assert_eq!(s.text.len(), src.len());
        assert!(!s.code.contains("Hash"));
        assert!(s.text.contains("Hash\\\"Map"));
        assert!(!s.text.contains("note"));
    }

    #[test]
    fn string_literals_extracts_plain_raw_and_skips_char_quote() {
        let text = "let a = \"alpha\"; let q = '\"'; let r = r#\"raw \"stuff\"\"#;";
        let lits: Vec<String> = string_literals(text).into_iter().map(|(_, s)| s).collect();
        assert_eq!(lits, vec!["alpha".to_string(), "raw \"stuff\"".to_string()]);
    }

    #[test]
    fn tokenize_positions_and_idents() {
        let toks = tokenize("fn f2(x: u32) {}");
        let names: Vec<&str> = toks.iter().map(|t| t.text("fn f2(x: u32) {}")).collect();
        assert_eq!(names, vec!["fn", "f2", "(", "x", ":", "u32", ")", "{", "}"]);
        assert!(toks[0].ident && toks[1].ident && !toks[2].ident);
    }
}
