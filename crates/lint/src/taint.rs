//! Determinism taint propagation over the call graph.
//!
//! The token rules catch a banned API *written where it is used*. What
//! they cannot see is indirection: a helper that wraps `Instant::now`, a
//! `pub use rand::thread_rng as …` re-export, an `env::var` read behind a
//! config shim — especially when the helper lives in a crate that
//! legitimately exempts the rule (`p3-prof` reads the wall clock by
//! design) and the *caller* is an engine crate that must stay pure.
//!
//! This pass closes that gap: impurity is seeded wherever a banned API is
//! reachable (body tokens, alias-expanded external calls), propagated
//! along call edges to every transitive caller, and reported **at the
//! frontier only** — the call site where a clean sim-crate function first
//! reaches into a tainted chain it cannot see locally (an exempt crate's
//! helper, or an alias the token scanner misses). Interior links of a
//! chain stay silent because their origin is already reported once, in
//! the crate that owns it.
//!
//! Escape hatches are deliberate and centralized: a function that is
//! *reviewed* to not leak its impurity into simulated state (e.g.
//! `SimProfiler::new` — the profiled-vs-unprofiled bit-identity test pins
//! it) is named in the `[taint-sanitizer]` section of `p3-lint.toml` with
//! a mandatory reason, and carries no taint.

use crate::callgraph::{CallGraph, Callee, SourceFile};
use crate::lexer::{delimited, line_of};
use crate::{float_accum_sites, CrateAllow, Finding, FLOAT_ACCUM_RULE, RULES};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// The taint rules: `(taint rule name, base token rule it extends)`.
pub const TAINT_RULES: [(&str, &str); 5] = [
    ("taint-unordered", "unordered"),
    ("taint-wall-clock", "wall-clock"),
    ("taint-ambient-rng", "ambient-rng"),
    ("taint-ambient-env", "ambient-env"),
    ("taint-float-order", FLOAT_ACCUM_RULE),
];

/// Taint rule name for a base-rule kind.
pub fn taint_rule_of(kind: &str) -> &'static str {
    TAINT_RULES
        .iter()
        .find(|(_, base)| *base == kind)
        .map(|(t, _)| *t)
        .unwrap_or("taint-unknown")
}

fn why_of(kind: &str) -> &'static str {
    if kind == FLOAT_ACCUM_RULE {
        return "rounding order depends on iteration order";
    }
    RULES
        .iter()
        .find(|r| r.name == kind)
        .map(|r| r.why)
        .unwrap_or("banned nondeterministic API")
}

fn kind_patterns(kind: &str) -> &'static [&'static str] {
    RULES
        .iter()
        .find(|r| r.name == kind)
        .map(|r| r.patterns)
        .unwrap_or(&[])
}

/// Classifies an alias-expanded external path as a banned source.
fn external_kind(path: &str) -> Option<&'static str> {
    if path.ends_with("Instant::now") || path.ends_with("SystemTime::now") {
        return Some("wall-clock");
    }
    if path.ends_with("thread_rng") || path.ends_with("rand::random") {
        return Some("ambient-rng");
    }
    if path.ends_with("env::var") || path.ends_with("env::vars") || path.ends_with("env::var_os") {
        return Some("ambient-env");
    }
    None
}

/// Configuration for [`analyze`].
#[derive(Debug)]
pub struct TaintConfig<'a> {
    /// Crates whose functions are reported on.
    pub sim_crates: &'a [String],
    /// Crate-scoped rule exemptions (exempt crates still *carry* taint).
    pub crate_allow: &'a CrateAllow,
    /// Reviewed pure-in-effect functions (`crate::Type::fn` → reason):
    /// they carry no taint at all.
    pub sanitizers: &'a BTreeMap<String, String>,
}

/// Runs seeding, fixpoint propagation and frontier reporting. `files`
/// must be the same slice the graph was [built](crate::callgraph::build)
/// from.
pub fn analyze(graph: &CallGraph, files: &[SourceFile], cfg: &TaintConfig<'_>) -> Vec<Finding> {
    let file_of: BTreeMap<&Path, &SourceFile> =
        files.iter().map(|f| (f.path.as_path(), f)).collect();
    let sanitized: Vec<bool> = graph
        .nodes
        .iter()
        .map(|n| cfg.sanitizers.contains_key(&n.qualified))
        .collect();

    // ── Seed: banned tokens and float reductions inside each body. ──
    let mut taint: Vec<BTreeMap<&'static str, String>> = vec![BTreeMap::new(); graph.nodes.len()];
    for (id, node) in graph.nodes.iter().enumerate() {
        if sanitized[id] {
            continue;
        }
        let Some(sf) = file_of.get(node.file.as_path()) else {
            continue;
        };
        let code = &sf.stripped.code;
        let (a, z) = node.body;
        let body = &code[a..z];
        for rule in RULES {
            for pat in rule.patterns {
                for (pos, _) in body.match_indices(pat) {
                    if !delimited(code, a + pos, pat) {
                        continue;
                    }
                    let line = line_of(code, a + pos);
                    if sf.stripped.allowed(line, rule.name) {
                        continue;
                    }
                    taint[id]
                        .entry(rule.name)
                        .or_insert_with(|| format!("{}:{line} uses `{pat}`", node.file.display()));
                }
            }
        }
        for pos in float_accum_sites(&sf.stripped) {
            if pos < a || pos >= z {
                continue;
            }
            let line = line_of(code, pos);
            if sf.stripped.allowed(line, FLOAT_ACCUM_RULE) {
                continue;
            }
            taint[id].entry(FLOAT_ACCUM_RULE).or_insert_with(|| {
                format!(
                    "{}:{line} reduces floats over `.values()`",
                    node.file.display()
                )
            });
        }
    }

    // ── Seed: alias-expanded calls straight into banned externals. ──
    for call in &graph.calls {
        let f = call.caller;
        if sanitized[f] {
            continue;
        }
        let node = &graph.nodes[f];
        let Some(sf) = file_of.get(node.file.as_path()) else {
            continue;
        };
        for t in &call.targets {
            let Callee::External(path) = t else { continue };
            let Some(kind) = external_kind(path) else {
                continue;
            };
            if sf.stripped.allowed(call.line, kind)
                || sf.stripped.allowed(call.line, taint_rule_of(kind))
            {
                continue;
            }
            taint[f].entry(kind).or_insert_with(|| {
                format!(
                    "{}:{} calls `{}` = `{path}`",
                    node.file.display(),
                    call.line,
                    call.raw
                )
            });
        }
    }

    // ── Fixpoint: taint flows from callee to caller, except through
    //    sanitized functions. ──
    loop {
        let mut updates: Vec<(usize, &'static str, String)> = Vec::new();
        for call in &graph.calls {
            let f = call.caller;
            if sanitized[f] {
                continue;
            }
            for t in &call.targets {
                let Callee::Node(g) = *t else { continue };
                if sanitized[g] {
                    continue;
                }
                for (kind, origin) in &taint[g] {
                    if !taint[f].contains_key(kind) {
                        updates.push((f, kind, origin.clone()));
                    }
                }
            }
        }
        let mut changed = false;
        for (f, kind, origin) in updates {
            if let std::collections::btree_map::Entry::Vacant(e) = taint[f].entry(kind) {
                e.insert(origin);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // ── Report at the frontier. ──
    let mut findings = Vec::new();
    let mut seen: BTreeSet<(String, usize, &'static str)> = BTreeSet::new();
    for call in &graph.calls {
        let f = &graph.nodes[call.caller];
        if !cfg.sim_crates.contains(&f.krate) {
            continue;
        }
        let Some(sf) = file_of.get(f.file.as_path()) else {
            continue;
        };
        let exempt_here = |kind: &str| {
            cfg.crate_allow.allows(&f.krate, kind)
                || cfg.crate_allow.allows(&f.krate, taint_rule_of(kind))
        };
        let marked = |kind: &str| {
            sf.stripped.allowed(call.line, kind)
                || sf.stripped.allowed(call.line, taint_rule_of(kind))
        };
        for t in &call.targets {
            match t {
                Callee::External(path) => {
                    let Some(kind) = external_kind(path) else {
                        continue;
                    };
                    // The token scanner already reports calls written with
                    // a banned pattern in plain sight; taint reports only
                    // what it alone can see (aliases, re-exports).
                    if kind_patterns(kind).iter().any(|pat| call.raw.contains(pat)) {
                        continue;
                    }
                    if exempt_here(kind) || marked(kind) {
                        continue;
                    }
                    if seen.insert((f.file.display().to_string(), call.line, taint_rule_of(kind))) {
                        findings.push(Finding {
                            file: f.file.clone(),
                            line: call.line,
                            rule: taint_rule_of(kind).into(),
                            message: format!(
                                "`{}` resolves to `{path}`: {}",
                                call.raw,
                                why_of(kind)
                            ),
                        });
                    }
                }
                Callee::Node(gi) => {
                    if sanitized[*gi] {
                        continue;
                    }
                    let g = &graph.nodes[*gi];
                    for (kind, origin) in &taint[*gi] {
                        // Frontier rule: report only where the chain
                        // crosses into code the rules cannot reach — a
                        // crate that exempts this kind (or sits outside
                        // the sim set). Inside a non-exempt sim crate the
                        // origin is already reported where it is written.
                        let callee_exempt = cfg.crate_allow.allows(&g.krate, kind)
                            || cfg.crate_allow.allows(&g.krate, taint_rule_of(kind))
                            || !cfg.sim_crates.contains(&g.krate);
                        if !callee_exempt || exempt_here(kind) || marked(kind) {
                            continue;
                        }
                        if seen.insert((
                            f.file.display().to_string(),
                            call.line,
                            taint_rule_of(kind),
                        )) {
                            findings.push(Finding {
                                file: f.file.clone(),
                                line: call.line,
                                rule: taint_rule_of(kind).into(),
                                message: format!(
                                    "call into `{}` carries {kind} taint ({origin}): {}",
                                    g.qualified,
                                    why_of(kind)
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    findings
}
