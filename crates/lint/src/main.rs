//! The `p3-lint` binary: lint the workspace, print the report, exit
//! non-zero on any violation. Run from the workspace root (CI does), or
//! pass the root as an argument.
//!
//! Flags:
//!
//! * `--json` — emit the findings report as deterministic JSON instead of
//!   the human-readable summary (CI byte-compares two runs).
//! * `--baseline` — print a fresh `[findings-baseline]` section matching
//!   the current findings, for pasting into `p3-lint.toml` when ratcheting.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut baseline = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--baseline" => baseline = true,
            flag if flag.starts_with('-') => {
                eprintln!("p3-lint: unknown flag `{flag}` (expected --json or --baseline)");
                return ExitCode::FAILURE;
            }
            path => root = PathBuf::from(path),
        }
    }
    match p3_lint::lint_workspace(&root) {
        Ok(report) => {
            if baseline {
                println!("[findings-baseline]");
                for (rule, n) in &report.counts {
                    println!("\"{rule}\" = {n}");
                }
            } else if json {
                print!("{}", p3_lint::report::report_json(&report));
            } else {
                print!("{report}");
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(why) => {
            eprintln!("p3-lint: {why}");
            ExitCode::FAILURE
        }
    }
}
