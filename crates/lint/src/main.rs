//! The `p3-lint` binary: lint the workspace, print the report, exit
//! non-zero on any violation. Run from the workspace root (CI does), or
//! pass the root as the single argument.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    match p3_lint::lint_workspace(&root) {
        Ok(report) => {
            print!("{report}");
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(why) => {
            eprintln!("p3-lint: {why}");
            ExitCode::FAILURE
        }
    }
}
