//! Schema-drift lint: statically cross-checks the repo's versioned wire
//! formats against their parsers.
//!
//! Every serialized artifact in the workspace is hand-rolled (the policy
//! is offline and dependency-free), which means a writer can grow a field
//! or bump a version without the compiler noticing that no reader accepts
//! it. This pass extracts, per format:
//!
//! * **JSON reports** (`p3-profile`, `p3-bench`, `p3-tune`) — the member
//!   names a writer emits (`\"name\":` escapes inside its string
//!   literals) vs the accept-set of its reader (string arguments of the
//!   `get`/`get_u64`/… helpers, plus `format`/`version` implied by
//!   `parse_checked`), and that the reader validates the format's version
//!   constant.
//! * **Trace export** — the two-letter row tags the writer emits vs the
//!   match arms of `decode_row`, and that the importer validates the
//!   `p3TraceVersion` stamp the exporter writes.
//! * **Snapshot codec** — `SNAP_MAGIC`/`SNAP_VERSION` referenced on both
//!   the write and the verify path, and every `fn encode_X` paired with a
//!   `fn decode_X` (decode-only helpers are fine).
//!
//! All extraction runs on the stripped views, so tests and doc examples
//! cannot satisfy (or trip) a check.

use crate::lexer::{brace_span_end, delimited, line_of, string_literals, tokenize, Stripped};
use crate::Finding;
use std::collections::BTreeMap;
use std::path::Path;

/// Rule name for every schema-drift finding.
pub const SCHEMA_RULE: &str = "schema-drift";

fn finding(path: &Path, line: usize, message: String) -> Finding {
    Finding {
        file: path.to_path_buf(),
        line,
        rule: SCHEMA_RULE.into(),
        message,
    }
}

/// JSON member names a writer emits: `\"name\":` escapes inside non-test
/// string literals, mapped to the literal's line.
fn writer_members(stripped: &Stripped) -> BTreeMap<String, usize> {
    let mut members = BTreeMap::new();
    for (pos, lit) in string_literals(&stripped.text) {
        let b = lit.as_bytes();
        let mut i = 0;
        while i + 1 < b.len() {
            if b[i] == b'\\' && b[i + 1] == b'"' {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                if j > start
                    && j + 2 < b.len()
                    && b[j] == b'\\'
                    && b[j + 1] == b'"'
                    && b[j + 2] == b':'
                {
                    members
                        .entry(String::from_utf8_lossy(&b[start..j]).into_owned())
                        .or_insert_with(|| line_of(&stripped.text, pos));
                    i = j + 3;
                    continue;
                }
            }
            i += 1;
        }
    }
    members
}

const GETTERS: [&str; 6] = [
    "get",
    "get_u64",
    "get_f64",
    "get_str",
    "get_array",
    "get_bool",
];

/// JSON member names a reader accepts: pure-identifier string arguments of
/// the `get` helper family, plus `format`/`version` when `parse_checked`
/// is called.
fn reader_members(stripped: &Stripped) -> BTreeMap<String, usize> {
    let text = &stripped.text;
    let b = text.as_bytes();
    let mut members = BTreeMap::new();
    for getter in GETTERS {
        for (pos, _) in text.match_indices(getter) {
            if !delimited(text, pos, getter) {
                continue;
            }
            let mut i = pos + getter.len();
            while i < b.len() && b[i].is_ascii_whitespace() {
                i += 1;
            }
            if i >= b.len() || b[i] != b'(' {
                continue;
            }
            // Scan the argument span for its first string literal.
            let mut depth = 0i32;
            let limit = (i + 300).min(b.len());
            while i < limit {
                match b[i] {
                    b'(' => depth += 1,
                    b')' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    b'"' => {
                        let start = i + 1;
                        let mut j = start;
                        while j < b.len() && b[j] != b'"' {
                            if b[j] == b'\\' {
                                j += 1;
                            }
                            j += 1;
                        }
                        let name = &text[start..j.min(text.len())];
                        if !name.is_empty()
                            && name.bytes().all(|c| c.is_ascii_alphanumeric() || c == b'_')
                        {
                            members
                                .entry(name.to_string())
                                .or_insert_with(|| line_of(text, pos));
                        }
                        break;
                    }
                    _ => {}
                }
                i += 1;
            }
        }
    }
    for (pos, _) in text.match_indices("parse_checked") {
        if delimited(text, pos, "parse_checked") {
            let line = line_of(text, pos);
            members.entry("format".into()).or_insert(line);
            members.entry("version".into()).or_insert(line);
        }
    }
    members
}

/// Cross-checks one single-file JSON format (writer and reader live in the
/// same module, as all three report formats do).
pub fn check_json_format(path: &Path, stripped: &Stripped, version_const: &str) -> Vec<Finding> {
    let writers = writer_members(stripped);
    let readers = reader_members(stripped);
    let mut findings = Vec::new();
    for (m, &line) in &writers {
        if !readers.contains_key(m) {
            findings.push(finding(
                path,
                line,
                format!("writer emits member `\"{m}\"` that no reader accepts"),
            ));
        }
    }
    for (m, &line) in &readers {
        if !writers.contains_key(m) {
            findings.push(finding(
                path,
                line,
                format!("reader requires member `\"{m}\"` the writer never emits"),
            ));
        }
    }
    // The reader must pin the version constant, not a literal.
    let text = &stripped.text;
    let validated = text.match_indices("parse_checked").any(|(pos, _)| {
        let window = &text[pos..(pos + 200).min(text.len())];
        window.contains(version_const)
    });
    if !validated {
        findings.push(finding(
            path,
            1,
            format!("no `parse_checked(…, {version_const})` call: the reader does not validate the format version"),
        ));
    }
    findings
}

/// Two-letter row tags emitted by the trace writer: `,\"xx\",` escapes in
/// non-test string literals.
fn trace_writer_tags(stripped: &Stripped) -> BTreeMap<String, usize> {
    let mut tags = BTreeMap::new();
    for (pos, lit) in string_literals(&stripped.text) {
        let b = lit.as_bytes();
        for i in 0..b.len().saturating_sub(7) {
            if b[i] == b','
                && b[i + 1] == b'\\'
                && b[i + 2] == b'"'
                && b[i + 3].is_ascii_lowercase()
                && b[i + 4].is_ascii_lowercase()
                && b[i + 5] == b'\\'
                && b[i + 6] == b'"'
                && b[i + 7] == b','
            {
                tags.entry(String::from_utf8_lossy(&b[i + 3..i + 5]).into_owned())
                    .or_insert_with(|| line_of(&stripped.text, pos));
            }
        }
    }
    tags
}

/// Byte span of `fn {name}`'s body in the code view, if present.
fn fn_body_span(stripped: &Stripped, name: &str) -> Option<(usize, usize)> {
    let code = &stripped.code;
    let toks = tokenize(code);
    for i in 0..toks.len().saturating_sub(1) {
        if toks[i].ident && toks[i].text(code) == "fn" && toks[i + 1].text(code) == name {
            let mut j = i + 2;
            let mut paren = 0i32;
            while j < toks.len() {
                match toks[j].text(code) {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "{" if paren == 0 => {
                        let open = toks[j].start;
                        return Some((open, brace_span_end(code, open)));
                    }
                    ";" if paren == 0 => return None,
                    _ => {}
                }
                j += 1;
            }
        }
    }
    None
}

/// Cross-checks the typed trace export: writer row tags vs `decode_row`'s
/// accept-set, and the `p3TraceVersion` stamp vs importer validation.
pub fn check_trace_export(path: &Path, stripped: &Stripped) -> Vec<Finding> {
    let mut findings = Vec::new();
    let writer_tags = trace_writer_tags(stripped);
    let reader_tags: BTreeMap<String, usize> = match fn_body_span(stripped, "decode_row") {
        Some((a, z)) => string_literals(&stripped.text[a..z])
            .into_iter()
            .filter(|(_, s)| s.len() == 2 && s.bytes().all(|c| c.is_ascii_lowercase()))
            .map(|(pos, s)| (s, line_of(&stripped.text, a + pos)))
            .collect(),
        None => {
            findings.push(finding(
                path,
                1,
                "no `fn decode_row` found: the trace import accept-set cannot be checked".into(),
            ));
            return findings;
        }
    };
    for (tag, &line) in &writer_tags {
        if !reader_tags.contains_key(tag) {
            findings.push(finding(
                path,
                line,
                format!("trace writer emits row tag \"{tag}\" that `decode_row` does not accept"),
            ));
        }
    }
    for (tag, &line) in &reader_tags {
        if !writer_tags.contains_key(tag) {
            findings.push(finding(
                path,
                line,
                format!("`decode_row` accepts row tag \"{tag}\" the writer never emits"),
            ));
        }
    }
    // Version stamp: the writer emits the escaped member; a reader must
    // look it up by (plain) name and compare it to the constant.
    let lits = string_literals(&stripped.text);
    let stamped = lits
        .iter()
        .any(|(_, s)| s.contains("\\\"p3TraceVersion\\\""));
    let validated = lits.iter().any(|(_, s)| s == "p3TraceVersion");
    if stamped && !validated {
        findings.push(finding(
            path,
            1,
            "the exporter stamps `p3TraceVersion` but the importer never validates it".into(),
        ));
    }
    findings
}

/// Requires each header constant (e.g. `SNAP_MAGIC`, `SNAP_VERSION`) to be
/// referenced at least twice outside its definition — once on the write
/// path and once on the verify path.
pub fn check_snap_header(path: &Path, stripped: &Stripped, consts: &[&str]) -> Vec<Finding> {
    let code = &stripped.code;
    let toks = tokenize(code);
    let mut findings = Vec::new();
    for c in consts {
        let mut uses = 0usize;
        let mut defined = false;
        for i in 0..toks.len() {
            if !toks[i].ident || toks[i].text(code) != *c {
                continue;
            }
            let is_def = i > 0 && toks[i - 1].ident && toks[i - 1].text(code) == "const";
            if is_def {
                defined = true;
            } else {
                uses += 1;
            }
        }
        if !defined {
            findings.push(finding(
                path,
                1,
                format!("header constant `{c}` is not defined here"),
            ));
        } else if uses < 2 {
            findings.push(finding(
                path,
                1,
                format!(
                    "header constant `{c}` is referenced by {uses} site(s); the writer and the \
                     reader must both check it"
                ),
            ));
        }
    }
    findings
}

fn fns_with_prefix(stripped: &Stripped, prefix: &str) -> BTreeMap<String, usize> {
    let code = &stripped.code;
    let toks = tokenize(code);
    let mut out = BTreeMap::new();
    for i in 0..toks.len().saturating_sub(1) {
        if toks[i].ident && toks[i].text(code) == "fn" && toks[i + 1].ident {
            let name = toks[i + 1].text(code);
            if name.starts_with(prefix) {
                out.entry(name.to_string())
                    .or_insert_with(|| line_of(code, toks[i].start));
            }
        }
    }
    out
}

/// Requires every `fn encode_X` in the encoder module to have a matching
/// `fn decode_X` in the decoder module. Decode-only helpers are fine.
pub fn check_codec_pairing(enc_path: &Path, enc: &Stripped, dec: &Stripped) -> Vec<Finding> {
    let encoders = fns_with_prefix(enc, "encode_");
    let decoders = fns_with_prefix(dec, "decode_");
    let mut findings = Vec::new();
    for (e, &line) in &encoders {
        let want = format!("decode_{}", &e["encode_".len()..]);
        if !decoders.contains_key(&want) {
            findings.push(finding(
                enc_path,
                line,
                format!("`fn {e}` has no matching `fn {want}`: snapshots written here cannot be read back"),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::strip;

    #[test]
    fn writer_reader_drift_is_reported_both_ways() {
        let src = r#"
fn to_json(v: u64) -> String { format!("{{\"alpha\": {v}, \"beta\": 2}}") }
fn from_json(root: &V) -> u64 { get_u64(root, "alpha").unwrap_or(0) + get_u64(root, "gamma").unwrap_or(0) }
"#;
        let f = check_json_format(Path::new("t.rs"), &strip(src), "FORMAT_VERSION");
        assert!(
            f.iter()
                .any(|x| x.message.contains("`\"beta\"`") && x.message.contains("writer")),
            "{f:?}"
        );
        assert!(
            f.iter()
                .any(|x| x.message.contains("`\"gamma\"`") && x.message.contains("reader")),
            "{f:?}"
        );
        assert!(
            f.iter().any(|x| x.message.contains("FORMAT_VERSION")),
            "{f:?}"
        );
    }

    #[test]
    fn matched_format_with_checked_version_is_clean() {
        let src = r#"
fn to_json(v: u64) -> String { format!("{{\"format\": \"x\", \"version\": 1, \"alpha\": {v}}}") }
fn from_json(text: &str) -> u64 {
    let root = parse_checked(text, FORMAT, FORMAT_VERSION).unwrap();
    get_u64(&root, "alpha").unwrap_or(0)
}
"#;
        let f = check_json_format(Path::new("t.rs"), &strip(src), "FORMAT_VERSION");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn trace_tag_drift_is_reported() {
        let src = r#"
fn encode(t: u64) -> String { format!("[{t},\"cs\",1]") }
fn encode2(t: u64) -> String { format!("[{t},\"zz\",1]") }
fn decode_row(tag: &str) -> u32 { match tag { "cs" => 1, "ws" => 2, _ => 0 } }
"#;
        let f = check_trace_export(Path::new("t.rs"), &strip(src));
        assert!(f.iter().any(|x| x.message.contains("\"zz\"")), "{f:?}");
        assert!(f.iter().any(|x| x.message.contains("\"ws\"")), "{f:?}");
        assert!(!f.iter().any(|x| x.message.contains("\"cs\"")), "{f:?}");
    }

    #[test]
    fn unvalidated_version_stamp_is_reported() {
        let src = r#"
fn export(out: &mut String) { out.push_str("\"p3TraceVersion\": 1"); }
fn decode_row(tag: &str) -> u32 { match tag { "cs" => 1, _ => 0 } }
fn encode(t: u64) -> String { format!("[{t},\"cs\",1]") }
"#;
        let f = check_trace_export(Path::new("t.rs"), &strip(src));
        assert!(
            f.iter().any(|x| x.message.contains("p3TraceVersion")),
            "{f:?}"
        );
    }

    #[test]
    fn snap_header_must_be_written_and_verified() {
        let good = r#"
const MAGIC: [u8; 4] = *b"SNAP";
fn write(out: &mut Vec<u8>) { out.extend_from_slice(&MAGIC); }
fn read(b: &[u8]) -> bool { b.starts_with(&MAGIC) }
"#;
        assert!(check_snap_header(Path::new("t.rs"), &strip(good), &["MAGIC"]).is_empty());
        let bad = r#"
const MAGIC: [u8; 4] = *b"SNAP";
fn write(out: &mut Vec<u8>) { out.extend_from_slice(&MAGIC); }
fn read(_b: &[u8]) -> bool { true }
"#;
        let f = check_snap_header(Path::new("t.rs"), &strip(bad), &["MAGIC"]);
        assert!(f.iter().any(|x| x.message.contains("MAGIC")), "{f:?}");
    }

    #[test]
    fn unpaired_encoder_is_reported() {
        let enc = strip("fn encode_ev(e: &E) {}\nfn encode_worker(w: &W) {}\n");
        let dec = strip("fn decode_ev() -> E { E }\nfn decode_u64s() {}\n");
        let f = check_codec_pairing(Path::new("enc.rs"), &enc, &dec);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("encode_worker"), "{f:?}");
    }
}
