//! Mutation-style negative tests: each `fixtures/bad_*.rs` file contains a
//! determinism hazard the lint claims to catch; if the scanner regresses,
//! these fail. `allowed_ok.rs` proves justified markers and test-only code
//! are exempt, and the workspace self-lint pins the repo itself clean.
//!
//! `fixtures/ws/` is a two-crate mini-workspace whose hazards are all
//! *indirect* (cross-crate wrappers, re-exported aliases): the token
//! scanner provably misses every one of them, and the taint pass catches
//! every one. `fixtures/ws_budget/` trips the unwrap, panic and index
//! ratchets. A final self-consistency test iterates the complete rule
//! catalog and demands a tripping fixture for each rule.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use p3_lint::{
    coverage, lint_source, lint_source_for_crate, lint_workspace, lint_workspace_with, report,
    schema, taint, CrateAllow, Finding, WorkspaceOptions, FILE_LENGTH_RULE, FLOAT_ACCUM_RULE,
    MAX_FILE_LINES, RULES,
};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn ws_options(crates: &[&str]) -> WorkspaceOptions {
    WorkspaceOptions {
        sim_crates: crates.iter().map(|s| s.to_string()).collect(),
        budget_crates: crates.iter().map(|s| s.to_string()).collect(),
        repo_checks: false,
    }
}

fn lint_fixture(name: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let source =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    lint_source(&path, &source)
}

fn rules(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule.as_str()).collect()
}

#[test]
fn hashmap_fixture_trips_unordered() {
    let f = lint_fixture("bad_hashmap.rs");
    assert!(!f.is_empty());
    assert!(
        rules(&f).iter().all(|r| *r == "unordered"),
        "unexpected rules: {f:?}"
    );
    // Both the HashMap and the HashSet lines are reported.
    let lines: Vec<usize> = f.iter().map(|x| x.line).collect();
    assert!(lines.contains(&2) && lines.contains(&3), "{lines:?}");
}

#[test]
fn instant_fixture_trips_wall_clock() {
    let f = lint_fixture("bad_instant.rs");
    assert!(rules(&f).contains(&"wall-clock"), "{f:?}");
    assert!(
        f.iter()
            .any(|x| x.rule == "wall-clock" && x.message.contains("Instant::now")),
        "{f:?}"
    );
    assert!(
        f.iter()
            .any(|x| x.rule == "wall-clock" && x.message.contains("SystemTime")),
        "{f:?}"
    );
}

#[test]
fn thread_rng_fixture_trips_ambient_rng() {
    let f = lint_fixture("bad_thread_rng.rs");
    assert!(rules(&f).contains(&"ambient-rng"), "{f:?}");
    assert!(
        f.iter().any(|x| x.message.contains("thread_rng"))
            && f.iter().any(|x| x.message.contains("rand::random")),
        "{f:?}"
    );
}

#[test]
fn float_accum_fixture_trips_heuristic() {
    let f = lint_fixture("bad_float_accum.rs");
    let hits: Vec<&Finding> = f
        .iter()
        .filter(|x| x.rule == "float-accum-unordered")
        .collect();
    // Both the `.sum()` and the `.fold()` statements are caught.
    assert_eq!(hits.len(), 2, "{f:?}");
}

#[test]
fn justified_allow_and_test_code_are_exempt() {
    let f = lint_fixture("allowed_ok.rs");
    assert!(f.is_empty(), "expected clean, got {f:?}");
}

#[test]
fn allow_marker_without_reason_is_a_finding() {
    let f = lint_fixture("allow_no_reason.rs");
    assert!(rules(&f).contains(&"allow-marker"), "{f:?}");
}

#[test]
fn findings_render_with_file_line_and_rule() {
    let f = lint_fixture("bad_hashmap.rs");
    let rendered = f[0].to_string();
    assert!(rendered.contains("bad_hashmap.rs:2"), "{rendered}");
    assert!(rendered.contains("[unordered]"), "{rendered}");
}

/// The real `p3-lint.toml` exempts `wall-clock` for `p3-prof` and for
/// no other crate: `Instant::now` must still be rejected in the engine
/// crates (`p3-cluster`, `p3-net`, `p3-des`, …) after the crate-scoped
/// allowlist is applied.
#[test]
fn wall_clock_stays_banned_outside_prof() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let toml = std::fs::read_to_string(root.join("p3-lint.toml")).expect("p3-lint.toml");
    let allow = CrateAllow::parse(&toml).expect("crate-allow section");

    assert!(allow.allows("prof", "wall-clock"));
    for krate in ["cluster", "net", "des"] {
        assert!(
            !allow.allows(krate, "wall-clock"),
            "wall-clock must not be exempted for p3-{krate}"
        );
    }

    let src = "fn f() {\n    let t = Instant::now();\n}\n";
    for krate in ["cluster", "net", "des"] {
        let f = lint_source_for_crate(krate, Path::new("hot.rs"), src, &allow);
        assert!(
            f.iter().any(|x| x.rule == "wall-clock"),
            "p3-{krate} should reject Instant::now: {f:?}"
        );
    }
    let f = lint_source_for_crate("prof", Path::new("hot.rs"), src, &allow);
    assert!(
        f.is_empty(),
        "p3-prof is exempt from wall-clock only: {f:?}"
    );
}

#[test]
fn env_fixture_trips_ambient_env() {
    let f = lint_fixture("bad_env.rs");
    let hits: Vec<&Finding> = f.iter().filter(|x| x.rule == "ambient-env").collect();
    // `env::var`, `env::vars` and `env::var_os` — one finding each, no
    // double-reporting of the shared `env::var` prefix.
    assert_eq!(hits.len(), 3, "{f:?}");
    assert_eq!(f.len(), 3, "{f:?}");
}

#[test]
fn workspace_self_lint_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = lint_workspace(root).expect("lint_workspace");
    assert!(report.is_clean(), "{report}");
    assert!(
        report.files > 40,
        "suspiciously few files: {}",
        report.files
    );
}

/// Satellite: allow-marker scoping. A marker covers its own line and the
/// next line — nothing else — and only a real comment counts as a marker.
#[test]
fn allow_marker_scopes_to_marked_line_only() {
    // Two findings; the marker silences only the one it annotates.
    let src = "\
// p3-lint: allow(unordered): key order never observed
use std::collections::HashMap;

fn f() -> HashMap<u32, u32> { HashMap::new() }
";
    let f = lint_source(Path::new("t.rs"), src);
    let lines: Vec<usize> = f.iter().map(|x| x.line).collect();
    assert_eq!(lines, vec![4, 4], "{f:?}");

    // Marker text inside a string literal (what the v1 scanner treated as
    // a live marker) is inert: the finding on the next line survives.
    let src = "\
fn doc() -> &'static str { \"p3-lint: allow(unordered): nope\" }
fn f() -> std::collections::HashMap<u32, u32> { Default::default() }
";
    let f = lint_source(Path::new("t.rs"), src);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].line, 2);
}

/// Satellite: the taint mini-workspace. Every hazard in `sim1` is
/// indirect; the token scanner reports nothing there while the taint pass
/// reports all five kinds — and the sanitized call stays clean.
#[test]
fn taint_ws_catches_what_the_token_scanner_misses() {
    let root = fixture_root("ws");
    let sim1 = root.join("crates/sim1/src/lib.rs");
    let source = std::fs::read_to_string(&sim1).expect("sim1 source");

    // The pre-v2 scanner view: token rules alone see a clean file.
    assert!(
        lint_source(&sim1, &source).is_empty(),
        "token scanner should miss every indirect hazard"
    );

    let report = lint_workspace_with(&root, &ws_options(&["helper", "sim1"])).expect("ws lint");
    let rules: BTreeSet<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
    let expected: BTreeSet<&str> = [
        "taint-wall-clock",
        "taint-ambient-rng",
        "taint-ambient-env",
        "taint-unordered",
        "taint-float-order",
    ]
    .into();
    assert_eq!(rules, expected, "{:#?}", report.findings);
    assert!(
        report
            .findings
            .iter()
            .all(|f| f.file.ends_with("crates/sim1/src/lib.rs")),
        "taint reports at the frontier in sim1: {:#?}",
        report.findings
    );
    // An empty baseline means all five findings are regressions.
    assert!(!report.is_clean());

    // The sanitized `blessed_epoch` call carries no finding.
    let epoch_line = source
        .lines()
        .position(|l| l.contains("blessed_epoch"))
        .expect("epoch call")
        + 1;
    assert!(
        report.findings.iter().all(|f| f.line != epoch_line),
        "sanitizer must keep line {epoch_line} clean: {:#?}",
        report.findings
    );
}

/// Satellite: the budget mini-workspace trips all three ratchets.
#[test]
fn budget_ws_trips_unwrap_panic_and_index_ratchets() {
    let report =
        lint_workspace_with(&fixture_root("ws_budget"), &ws_options(&["hot"])).expect("ws lint");
    let over: BTreeSet<&str> = report.over_budget.iter().map(|b| b.kind).collect();
    let expected: BTreeSet<&str> = ["unwrap/expect", "panic-macro", "index"].into();
    assert_eq!(over, expected, "{:#?}", report.over_budget);
    assert!(!report.is_clean());
}

/// Satellite: `p3 lint --json` must be byte-deterministic — two fresh
/// workspace runs serialize to identical bytes.
#[test]
fn json_report_is_byte_identical_across_runs() {
    let root = fixture_root("ws");
    let opts = ws_options(&["helper", "sim1"]);
    let a = report::report_json(&lint_workspace_with(&root, &opts).expect("run 1"));
    let b = report::report_json(&lint_workspace_with(&root, &opts).expect("run 2"));
    assert_eq!(a, b);
    assert!(a.contains("\"format\": \"p3-lint\""), "{a}");
    assert!(a.contains("taint-wall-clock"), "{a}");
}

/// Satellite: self-consistency — every rule in the complete catalog has at
/// least one fixture (file, mini-workspace or inline source) that trips
/// it. Adding a rule without a tripping fixture fails here.
#[test]
fn every_rule_in_the_catalog_has_a_tripping_fixture() {
    let mut catalog: Vec<String> = RULES.iter().map(|r| r.name.to_string()).collect();
    catalog.push(FLOAT_ACCUM_RULE.into());
    catalog.push(FILE_LENGTH_RULE.into());
    catalog.push("allow-marker".into());
    for (t, _) in taint::TAINT_RULES {
        catalog.push(t.into());
    }
    catalog.push(schema::SCHEMA_RULE.into());
    catalog.push(coverage::COVERAGE_RULE.into());

    let mut tripped: BTreeSet<String> = BTreeSet::new();
    // Token-rule fixture files.
    for name in [
        "bad_hashmap.rs",
        "bad_instant.rs",
        "bad_thread_rng.rs",
        "bad_env.rs",
        "bad_float_accum.rs",
        "allow_no_reason.rs",
    ] {
        tripped.extend(lint_fixture(name).into_iter().map(|f| f.rule));
    }
    // File length (inline: a checked-in 800-line fixture would be noise).
    let long = "fn a() {}\n".repeat(MAX_FILE_LINES + 1);
    tripped.extend(
        lint_source(Path::new("long.rs"), &long)
            .into_iter()
            .map(|f| f.rule),
    );
    // Taint rules via the mini-workspace.
    let ws = lint_workspace_with(&fixture_root("ws"), &ws_options(&["helper", "sim1"]))
        .expect("ws lint");
    tripped.extend(ws.findings.into_iter().map(|f| f.rule));
    // Schema drift: a writer/reader pair that drifted.
    let drifting = "fn w() -> String { format!(\"{{\\\"a\\\": 1}}\") }\n\
                    fn r(v: &V) -> u64 { get_u64(v, \"b\").unwrap_or(0) }\n";
    tripped.extend(
        schema::check_json_format(Path::new("s.rs"), &p3_lint::strip(drifting), "V1")
            .into_iter()
            .map(|f| f.rule),
    );
    // Invariant coverage: a catalog variant with an empty corpus.
    tripped.extend(
        coverage::check_invariant_coverage(
            Path::new("c.rs"),
            "pub enum Invariant { MonotoneClock }",
            "Invariant",
            &[],
        )
        .into_iter()
        .map(|f| f.rule),
    );

    for rule in &catalog {
        assert!(
            tripped.contains(rule),
            "rule `{rule}` has no fixture that trips it (tripped: {tripped:?})"
        );
    }
}
