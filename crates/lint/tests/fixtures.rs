//! Mutation-style negative tests: each `fixtures/bad_*.rs` file contains a
//! determinism hazard the lint claims to catch; if the scanner regresses,
//! these fail. `allowed_ok.rs` proves justified markers and test-only code
//! are exempt, and the workspace self-lint pins the repo itself clean.

use std::path::Path;

use p3_lint::{lint_source, lint_source_for_crate, lint_workspace, CrateAllow, Finding};

fn lint_fixture(name: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let source =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    lint_source(&path, &source)
}

fn rules(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule.as_str()).collect()
}

#[test]
fn hashmap_fixture_trips_unordered() {
    let f = lint_fixture("bad_hashmap.rs");
    assert!(!f.is_empty());
    assert!(
        rules(&f).iter().all(|r| *r == "unordered"),
        "unexpected rules: {f:?}"
    );
    // Both the HashMap and the HashSet lines are reported.
    let lines: Vec<usize> = f.iter().map(|x| x.line).collect();
    assert!(lines.contains(&2) && lines.contains(&3), "{lines:?}");
}

#[test]
fn instant_fixture_trips_wall_clock() {
    let f = lint_fixture("bad_instant.rs");
    assert!(rules(&f).contains(&"wall-clock"), "{f:?}");
    assert!(
        f.iter()
            .any(|x| x.rule == "wall-clock" && x.message.contains("Instant::now")),
        "{f:?}"
    );
    assert!(
        f.iter()
            .any(|x| x.rule == "wall-clock" && x.message.contains("SystemTime")),
        "{f:?}"
    );
}

#[test]
fn thread_rng_fixture_trips_ambient_rng() {
    let f = lint_fixture("bad_thread_rng.rs");
    assert!(rules(&f).contains(&"ambient-rng"), "{f:?}");
    assert!(
        f.iter().any(|x| x.message.contains("thread_rng"))
            && f.iter().any(|x| x.message.contains("rand::random")),
        "{f:?}"
    );
}

#[test]
fn float_accum_fixture_trips_heuristic() {
    let f = lint_fixture("bad_float_accum.rs");
    let hits: Vec<&Finding> = f
        .iter()
        .filter(|x| x.rule == "float-accum-unordered")
        .collect();
    // Both the `.sum()` and the `.fold()` statements are caught.
    assert_eq!(hits.len(), 2, "{f:?}");
}

#[test]
fn justified_allow_and_test_code_are_exempt() {
    let f = lint_fixture("allowed_ok.rs");
    assert!(f.is_empty(), "expected clean, got {f:?}");
}

#[test]
fn allow_marker_without_reason_is_a_finding() {
    let f = lint_fixture("allow_no_reason.rs");
    assert!(rules(&f).contains(&"allow-marker"), "{f:?}");
}

#[test]
fn findings_render_with_file_line_and_rule() {
    let f = lint_fixture("bad_hashmap.rs");
    let rendered = f[0].to_string();
    assert!(rendered.contains("bad_hashmap.rs:2"), "{rendered}");
    assert!(rendered.contains("[unordered]"), "{rendered}");
}

/// The real `p3-lint.toml` exempts `wall-clock` for `p3-prof` and for
/// no other crate: `Instant::now` must still be rejected in the engine
/// crates (`p3-cluster`, `p3-net`, `p3-des`, …) after the crate-scoped
/// allowlist is applied.
#[test]
fn wall_clock_stays_banned_outside_prof() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let toml = std::fs::read_to_string(root.join("p3-lint.toml")).expect("p3-lint.toml");
    let allow = CrateAllow::parse(&toml).expect("crate-allow section");

    assert!(allow.allows("prof", "wall-clock"));
    for krate in ["cluster", "net", "des"] {
        assert!(
            !allow.allows(krate, "wall-clock"),
            "wall-clock must not be exempted for p3-{krate}"
        );
    }

    let src = "fn f() {\n    let t = Instant::now();\n}\n";
    for krate in ["cluster", "net", "des"] {
        let f = lint_source_for_crate(krate, Path::new("hot.rs"), src, &allow);
        assert!(
            f.iter().any(|x| x.rule == "wall-clock"),
            "p3-{krate} should reject Instant::now: {f:?}"
        );
    }
    let f = lint_source_for_crate("prof", Path::new("hot.rs"), src, &allow);
    assert!(
        f.is_empty(),
        "p3-prof is exempt from wall-clock only: {f:?}"
    );
}

#[test]
fn workspace_self_lint_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = lint_workspace(root).expect("lint_workspace");
    assert!(report.is_clean(), "{report}");
    assert!(
        report.files > 40,
        "suspiciously few files: {}",
        report.files
    );
}
