// Fixture: an allow marker with no justification is itself a finding.

// p3-lint: allow(unordered):
use std::collections::HashMap;

pub fn unjustified() -> usize {
    let m: HashMap<u32, u32> = HashMap::new();
    m.len()
}
