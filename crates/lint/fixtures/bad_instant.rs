// Fixture: host wall clocks must be flagged in simulation code.
use std::time::Instant;

pub fn wall_clock_leaks() -> std::time::Duration {
    let t0 = Instant::now();
    let _ = std::time::SystemTime::UNIX_EPOCH;
    t0.elapsed()
}
