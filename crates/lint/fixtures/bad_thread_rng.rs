// Fixture: ambient OS-seeded randomness must be flagged.
pub fn ambient_randomness() -> u64 {
    let mut rng = rand::thread_rng();
    let x: u64 = rand::random();
    rng.gen::<u64>() ^ x
}
