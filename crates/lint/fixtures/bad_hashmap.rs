// Fixture: unordered collections in simulation code must be flagged.
use std::collections::HashMap;
use std::collections::HashSet;

pub fn order_leaks() -> usize {
    let m: HashMap<u32, u32> = HashMap::new();
    let s: HashSet<u32> = HashSet::new();
    m.len() + s.len()
}
