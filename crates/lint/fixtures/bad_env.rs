//! Ambient environment reads: every form of `env::var` is banned in sim
//! crates — configuration enters through explicit recorded inputs.
pub fn node() -> String {
    std::env::var("P3_NODE").unwrap_or_default()
}

pub fn all() -> usize {
    std::env::vars().count()
}

pub fn raw() -> bool {
    std::env::var_os("P3_DEBUG").is_some()
}
