//! Over-budget fixture: 1 unwrap, 2 panic macros, 3 index sites.
pub fn f(v: &[u64], x: Option<u64>) -> u64 {
    let a = v[0] + v[1] + v[2];
    if a > 10 {
        panic!("too big")
    }
    match x {
        Some(y) => y + a,
        None => unreachable!(),
    }
}

pub fn g(x: Option<u64>) -> u64 {
    x.unwrap()
}
