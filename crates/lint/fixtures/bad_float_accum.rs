// Fixture: float accumulation over an unordered iterator must be flagged
// (summation order changes the result under non-associative float adds).
use std::collections::BTreeMap;

pub fn unordered_sum(weights: &BTreeMap<u64, f64>) -> (f64, f64) {
    let total: f64 = weights.values().sum();
    let folded = weights.values().fold(0.0_f64, |acc, w| acc + w);
    (total, folded)
}
