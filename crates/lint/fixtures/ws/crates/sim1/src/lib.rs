//! Pure-looking simulation crate: no banned token appears anywhere in
//! this file, so the v1 token scanner reports nothing. Every hazard is an
//! indirect one — a cross-crate wrapper, a re-exported alias, an env read
//! behind a helper — that only the call-graph taint pass can see.
use p3_helper::now_secs;

pub fn step_time() -> f64 {
    now_secs()
}

pub fn draw() -> u64 {
    let _gen = p3_helper::fresh_entropy();
    0
}

pub fn node() -> String {
    p3_helper::node_name()
}

pub fn mix() -> f64 {
    p3_helper::scratch_total()
}

pub fn epoch() -> u64 {
    p3_helper::blessed_epoch()
}
