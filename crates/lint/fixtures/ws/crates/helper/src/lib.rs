//! Impure helper crate: exempt (via `[crate-allow]`) from every rule it
//! violates, so the token scanner reports nothing here. Everything below
//! is a laundering vector the taint pass must track across the crate
//! boundary into `sim1`.
use std::collections::HashMap;
use std::time::Instant;

pub use rand::thread_rng as fresh_entropy;

pub fn now_secs() -> f64 {
    Instant::now().elapsed().as_secs_f64()
}

pub fn node_name() -> String {
    std::env::var("P3_NODE").unwrap_or_default()
}

pub fn scratch_total() -> f64 {
    let m: HashMap<u32, f64> = HashMap::new();
    m.values().sum()
}

pub fn blessed_epoch() -> u64 {
    let _reviewed = Instant::now();
    0
}
