// Fixture: a justified allow marker silences the rule, and test-only code
// is exempt. This file must lint clean.

// p3-lint: allow(unordered): interner scratch map, drained before any iteration
use std::collections::HashMap;

pub fn scratch() -> usize {
    // p3-lint: allow(unordered): never iterated, lookup only
    let m: HashMap<u32, u32> = HashMap::new();
    m.len()
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    use std::time::Instant;

    #[test]
    fn tests_may_use_anything() {
        let s: HashSet<u32> = HashSet::new();
        let t = Instant::now();
        assert!(s.is_empty());
        let _ = t.elapsed();
    }
}
