//! Scenario: you are deciding whether your shared cluster's network can
//! sustain data-parallel training of a given model — the paper's central
//! question. This example sweeps NIC bandwidth for two models with very
//! different parameter skews and reports where each synchronization
//! strategy stops scaling linearly.
//!
//! Run with: `cargo run --release --example bandwidth_sensitivity`

use p3::cluster::bandwidth_sweep;
use p3::core::SyncStrategy;
use p3::models::ModelSpec;

fn main() {
    let strategies = SyncStrategy::fig7_series();
    for (model, gbps) in [
        (ModelSpec::resnet50(), vec![1.0, 2.0, 4.0, 6.0, 8.0, 10.0]),
        (ModelSpec::sockeye(), vec![2.0, 4.0, 8.0, 15.0, 30.0]),
    ] {
        println!(
            "== {} ({} per sec), 4 machines ==",
            model.name(),
            model.unit()
        );
        let points = bandwidth_sweep(&model, &strategies, 4, &gbps, 2, 6, 7);
        let plateau = points.last().expect("nonempty").series[2].1;
        for p in &points {
            print!("{:5.1} Gbps:", p.x);
            for (name, t) in &p.series {
                print!("  {name} {t:7.1}");
            }
            println!();
        }
        // "Linear scaling" = within 5% of the unconstrained plateau.
        for (i, name) in ["Baseline", "Slicing", "P3"].iter().enumerate() {
            let floor = points
                .iter()
                .filter(|p| p.series[i].1 >= plateau * 0.95)
                .map(|p| p.x)
                .fold(f64::INFINITY, f64::min);
            println!("  {name}: holds linear scaling down to ~{floor} Gbps");
        }
        println!();
    }
}
