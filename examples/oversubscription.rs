//! Scenario: your VGG-19 training job moved from a flat testbed onto a
//! production cluster whose racks share an oversubscribed core. How much
//! oversubscription can the job absorb before priority scheduling stops
//! paying for itself? This example sweeps the oversubscription factor on a
//! two-rack cluster and reports the crossover point — the first factor at
//! which P3's advantage over the baseline drops below 5%.
//!
//! Run with: `cargo run --release --example oversubscription`

use p3::cluster::oversubscription_sweep;
use p3::core::SyncStrategy;
use p3::models::ModelSpec;
use p3::net::Bandwidth;
use p3::topo::Placement;

fn main() {
    let model = ModelSpec::vgg19();
    let strategies = [SyncStrategy::baseline(), SyncStrategy::p3()];
    let oversubs = [1.0, 2.0, 4.0, 8.0, 16.0];
    let (racks, rack_size) = (2, 4);

    println!(
        "== {} on {racks} racks x {rack_size} machines, 15 Gbps NICs ==",
        model.name()
    );
    let points = oversubscription_sweep(
        &model,
        &strategies,
        racks,
        rack_size,
        Bandwidth::from_gbps(15.0),
        Placement::Spread,
        &oversubs,
        2,
        6,
        7,
    );
    let mut crossover = None;
    for p in &points {
        let (base, p3) = (p.series[0].1, p.series[1].1);
        let edge = (p3 / base - 1.0) * 100.0;
        println!(
            "{:5.0}:1 oversub:  Baseline {base:7.1}  P3 {p3:7.1}  ({edge:+5.1}% edge)",
            p.x
        );
        if crossover.is_none() && edge < 5.0 {
            crossover = Some(p.x);
        }
    }
    match crossover {
        Some(f) => println!(
            "\nP3's edge drops below 5% at ~{f}:1 — past that the shared core, \
             not scheduling order, is the bottleneck."
        ),
        None => println!("\nP3 keeps a >5% edge across the whole sweep."),
    }
}
