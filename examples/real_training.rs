//! Scenario: the accuracy side of the paper — run *real* data-parallel
//! training (actual gradients, actual parameter server) and compare exact
//! synchronous SGD (what P3 transmits) against lossy alternatives.
//!
//! Run with: `cargo run --release --example real_training`

use p3::tensor::spirals;
use p3::train::{train_async, train_sync, SyncMode, TrainConfig};

fn main() {
    let data = spirals(3, 6, 2400, 600, 21);
    let mut cfg = TrainConfig::new(25);
    cfg.hidden = vec![48, 24];
    cfg.lr = 0.1;
    println!(
        "3-class spirals, 4 workers x batch {}, {} epochs\n",
        cfg.batch_per_worker, cfg.epochs
    );

    let modes = [
        SyncMode::FullSync,
        SyncMode::Dgc {
            final_sparsity: 0.99,
            warmup_epochs: 4,
        },
        SyncMode::Qsgd { levels: 4 },
        SyncMode::TernGrad,
        SyncMode::OneBit,
    ];
    for mode in modes {
        let run = train_sync(&data, &cfg, mode);
        println!(
            "{:>12}: final accuracy {:.3}  (best {:.3}, epochs to 0.8: {:?})",
            run.mode_name,
            run.final_accuracy,
            run.best_accuracy(),
            run.epochs_to_reach(0.8)
        );
    }
    let mut asgd_cfg = cfg.clone();
    asgd_cfg.lr = 0.0125; // tuned down: stale gradients diverge at sync lr
    let run = train_async(&data, &asgd_cfg, 3);
    println!(
        "{:>12}: final accuracy {:.3}  (best {:.3}, epochs to 0.8: {:?})",
        run.mode_name,
        run.final_accuracy,
        run.best_accuracy(),
        run.epochs_to_reach(0.8)
    );
    println!("\nP3 always transmits full gradients: its accuracy IS the FullSync row.");
}
