//! Scenario: you built your own architecture and want to know (a) whether
//! it needs P3 and (b) what slice size to use — exercising the public
//! `ModelSpec` construction API and the Fig. 12 sweep on a user model.
//!
//! The model here is a deliberately skewed "wide-head" classifier: a few
//! cheap convolutions feeding a giant embedding-style dense layer, like
//! the recommendation models the paper's introduction motivates.
//!
//! Run with: `cargo run --release --example custom_model`

use p3::cluster::{slice_size_sweep, throughput_of};
use p3::core::SyncStrategy;
use p3::models::{BlockKind, ComputeBlock, ModelSpec, ParamArray, SampleUnit};
use p3::net::Bandwidth;

fn build_wide_head() -> ModelSpec {
    let blocks = vec![
        ComputeBlock::new(
            "conv1",
            BlockKind::Conv,
            2 * 3 * 3 * 3 * 64 * 112 * 112,
            vec![ParamArray::new("conv1.weight", 3 * 3 * 3 * 64)],
        ),
        ComputeBlock::new(
            "conv2",
            BlockKind::Conv,
            2 * 3 * 3 * 64 * 128 * 56 * 56,
            vec![ParamArray::new("conv2.weight", 3 * 3 * 64 * 128)],
        ),
        ComputeBlock::new(
            "wide_head",
            BlockKind::Dense,
            2 * 128 * 60_000_u64,
            vec![
                ParamArray::new("wide_head.weight", 128 * 60_000),
                ParamArray::new("wide_head.bias", 60_000),
            ],
        ),
    ];
    ModelSpec::from_blocks("WideHead", SampleUnit::Images, blocks, 90.0, 64, 0.0)
}

fn main() {
    let model = build_wide_head();
    println!(
        "{}: {:.1}M params, heaviest array = {:.1}% of model\n",
        model.name(),
        model.total_params() as f64 / 1e6,
        100.0 * model.heaviest_array().expect("params").params as f64 / model.total_params() as f64
    );

    let bw = Bandwidth::from_gbps(10.0);
    let base = throughput_of(&model, &SyncStrategy::baseline(), 4, bw, 2, 6, 3);
    let p3 = throughput_of(&model, &SyncStrategy::p3(), 4, bw, 2, 6, 3);
    println!(
        "at {bw}: baseline {base:.0} img/s, P3 {p3:.0} img/s ({:+.0}%)\n",
        (p3 / base - 1.0) * 100.0
    );

    println!("slice-size sweep (Fig. 12 methodology):");
    let sizes = [5_000u64, 20_000, 50_000, 200_000, 1_000_000];
    for p in slice_size_sweep(&model, &sizes, 4, bw, 2, 6, 3) {
        println!("  {:>9} params/slice: {:7.1} img/s", p.x, p.series[0].1);
    }
}
