//! Quick start: measure P3's speedup over baseline MXNet-KVStore
//! synchronization for VGG-19 on a bandwidth-constrained 4-machine
//! cluster — the paper's headline experiment (Fig. 7c) in ~20 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use p3::cluster::{ClusterConfig, ClusterSim};
use p3::core::SyncStrategy;
use p3::models::ModelSpec;
use p3::net::Bandwidth;

fn main() {
    let bandwidth = Bandwidth::from_gbps(15.0);
    println!("VGG-19, 4 machines, {bandwidth} per NIC direction\n");

    let mut baseline_throughput = 0.0;
    for strategy in [
        SyncStrategy::baseline(),
        SyncStrategy::slicing_only(),
        SyncStrategy::p3(),
    ] {
        let name = strategy.name().to_string();
        let cfg = ClusterConfig::new(ModelSpec::vgg19(), strategy, 4, bandwidth);
        let result = ClusterSim::new(cfg).run();
        let speedup = if baseline_throughput > 0.0 {
            format!(
                "  ({:+.1}% vs baseline)",
                (result.throughput / baseline_throughput - 1.0) * 100.0
            )
        } else {
            baseline_throughput = result.throughput;
            String::new()
        };
        println!(
            "{name:>10}: {:7.1} {}/sec, mean iteration {}{speedup}",
            result.throughput, result.unit, result.mean_iteration
        );
    }
}
